//! N-dimensional array shapes (row-major, last dimension fastest).

use crate::error::{HpdrError, Result};
use crate::float::DType;

/// Shape of an n-dimensional array, 1–4 dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    pub fn new(dims: &[usize]) -> Shape {
        assert!(
            !dims.is_empty() && dims.len() <= 4,
            "HPDR supports 1–4 dimensional arrays, got {}",
            dims.len()
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        Shape(dims.to_vec())
    }

    /// Fallible constructor for decoding paths.
    pub fn try_new(dims: &[usize]) -> Result<Shape> {
        if dims.is_empty() || dims.len() > 4 {
            return Err(HpdrError::invalid(format!(
                "shape must have 1..=4 dims, got {}",
                dims.len()
            )));
        }
        if dims.contains(&0) {
            return Err(HpdrError::invalid("zero-sized dimension"));
        }
        Ok(Shape(dims.to_vec()))
    }

    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat index of a multi-index.
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.0.len());
        let strides = self.strides();
        idx.iter().zip(&strides).map(|(i, s)| i * s).sum()
    }

    /// Multi-index of a flat index.
    pub fn unravel(&self, mut flat: usize) -> Vec<usize> {
        let strides = self.strides();
        let mut idx = vec![0usize; self.0.len()];
        for (k, s) in strides.iter().enumerate() {
            idx[k] = flat / s;
            flat %= s;
        }
        idx
    }

    /// The size of the largest dimension (used by Algorithm 4 chunking,
    /// which splits along the slowest-varying axis).
    pub fn largest_dim(&self) -> usize {
        *self.0.iter().max().unwrap()
    }

    /// Split along the first (slowest) axis into a sub-shape of `rows`
    /// leading entries. Used by pipeline chunking.
    pub fn with_leading(&self, rows: usize) -> Shape {
        let mut d = self.0.clone();
        d[0] = rows;
        Shape(d)
    }

    /// Elements per unit of the leading dimension.
    pub fn row_elements(&self) -> usize {
        self.0[1..].iter().product()
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let strs: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", strs.join("x"))
    }
}

/// Metadata fully describing an array buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMeta {
    pub dtype: DType,
    pub shape: Shape,
}

impl ArrayMeta {
    pub fn new(dtype: DType, shape: Shape) -> ArrayMeta {
        ArrayMeta { dtype, shape }
    }

    pub fn num_bytes(&self) -> usize {
        self.shape.num_elements() * self.dtype.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn offset_unravel_inverse() {
        let s = Shape::new(&[3, 5, 7]);
        for flat in 0..s.num_elements() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn largest_dim_and_leading() {
        let s = Shape::new(&[8, 33, 111, 37]);
        assert_eq!(s.largest_dim(), 111);
        let sub = s.with_leading(2);
        assert_eq!(sub.dims(), &[2, 33, 111, 37]);
        assert_eq!(s.row_elements(), 33 * 111 * 37);
    }

    #[test]
    fn try_new_rejects_bad_shapes() {
        assert!(Shape::try_new(&[]).is_err());
        assert!(Shape::try_new(&[1, 2, 3, 4, 5]).is_err());
        assert!(Shape::try_new(&[3, 0]).is_err());
        assert!(Shape::try_new(&[3, 2]).is_ok());
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[512, 512, 512]).to_string(), "512x512x512");
    }

    #[test]
    fn meta_bytes() {
        let m = ArrayMeta::new(DType::F64, Shape::new(&[10, 10]));
        assert_eq!(m.num_bytes(), 800);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn new_rejects_zero_dim() {
        Shape::new(&[4, 0]);
    }
}
