//! Unsynchronized shared slices for disjoint parallel writes.
//!
//! Many HPDR kernels have the classic HPC structure "every group writes a
//! disjoint, statically-determined index set of one output array". Rust's
//! borrow checker cannot see the disjointness across closure invocations,
//! so we provide a thin unsafe cell with debug-mode bounds checking. The
//! *caller* promises disjointness; every use site in this workspace
//! documents why its index sets are disjoint.
//!
//! This module is the workspace's single sanctioned `unsafe` island
//! (everything else builds under `unsafe_code = "deny"`).
#![allow(unsafe_code)]

use std::marker::PhantomData;

/// A `Send + Sync` view over a mutable slice allowing unsynchronized
/// element writes from multiple threads.
///
/// # Safety contract
/// Concurrent callers must write disjoint index sets. Reads of an index
/// concurrently written by another thread are data races and forbidden.
#[derive(Clone, Copy)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view is just (ptr, len) over a `&mut [T]` whose borrow it
// carries in `_marker`; moving it across threads moves no `T`, and the
// safety contract above forbids overlapping access, so `T: Send`
// suffices.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: sharing `&SharedSlice` only hands out raw-pointer accessors
// whose disjointness the caller promises (type-level `Sync` on `T` is
// not required because no `&T` to a concurrently-accessed element is
// ever produced).
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write one element.
    ///
    /// # Safety
    /// `i < len`, and no other thread concurrently accesses index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(
            i < self.len,
            "SharedSlice write out of bounds: {i} >= {}",
            self.len
        );
        // SAFETY: caller guarantees `i < len` (in-bounds of the borrowed
        // slice) and exclusive access to index `i`.
        unsafe { self.ptr.add(i).write(v) };
    }

    /// Read one element.
    ///
    /// # Safety
    /// `i < len`, and no other thread concurrently writes index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(
            i < self.len,
            "SharedSlice read out of bounds: {i} >= {}",
            self.len
        );
        // SAFETY: caller guarantees `i < len` and that no thread is
        // concurrently writing index `i`.
        unsafe { *self.ptr.add(i) }
    }

    /// Mutable sub-slice.
    ///
    /// # Safety
    /// The range must be in bounds and not concurrently accessed elsewhere.
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start + len <= self.len, "SharedSlice range out of bounds");
        // SAFETY: caller guarantees the range is in bounds and not
        // accessed by any other thread, so the produced `&mut [T]` is
        // unique for its lifetime.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 1000];
        let shared = SharedSlice::new(&mut data);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move |_| {
                    // Each thread writes indices ≡ t (mod 4): disjoint.
                    let mut i = t;
                    while i < 1000 {
                        // SAFETY: in bounds; index sets are disjoint mod 4.
                        unsafe { shared.write(i, i as u64) };
                        i += 4;
                    }
                });
            }
        })
        .unwrap();
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn slice_mut_chunks() {
        let mut data = vec![0u32; 12];
        let shared = SharedSlice::new(&mut data);
        crossbeam::thread::scope(|s| {
            for c in 0..3 {
                s.spawn(move |_| {
                    // SAFETY: chunk `c` owns range [c*4, c*4+4) exclusively.
                    let chunk = unsafe { shared.slice_mut(c * 4, 4) };
                    chunk.fill(c as u32 + 1);
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn read_back() {
        let mut data = vec![5u8; 3];
        let shared = SharedSlice::new(&mut data);
        // SAFETY: single-threaded access, indices 0 and 1 are in bounds.
        unsafe {
            shared.write(1, 9);
            assert_eq!(shared.read(1), 9);
            assert_eq!(shared.read(0), 5);
        }
        assert_eq!(shared.len(), 3);
        assert!(!shared.is_empty());
    }
}
