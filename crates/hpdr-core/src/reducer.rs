//! The portable reduction-algorithm interface.
//!
//! A [`Reducer`] is one full reduction pipeline (MGARD-X, ZFP-X,
//! Huffman-X, or a comparator baseline) operating on raw little-endian
//! array bytes. The byte-level interface is what the HDEM pipeline, the
//! I/O layer and the benchmark harness program against — it lets one
//! pipeline implementation drive every codec and dtype.

use crate::adapter::DeviceAdapter;
use crate::error::Result;
use crate::shape::ArrayMeta;
use hpdr_sim::KernelClass;

/// A reduction algorithm over raw array bytes.
pub trait Reducer: Send + Sync {
    /// Short stable identifier (also stored in containers).
    fn name(&self) -> &'static str;

    /// Cost-model class for the device simulator.
    fn kernel_class(&self) -> KernelClass;

    /// Whether reconstruction is bit-exact (lossless).
    fn is_lossless(&self) -> bool;

    /// Compress the little-endian bytes of the array described by `meta`.
    fn compress(
        &self,
        adapter: &dyn DeviceAdapter,
        bytes: &[u8],
        meta: &ArrayMeta,
    ) -> Result<Vec<u8>>;

    /// Decompress a stream produced by [`Reducer::compress`], returning
    /// raw little-endian bytes and the array metadata.
    fn decompress(
        &self,
        adapter: &dyn DeviceAdapter,
        stream: &[u8],
    ) -> Result<(Vec<u8>, ArrayMeta)>;
}
