//! High-level one-call API.
//!
//! [`Codec`] enumerates the built-in reduction pipelines; [`compress`] /
//! [`decompress`] run them directly on an adapter, and [`detect_codec`]
//! identifies a stream from its magic so readers need no out-of-band
//! configuration (all HPDR streams are self-describing).

use hpdr_baselines::{Lz4Reducer, SzConfig, SzReducer};
use hpdr_core::{ArrayMeta, DeviceAdapter, Float, HpdrError, Reducer, Result};
use hpdr_huffman::ByteHuffmanReducer;
use hpdr_mgard::{MgardConfig, MgardReducer};
use hpdr_zfp::{ZfpConfig, ZfpReducer};
use std::sync::Arc;

/// A configured reduction pipeline.
#[derive(Debug, Clone, Copy)]
pub enum Codec {
    /// MGARD-X error-bounded lossy compression (paper Alg. 1).
    Mgard(MgardConfig),
    /// ZFP-X fixed-rate compression (paper Alg. 3).
    Zfp(ZfpConfig),
    /// Huffman-X lossless byte compression (paper Alg. 2).
    Huffman,
    /// SZ-style comparator (cuSZ analogue).
    Sz(SzConfig),
    /// LZ4-style comparator (nvCOMP analogue).
    Lz4,
}

impl PartialEq for Codec {
    /// Codecs compare by pipeline identity (name), not configuration.
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Codec {
    /// Instantiate the reducer for this codec.
    pub fn reducer(&self) -> Arc<dyn Reducer> {
        match *self {
            Codec::Mgard(cfg) => Arc::new(MgardReducer(cfg)),
            Codec::Zfp(cfg) => Arc::new(ZfpReducer(cfg)),
            Codec::Huffman => Arc::new(ByteHuffmanReducer::default()),
            Codec::Sz(cfg) => Arc::new(SzReducer(cfg)),
            Codec::Lz4 => Arc::new(Lz4Reducer),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Codec::Mgard(_) => "mgard-x",
            Codec::Zfp(_) => "zfp-x",
            Codec::Huffman => "huffman-x",
            Codec::Sz(_) => "cusz-like",
            Codec::Lz4 => "nvcomp-lz4-like",
        }
    }
}

/// Instantiate a (decompression-capable) reducer from a stream-registry
/// name, as stored in containers and BP block metadata. Codec parameters
/// are embedded in each stream, so defaults suffice for decoding.
pub fn reducer_by_name(name: &str) -> Result<Arc<dyn Reducer>> {
    match name {
        "mgard-x" => Ok(Arc::new(MgardReducer(MgardConfig::default()))),
        "zfp-x" => Ok(Arc::new(ZfpReducer(ZfpConfig::fixed_rate(16)))),
        "huffman-x" => Ok(Arc::new(ByteHuffmanReducer::default())),
        "cusz-like" => Ok(Arc::new(SzReducer(SzConfig::relative(1e-3)))),
        "nvcomp-lz4-like" => Ok(Arc::new(Lz4Reducer)),
        other => Err(HpdrError::unsupported(format!("unknown reducer '{other}'"))),
    }
}

/// Identify a stream's codec from its magic bytes.
pub fn detect_codec(stream: &[u8]) -> Option<&'static str> {
    if stream.len() < 4 {
        return None;
    }
    let magic = u32::from_le_bytes(stream[..4].try_into().unwrap());
    match magic {
        0x4D47_5831 => Some("mgard-x"),
        0x5A46_5058 => Some("zfp-x"),
        0x4855_4658 => Some("huffman-x"),
        0x535A_4C4B => Some("cusz-like"),
        0x4C5A_3442 => Some("nvcomp-lz4-like"),
        _ => None,
    }
}

/// Outcome statistics of one compression call.
#[derive(Debug, Clone)]
pub struct CompressionStats {
    pub codec: &'static str,
    pub original_bytes: usize,
    pub compressed_bytes: usize,
    pub ratio: f64,
}

/// Compress raw little-endian array bytes with `codec`.
pub fn compress(
    adapter: &dyn DeviceAdapter,
    bytes: &[u8],
    meta: &ArrayMeta,
    codec: Codec,
) -> Result<(Vec<u8>, CompressionStats)> {
    let stream = codec.reducer().compress(adapter, bytes, meta)?;
    let stats = CompressionStats {
        codec: codec.name(),
        original_bytes: bytes.len(),
        compressed_bytes: stream.len(),
        ratio: bytes.len() as f64 / stream.len().max(1) as f64,
    };
    Ok((stream, stats))
}

/// Decompress any HPDR stream (codec auto-detected from the magic).
pub fn decompress(adapter: &dyn DeviceAdapter, stream: &[u8]) -> Result<(Vec<u8>, ArrayMeta)> {
    let name =
        detect_codec(stream).ok_or_else(|| HpdrError::corrupt("unrecognized stream magic"))?;
    reducer_by_name(name)?.decompress(adapter, stream)
}

/// Typed convenience: compress a float slice.
pub fn compress_slice<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    shape: &hpdr_core::Shape,
    codec: Codec,
) -> Result<(Vec<u8>, CompressionStats)> {
    let meta = ArrayMeta::new(T::DTYPE, shape.clone());
    compress(adapter, &T::slice_to_bytes(data), &meta, codec)
}

/// Typed convenience: decompress to a float vector.
pub fn decompress_slice<T: Float>(
    adapter: &dyn DeviceAdapter,
    stream: &[u8],
) -> Result<(Vec<T>, hpdr_core::Shape)> {
    let (bytes, meta) = decompress(adapter, stream)?;
    if meta.dtype != T::DTYPE {
        return Err(HpdrError::invalid(format!(
            "stream holds {} data, requested {}",
            meta.dtype.name(),
            T::DTYPE.name()
        )));
    }
    Ok((T::bytes_to_vec(&bytes), meta.shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{SerialAdapter, Shape};

    fn sample() -> (Vec<f32>, Shape) {
        let shape = Shape::new(&[24, 24]);
        let data = (0..576).map(|i| (i as f32 * 0.05).sin()).collect();
        (data, shape)
    }

    #[test]
    fn every_codec_roundtrips_via_detection() {
        let adapter = SerialAdapter::new();
        let (data, shape) = sample();
        for codec in [
            Codec::Mgard(MgardConfig::relative(1e-3)),
            Codec::Zfp(ZfpConfig::fixed_rate(20)),
            Codec::Huffman,
            Codec::Sz(SzConfig::relative(1e-3)),
            Codec::Lz4,
        ] {
            let (stream, stats) = compress_slice(&adapter, &data, &shape, codec).unwrap();
            assert_eq!(
                detect_codec(&stream),
                Some(codec.name()),
                "{:?}",
                codec.name()
            );
            assert_eq!(stats.codec, codec.name());
            let (out, s) = decompress_slice::<f32>(&adapter, &stream).unwrap();
            assert_eq!(s, shape);
            assert_eq!(out.len(), data.len());
            if codec.reducer().is_lossless() {
                assert_eq!(out, data, "{} must be lossless", codec.name());
            } else {
                let err = data
                    .iter()
                    .zip(&out)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                assert!(err < 0.05, "{}: err {err}", codec.name());
            }
        }
    }

    #[test]
    fn unknown_stream_rejected() {
        let adapter = SerialAdapter::new();
        assert!(decompress(&adapter, &[1, 2, 3, 4, 5]).is_err());
        assert!(decompress(&adapter, &[]).is_err());
        assert!(reducer_by_name("gzip").is_err());
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let adapter = SerialAdapter::new();
        let (data, shape) = sample();
        let (stream, _) = compress_slice(
            &adapter,
            &data,
            &shape,
            Codec::Zfp(ZfpConfig::fixed_rate(16)),
        )
        .unwrap();
        assert!(decompress_slice::<f64>(&adapter, &stream).is_err());
    }

    #[test]
    fn stats_ratio_is_consistent() {
        let adapter = SerialAdapter::new();
        let (data, shape) = sample();
        let (stream, stats) = compress_slice(
            &adapter,
            &data,
            &shape,
            Codec::Mgard(MgardConfig::relative(1e-2)),
        )
        .unwrap();
        assert_eq!(stats.compressed_bytes, stream.len());
        assert!((stats.ratio - 2304.0 / stream.len() as f64).abs() < 1e-9);
    }
}
