//! `hpdr bench` — wall-clock throughput measurement.
//!
//! Two benchmark families, both measured (not modeled):
//!
//! * **Codec throughput**: compress/decompress GB/s per codec × adapter
//!   × input size, best of N timed runs after warmup (wall-clock noise
//!   is additive, so the minimum converges on the true cost);
//! * **Pool microbenchmark**: ≥ 32 GEM/DEM stage invocations through the
//!   persistent [`hpdr_core::WorkerPool`] versus the pre-pool
//!   spawn-per-call baseline (`spawning_parallel_for*`), reported as a
//!   speedup ratio.
//!
//! Results serialize to a `BENCH_<label>.json` document with schema id
//! [`BENCH_SCHEMA`]; [`validate_bench_json`] structurally checks a
//! document before it is written, so CI can gate on well-formed output.

use crate::Codec;
use hpdr_baselines::SzConfig;
use hpdr_core::pool::{spawning_parallel_for, spawning_parallel_for_with_scratch};
use hpdr_core::{
    ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, HpdrError, Result, SerialAdapter,
    WorkerPool,
};
use hpdr_mgard::MgardConfig;
use hpdr_zfp::ZfpConfig;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Schema identifier embedded in every bench document.
pub const BENCH_SCHEMA: &str = "hpdr-bench/v2";

/// Previous schema id, still accepted by [`validate_bench_json`] and
/// `--compare` so old baselines keep working.
pub const BENCH_SCHEMA_V1: &str = "hpdr-bench/v1";

/// Bench configuration (from CLI flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchOptions {
    /// Small inputs and few repetitions (CI smoke).
    pub quick: bool,
    /// Add the paper-scale 512³ point to the size axis (slow; minutes).
    pub paper_scale: bool,
    /// Document label: the output file is `BENCH_<label>.json`.
    pub label: String,
    /// Explicit output path (overrides the label-derived name).
    pub out: Option<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            quick: false,
            paper_scale: false,
            label: "local".to_string(),
            out: None,
        }
    }
}

/// One timed direction (compress or decompress).
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Best (minimum) wall-clock time over the measured repetitions.
    /// Wall-clock noise is strictly additive — scheduler preemption,
    /// pool wakeup latency, cache pollution all only ever slow a rep
    /// down — so the minimum is the estimator that converges on the
    /// codec's true cost; medians of µs-scale reps still carry several
    /// percent of jitter (same argument as [`ServeOverhead::off`]).
    pub best: Duration,
    /// Uncompressed gigabytes per second at the best rep.
    pub gbps: f64,
}

/// One codec × adapter × size × thread-count measurement.
#[derive(Debug, Clone)]
pub struct CodecResult {
    pub codec: String,
    pub adapter: String,
    /// Cube side of the synthetic input (`side³` f32 elements).
    pub side: usize,
    /// Thread count the adapter was configured with (1 for serial).
    pub threads: usize,
    pub elements: usize,
    pub bytes: usize,
    pub compress: Throughput,
    pub decompress: Throughput,
    pub ratio: f64,
}

/// Persistent-pool vs spawn-per-call microbenchmark result.
#[derive(Debug, Clone)]
pub struct PoolBench {
    /// Stage invocations per side (ISSUE floor: ≥ 32).
    pub invocations: usize,
    pub pool: Duration,
    pub spawn: Duration,
    /// `spawn / pool` — how much faster the persistent pool is.
    pub speedup: f64,
}

/// Metrics-registry overhead on the serving path, measured *paired*:
/// the same deterministic job stream served with no registry installed
/// and with a full registry + SLO tracker, interleaved in one process
/// so machine noise cancels. The no-registry side is byte-for-byte the
/// pre-metrics serve path (every instrument site is an `if let`), so
/// `overhead` bounds what the metrics layer adds even when ON; when no
/// registry is installed the cost is the skipped `Option` checks alone.
#[derive(Debug, Clone)]
pub struct ServeOverhead {
    /// Jobs in the measured stream.
    pub jobs: usize,
    /// Timed off/on pairs.
    pub reps: usize,
    /// Best (minimum) wall-clock with `ServeConfig::metrics = None`.
    /// Wall-clock noise is strictly additive, so the minimum over reps
    /// is the best single-side estimate (medians still carry several
    /// percent of scheduler jitter at these run lengths).
    pub off: Duration,
    /// Best (minimum) wall-clock with the registry + SLO tracker
    /// installed.
    pub on: Duration,
    /// Trimmed mean of the per-pair `on/off − 1` ratios (middle half of
    /// the pairs, sorted). Noise *within* a back-to-back pair is highly
    /// correlated and cancels in the ratio; trimming discards the pairs
    /// a load burst split down the middle. Empirically this estimator's
    /// run-to-run scatter is several times tighter than `min(on)/
    /// min(off)`, which matters because the compare gate has to resolve
    /// a sub-2% effect. May be slightly negative under noise.
    pub overhead: f64,
}

/// A complete bench run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub label: String,
    pub quick: bool,
    pub threads: usize,
    /// SIMD tier the kernel dispatch selected for this run
    /// ("scalar", "sse2", or "avx2").
    pub simd: String,
    pub pool: PoolBench,
    pub serve: ServeOverhead,
    /// Flight-recorder overhead, measured with the same paired
    /// methodology as `serve` (recorder off vs on, metrics off on both
    /// sides so the two budgets don't confound each other).
    pub flight: ServeOverhead,
    pub results: Vec<CodecResult>,
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_median<F: FnMut()>(reps: usize, warmup: usize, mut f: F) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let samples = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    median(samples)
}

/// Minimum wall-clock over `reps` timed runs (see [`Throughput::best`]
/// for why minimum, not median, is the right point estimate here).
fn time_best<F: FnMut()>(reps: usize, warmup: usize, mut f: F) -> Duration {
    for _ in 0..warmup {
        f();
    }
    (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("reps >= 1")
}

fn gbps(bytes: usize, t: Duration) -> f64 {
    bytes as f64 / t.as_secs_f64().max(1e-12) / 1e9
}

fn bench_codecs() -> Vec<Codec> {
    vec![
        Codec::Mgard(MgardConfig::relative(1e-3)),
        Codec::Zfp(ZfpConfig::fixed_rate(16)),
        Codec::Huffman,
        Codec::Sz(SzConfig::relative(1e-3)),
        Codec::Lz4,
    ]
}

/// The adapter × thread axis: the serial adapter plus the CPU-parallel
/// adapter at 1, 2, and 4 threads (oversubscription data on small
/// hosts, scaling data on large ones).
fn bench_adapters() -> Vec<(&'static str, usize, Box<dyn DeviceAdapter>)> {
    vec![
        ("serial", 1, Box::new(SerialAdapter::new())),
        ("openmp", 1, Box::new(CpuParallelAdapter::new(1))),
        ("openmp", 2, Box::new(CpuParallelAdapter::new(2))),
        ("openmp", 4, Box::new(CpuParallelAdapter::new(4))),
    ]
}

/// ≥ 32 GEM + DEM stage invocations through the persistent pool versus
/// the spawn-per-call baseline. Both sides run the same bodies with the
/// same grain, so the only difference is worker startup and scratch
/// lifetime — precisely what the persistent pool amortizes.
fn pool_microbench(quick: bool) -> PoolBench {
    let invocations = if quick { 32 } else { 64 };
    let n = 4096usize;
    let grain = 64usize;
    let scratch = 2048usize;
    let pool = WorkerPool::global();
    // At least 4-way, mirroring the `CpuParallelAdapter::new(4)` config
    // used across the suite: pre-pool, such an adapter spawned OS
    // threads per stage even on a single-core host — exactly the
    // overhead the persistent pool removes.
    let threads = (pool.workers() + 1).max(4);
    let sink = AtomicU64::new(0);
    let dem_body = |i: usize| {
        // A touch of real work per index so bodies don't optimize away.
        sink.fetch_add((i as u64).wrapping_mul(0x9E37), Ordering::Relaxed);
    };
    let gem_body = |g: usize, scratch: &mut [u8]| {
        scratch[g % scratch.len()] = g as u8;
        sink.fetch_add(scratch[0] as u64, Ordering::Relaxed);
    };
    let run_pool = || {
        for _ in 0..invocations / 2 {
            pool.run(threads, n, grain, &dem_body).expect("bench body");
            pool.run_with_scratch(threads, 64, scratch, true, &gem_body)
                .expect("bench body");
        }
    };
    let run_spawn = || {
        for _ in 0..invocations / 2 {
            spawning_parallel_for(threads, n, grain, &dem_body);
            spawning_parallel_for_with_scratch(threads, 64, scratch, &gem_body);
        }
    };
    let (reps, warmup) = if quick { (3, 1) } else { (7, 2) };
    let pool_t = time_median(reps, warmup, run_pool);
    let spawn_t = time_median(reps, warmup, run_spawn);
    PoolBench {
        invocations,
        pool: pool_t,
        spawn: spawn_t,
        speedup: spawn_t.as_secs_f64() / pool_t.as_secs_f64().max(1e-12),
    }
}

/// The deterministic job stream both paired serving benches run.
fn overhead_bench_jobs(njobs: usize) -> Vec<hpdr_serve::JobRequest> {
    let mut cache = hpdr_serve::PayloadCache::new();
    (0..njobs)
        .map(|i| {
            let (input, meta) = cache.input(16);
            hpdr_serve::JobRequest::new(
                hpdr_serve::TenantId((i % 4) as u32),
                hpdr_sim::Ns::from_micros(i as u64 * 50),
                hpdr_serve::ServeCodec::Zfp { rate: 16 },
                hpdr_serve::JobPayload::Compress { input, meta },
            )
        })
        .collect()
}

/// Paired on/off measurement engine shared by the metering and flight
/// overhead benches: interleave the two sides rep by rep so cache state
/// and machine noise hit both equally, alternating which side runs
/// first within each pair so slow drift in machine load cancels instead
/// of biasing one side.
fn paired_overhead(njobs: usize, reps: usize, warmup: usize, run: impl Fn(bool)) -> ServeOverhead {
    for _ in 0..warmup {
        run(false);
        run(true);
    }
    let mut off_samples = Vec::with_capacity(reps);
    let mut on_samples = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    for i in 0..reps {
        let first_on = i % 2 == 1;
        let t0 = Instant::now();
        run(first_on);
        let d0 = t0.elapsed();
        let t1 = Instant::now();
        run(!first_on);
        let d1 = t1.elapsed();
        let (off_d, on_d) = if first_on { (d1, d0) } else { (d0, d1) };
        ratios.push(on_d.as_secs_f64() / off_d.as_secs_f64().max(1e-12) - 1.0);
        off_samples.push(off_d);
        on_samples.push(on_d);
    }
    let off = off_samples.into_iter().min().expect("reps >= 1");
    let on = on_samples.into_iter().min().expect("reps >= 1");
    // Trimmed mean of per-pair ratios: see the `ServeOverhead::overhead`
    // docs for why this beats a ratio of minimums here.
    ratios.sort_by(f64::total_cmp);
    let keep = &ratios[reps / 4..reps - reps / 4];
    let overhead = keep.iter().sum::<f64>() / keep.len() as f64;
    ServeOverhead {
        jobs: njobs,
        reps,
        off,
        on,
        overhead,
    }
}

/// Paired metering-overhead microbench: serve one deterministic job
/// stream with and without the metrics registry.
fn serve_overhead_bench(quick: bool) -> ServeOverhead {
    use std::sync::Arc;

    let njobs = if quick { 48 } else { 96 };
    let jobs = overhead_bench_jobs(njobs);
    let run = |metered: bool| {
        let cfg = hpdr_serve::ServeConfig {
            devices: 2,
            metrics: metered.then(|| hpdr_serve::MetricsConfig {
                slo: Some(hpdr_serve::SloConfig::default()),
                ..hpdr_serve::MetricsConfig::default()
            }),
            ..hpdr_serve::ServeConfig::default()
        };
        // Serial adapter on purpose: the metering cost lives in the
        // scheduler, not the codec, and the worker pool's wakeup jitter
        // is an order of magnitude larger than the 2% budget this bench
        // has to resolve.
        let work: Arc<dyn DeviceAdapter> = Arc::new(hpdr_core::SerialAdapter::new());
        let mut source = hpdr_serve::VecSource::new(jobs.clone());
        let outcome = hpdr_serve::serve(cfg, work, &mut source);
        assert_eq!(outcome.records.len(), njobs, "bench stream must drain");
        std::hint::black_box(outcome.makespan);
    };
    let (reps, warmup) = if quick { (150, 3) } else { (200, 3) };
    paired_overhead(njobs, reps, warmup, run)
}

/// Paired flight-recorder overhead microbench: the same stream served
/// with the causal trace recorder off and on. Metrics stay off on both
/// sides so the flight number isolates the recorder's own cost — the
/// per-event ring-buffer pushes plus the end-of-run analysis.
fn flight_overhead_bench(quick: bool) -> ServeOverhead {
    use std::sync::Arc;

    let njobs = if quick { 48 } else { 96 };
    let jobs = overhead_bench_jobs(njobs);
    let run = |traced: bool| {
        let cfg = hpdr_serve::ServeConfig {
            devices: 2,
            flight: traced.then(hpdr_serve::FlightConfig::default),
            ..hpdr_serve::ServeConfig::default()
        };
        let work: Arc<dyn DeviceAdapter> = Arc::new(hpdr_core::SerialAdapter::new());
        let mut source = hpdr_serve::VecSource::new(jobs.clone());
        let mut outcome = hpdr_serve::serve(cfg, work, &mut source);
        assert_eq!(outcome.records.len(), njobs, "bench stream must drain");
        // The traced side pays for the analysis too: that is part of
        // what `--flight-out` costs a serving run.
        if let Some(log) = outcome.flight.take() {
            let report = hpdr_flight::analyze(&log, &hpdr_flight::FlightConfig::default(), None);
            std::hint::black_box(report.total_jobs);
        }
        std::hint::black_box(outcome.makespan);
    };
    let (reps, warmup) = if quick { (150, 3) } else { (200, 3) };
    paired_overhead(njobs, reps, warmup, run)
}

/// Run the full benchmark matrix: size axis 16³ (4 KiB-class) → 32³ →
/// 128³, with the paper-scale 512³ point opt-in behind `--paper-scale`;
/// thread axis 1/2/4 via the CPU-parallel adapter plus the serial
/// baseline. Quick mode keeps two sizes so size-dependent effects stay
/// visible even in CI smoke runs.
pub fn run_bench(opts: &BenchOptions) -> Result<BenchReport> {
    let mut sides: Vec<usize> = if opts.quick {
        vec![16, 32]
    } else {
        vec![16, 32, 128]
    };
    if opts.paper_scale {
        sides.push(512);
    }
    let mut results = Vec::new();
    for &side in &sides {
        // Repetition budget shrinks with input volume: the large points
        // are seconds-per-run, and run-to-run spread scales down as the
        // timed region grows. The µs-scale small sides need a deep
        // median to survive scheduler jitter — a 16³ row at 25 reps is
        // still tens of milliseconds total.
        let (reps, warmup) = match (opts.quick, side) {
            (_, s) if s >= 512 => (1, 0),
            (_, s) if s >= 128 => (5, 1),
            (true, _) => (3, 1),
            (false, s) if s <= 16 => (25, 3),
            (false, _) => (15, 2),
        };
        let data = hpdr_data::nyx_density(side, 7);
        let meta = ArrayMeta::new(DType::F32, data.shape.clone());
        let bytes = data.bytes.len();
        for codec in bench_codecs() {
            for (aname, threads, adapter) in bench_adapters() {
                // One untimed run to produce the stream for decompression
                // and to verify the round trip before timing it.
                let (stream, stats) = crate::compress(adapter.as_ref(), &data.bytes, &meta, codec)?;
                let (back, _) = crate::decompress(adapter.as_ref(), &stream)?;
                if back.len() != bytes {
                    return Err(HpdrError::invalid(format!(
                        "{} on {aname}: round trip returned {} bytes, expected {bytes}",
                        codec.name(),
                        back.len()
                    )));
                }
                let c_best = time_best(reps, warmup, || {
                    crate::compress(adapter.as_ref(), &data.bytes, &meta, codec).expect("compress");
                });
                let d_best = time_best(reps, warmup, || {
                    crate::decompress(adapter.as_ref(), &stream).expect("decompress");
                });
                results.push(CodecResult {
                    codec: codec.name().to_string(),
                    adapter: aname.to_string(),
                    side,
                    threads,
                    elements: bytes / 4,
                    bytes,
                    compress: Throughput {
                        best: c_best,
                        gbps: gbps(bytes, c_best),
                    },
                    decompress: Throughput {
                        best: d_best,
                        gbps: gbps(bytes, d_best),
                    },
                    ratio: stats.ratio,
                });
            }
        }
    }
    Ok(BenchReport {
        label: opts.label.clone(),
        quick: opts.quick,
        threads: WorkerPool::global().workers() + 1,
        simd: hpdr_kernels::kernels().tier.name().to_string(),
        pool: pool_microbench(opts.quick),
        serve: serve_overhead_bench(opts.quick),
        flight: flight_overhead_bench(opts.quick),
        results,
    })
}

impl BenchReport {
    /// Hand-rolled JSON document (schema [`BENCH_SCHEMA`]), wrapped in
    /// the shared `hpdr-verify` envelope header. A report only
    /// serializes after every measurement succeeded, so `ok` is true.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "\"label\":\"{}\"", self.label);
        let _ = write!(s, ",\"quick\":{}", self.quick);
        let _ = write!(s, ",\"threads\":{}", self.threads);
        let _ = write!(s, ",\"simd\":\"{}\"", self.simd);
        let _ = write!(
            s,
            ",\"pool\":{{\"invocations\":{},\"pool_ns\":{},\"spawn_ns\":{},\"speedup\":{:.4}}}",
            self.pool.invocations,
            self.pool.pool.as_nanos(),
            self.pool.spawn.as_nanos(),
            self.pool.speedup
        );
        let _ = write!(
            s,
            ",\"serve_overhead\":{{\"jobs\":{},\"reps\":{},\"off_ns\":{},\"on_ns\":{},\
             \"overhead\":{:.4}}}",
            self.serve.jobs,
            self.serve.reps,
            self.serve.off.as_nanos(),
            self.serve.on.as_nanos(),
            self.serve.overhead
        );
        let _ = write!(
            s,
            ",\"flight_overhead\":{{\"jobs\":{},\"reps\":{},\"off_ns\":{},\"on_ns\":{},\
             \"overhead\":{:.4}}}",
            self.flight.jobs,
            self.flight.reps,
            self.flight.off.as_nanos(),
            self.flight.on.as_nanos(),
            self.flight.overhead
        );
        s.push_str(",\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"codec\":\"{}\",\"adapter\":\"{}\",\"side\":{},\"threads\":{},\
                 \"elements\":{},\"bytes\":{},\
                 \"ratio\":{:.4},\
                 \"compress\":{{\"best_ns\":{},\"gbps\":{:.6}}},\
                 \"decompress\":{{\"best_ns\":{},\"gbps\":{:.6}}}}}",
                r.codec,
                r.adapter,
                r.side,
                r.threads,
                r.elements,
                r.bytes,
                r.ratio,
                r.compress.best.as_nanos(),
                r.compress.gbps,
                r.decompress.best.as_nanos(),
                r.decompress.gbps
            );
        }
        s.push(']');
        hpdr_verify::envelope::wrap(BENCH_SCHEMA, true, &s)
    }

    /// Human-readable table.
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![format!(
            "bench '{}' ({} threads, simd {}, {})",
            self.label,
            self.threads,
            self.simd,
            if self.quick { "quick" } else { "full" }
        )];
        out.push(format!(
            "pool vs spawn-per-call over {} stage invocations: {:.2}x \
             (pool {:?}, spawn {:?})",
            self.pool.invocations, self.pool.speedup, self.pool.pool, self.pool.spawn
        ));
        out.push(format!(
            "serve metering overhead over {} jobs x {} reps (paired): \
             {:+.2}% (off {:?}, on {:?})",
            self.serve.jobs,
            self.serve.reps,
            self.serve.overhead * 100.0,
            self.serve.off,
            self.serve.on
        ));
        out.push(format!(
            "flight recorder overhead over {} jobs x {} reps (paired): \
             {:+.2}% (off {:?}, on {:?})",
            self.flight.jobs,
            self.flight.reps,
            self.flight.overhead * 100.0,
            self.flight.off,
            self.flight.on
        ));
        out.push(format!(
            "{:10} {:8} {:>4} {:>3} {:>10} {:>14} {:>14} {:>8}",
            "codec", "adapter", "side", "thr", "bytes", "comp GB/s", "decomp GB/s", "ratio"
        ));
        for r in &self.results {
            out.push(format!(
                "{:10} {:8} {:>4} {:>3} {:>10} {:>14.4} {:>14.4} {:>8.2}",
                r.codec,
                r.adapter,
                r.side,
                r.threads,
                r.bytes,
                r.compress.gbps,
                r.decompress.gbps,
                r.ratio
            ));
        }
        out
    }
}

/// Structural validation of a bench JSON document: schema id, non-empty
/// results, and positive finite throughput numbers. No serde in the
/// dependency tree, so this is a purposeful string-level check of every
/// field CI relies on — it rejects truncation, a wrong schema id, and
/// missing sections.
pub fn validate_bench_json(json: &str) -> std::result::Result<(), String> {
    let j = json.trim();
    if !(j.starts_with('{') && j.ends_with('}')) {
        return Err("document is not a JSON object".into());
    }
    let v2 = format!("\"schema\":\"{BENCH_SCHEMA}\"");
    let v1 = format!("\"schema\":\"{BENCH_SCHEMA_V1}\"");
    if !j.contains(&v2) && !j.contains(&v1) {
        return Err(format!(
            "missing or wrong schema id (expected {BENCH_SCHEMA} or {BENCH_SCHEMA_V1})"
        ));
    }
    for key in [
        "\"label\":",
        "\"threads\":",
        "\"pool\":",
        "\"speedup\":",
        "\"serve_overhead\":",
        "\"results\":[",
        "\"compress\":",
        "\"decompress\":",
    ] {
        if !j.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    if j.contains("\"results\":[]") {
        return Err("results array is empty".into());
    }
    // Every gbps value must parse as a positive finite number.
    let mut rest = j;
    let mut seen = 0usize;
    while let Some(pos) = rest.find("\"gbps\":") {
        rest = &rest[pos + 7..];
        let end = rest.find([',', '}']).ok_or("truncated gbps value")?;
        let v: f64 = rest[..end]
            .trim()
            .parse()
            .map_err(|_| format!("unparseable gbps value '{}'", &rest[..end]))?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("non-positive gbps value {v}"));
        }
        seen += 1;
    }
    if seen == 0 {
        return Err("no gbps measurements in document".into());
    }
    Ok(())
}

/// One `(codec, adapter)` row extracted from a bench JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub codec: String,
    pub adapter: String,
    /// Thread-count axis (`None` for v1 documents, which predate it).
    pub threads: Option<u64>,
    pub bytes: u64,
    pub compress_gbps: f64,
    pub decompress_gbps: f64,
}

fn scan_str(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = obj.find(&needle)? + needle.len();
    let end = obj[at..].find('"')?;
    Some(obj[at..at + end].to_string())
}

fn scan_num(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extract the per-result rows from a bench JSON document.
pub fn parse_bench_entries(json: &str) -> std::result::Result<Vec<BenchEntry>, String> {
    validate_bench_json(json)?;
    let mut entries = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("{\"codec\":") {
        rest = &rest[pos..];
        // Each row ends with the decompress block's `}}` pair.
        let end = rest.find("}}").map(|e| e + 2).ok_or("truncated result")?;
        let obj = &rest[..end];
        let comp_at = obj.find("\"compress\":").ok_or("missing compress block")?;
        let dec_at = obj
            .find("\"decompress\":")
            .ok_or("missing decompress block")?;
        entries.push(BenchEntry {
            codec: scan_str(obj, "codec").ok_or("missing codec")?,
            adapter: scan_str(obj, "adapter").ok_or("missing adapter")?,
            threads: scan_num(obj, "threads").map(|t| t as u64),
            bytes: scan_num(obj, "bytes").ok_or("missing bytes")? as u64,
            compress_gbps: scan_num(&obj[comp_at..dec_at], "gbps").ok_or("missing gbps")?,
            decompress_gbps: scan_num(&obj[dec_at..], "gbps").ok_or("missing gbps")?,
        });
        rest = &rest[end..];
    }
    if entries.is_empty() {
        return Err("no result entries".into());
    }
    Ok(entries)
}

/// Ceiling on the paired serve-metering overhead accepted by
/// `bench --compare` (the zero-overhead-when-off contract).
pub const METERING_OVERHEAD_CEILING: f64 = 0.02;

/// Extract `"overhead":<num>` from a document's `serve_overhead` block.
fn scan_serve_overhead(doc: &str) -> Option<f64> {
    let at = doc.find("\"serve_overhead\":")?;
    scan_num(&doc[at..], "overhead")
}

/// Extract `"overhead":<num>` from a document's `flight_overhead`
/// block. Absent from documents that predate the flight recorder.
fn scan_flight_overhead(doc: &str) -> Option<f64> {
    let at = doc.find("\"flight_overhead\":")?;
    scan_num(&doc[at..], "overhead")
}

/// `hpdr bench --compare A.json B.json`: diff two bench documents and
/// flag regressions beyond `threshold` (fractional, e.g. 0.10 = 10%).
///
/// Rows are matched on `(codec, adapter, bytes)`; each direction's
/// throughput in B is compared against A (the baseline). Returns `Err`
/// — a non-zero exit — if any matched direction regressed by more than
/// the threshold, listing every offender.
///
/// Additionally gates the candidate's *paired* serve-metering overhead
/// at [`METERING_OVERHEAD_CEILING`] (2%). Cross-run wall-clock numbers
/// carry machine noise (hence the caller-chosen row threshold), but the
/// paired measurement interleaves metered and unmetered serves in one
/// process, so 2% is a real bound, not a noise floor.
pub fn compare_command(a_path: &str, b_path: &str, threshold: f64) -> Result<Vec<String>> {
    let load = |p: &str| -> Result<(Vec<BenchEntry>, String)> {
        let doc = std::fs::read_to_string(p)?;
        let entries =
            parse_bench_entries(&doc).map_err(|e| HpdrError::invalid(format!("{p}: {e}")))?;
        Ok((entries, doc))
    };
    let (a, _a_doc) = load(a_path)?;
    let (b, b_doc) = load(b_path)?;
    let mut lines = vec![format!(
        "bench compare: {a_path} (baseline) vs {b_path}, threshold {:.1}%",
        threshold * 100.0
    )];
    lines.push(format!(
        "{:10} {:8} {:>3} {:>10} {:>10} {:>10} {:>7} {:>10} {:>10} {:>7}",
        "codec",
        "adapter",
        "thr",
        "bytes",
        "comp A",
        "comp B",
        "c B/A",
        "decomp A",
        "decomp B",
        "d B/A"
    ));
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    for ea in &a {
        // Rows match on (codec, adapter, bytes), plus the thread axis
        // when both documents carry it (v1 baselines omit threads and
        // match any thread count at the same size).
        let Some(eb) = b.iter().find(|e| {
            e.codec == ea.codec
                && e.adapter == ea.adapter
                && e.bytes == ea.bytes
                && match (ea.threads, e.threads) {
                    (Some(ta), Some(tb)) => ta == tb,
                    _ => true,
                }
        }) else {
            lines.push(format!(
                "{:10} {:8} {:>3} {:>10} — only in baseline",
                ea.codec,
                ea.adapter,
                ea.threads.map_or("-".to_string(), |t| t.to_string()),
                ea.bytes
            ));
            continue;
        };
        matched += 1;
        lines.push(format!(
            "{:10} {:8} {:>3} {:>10} {:>10.4} {:>10.4} {:>6.2}x {:>10.4} {:>10.4} {:>6.2}x",
            ea.codec,
            ea.adapter,
            eb.threads
                .or(ea.threads)
                .map_or("-".to_string(), |t| t.to_string()),
            ea.bytes,
            ea.compress_gbps,
            eb.compress_gbps,
            eb.compress_gbps / ea.compress_gbps.max(1e-12),
            ea.decompress_gbps,
            eb.decompress_gbps,
            eb.decompress_gbps / ea.decompress_gbps.max(1e-12)
        ));
        for (dir, base, new) in [
            ("compress", ea.compress_gbps, eb.compress_gbps),
            ("decompress", ea.decompress_gbps, eb.decompress_gbps),
        ] {
            if new < base * (1.0 - threshold) {
                regressions.push(format!(
                    "{} {} {} {}: {:.4} -> {:.4} GB/s ({:+.1}%)",
                    ea.codec,
                    ea.adapter,
                    ea.bytes,
                    dir,
                    base,
                    new,
                    (new / base - 1.0) * 100.0
                ));
            }
        }
    }
    if matched == 0 {
        return Err(HpdrError::invalid(
            "no comparable rows between the two documents".to_string(),
        ));
    }
    match scan_serve_overhead(&b_doc) {
        Some(ov) if ov > METERING_OVERHEAD_CEILING => regressions.push(format!(
            "serve metering overhead {:.2}% exceeds the {:.0}% zero-overhead-when-off budget",
            ov * 100.0,
            METERING_OVERHEAD_CEILING * 100.0
        )),
        Some(ov) => lines.push(format!(
            "serve metering overhead {:+.2}% (paired, budget {:.0}%)",
            ov * 100.0,
            METERING_OVERHEAD_CEILING * 100.0
        )),
        None => lines.push("candidate carries no serve_overhead section".to_string()),
    }
    // The flight recorder shares the 2% paired-overhead budget. Old
    // baselines predate the section, so only the candidate is gated and
    // its absence there is informational, not an error.
    match scan_flight_overhead(&b_doc) {
        Some(ov) if ov > METERING_OVERHEAD_CEILING => regressions.push(format!(
            "flight recorder overhead {:.2}% exceeds the {:.0}% paired-overhead budget",
            ov * 100.0,
            METERING_OVERHEAD_CEILING * 100.0
        )),
        Some(ov) => lines.push(format!(
            "flight recorder overhead {:+.2}% (paired, budget {:.0}%)",
            ov * 100.0,
            METERING_OVERHEAD_CEILING * 100.0
        )),
        None => lines.push("candidate carries no flight_overhead section".to_string()),
    }
    if regressions.is_empty() {
        lines.push(format!(
            "{matched} row(s) compared, no regression beyond {:.1}%",
            threshold * 100.0
        ));
        Ok(lines)
    } else {
        Err(HpdrError::invalid(format!(
            "{} throughput regression(s) beyond {:.1}%:\n{}",
            regressions.len(),
            threshold * 100.0,
            regressions.join("\n")
        )))
    }
}

/// Execute `hpdr bench`: run, validate, write `BENCH_<label>.json`, and
/// return the printable lines (the raw JSON when `json` is set).
pub fn bench_command(opts: &BenchOptions, json: bool) -> Result<Vec<String>> {
    let report = run_bench(opts)?;
    let doc = report.to_json();
    validate_bench_json(&doc)
        .map_err(|e| HpdrError::invalid(format!("bench output failed schema validation: {e}")))?;
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", opts.label));
    std::fs::write(&path, doc.as_bytes())?;
    let mut lines = if json { vec![doc] } else { report.render() };
    lines.push(format!("wrote {path}"));
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        let d = |n| Duration::from_nanos(n);
        assert_eq!(median(vec![d(3), d(1), d(2)]), d(2));
        assert_eq!(median(vec![d(5)]), d(5));
    }

    #[test]
    fn validator_accepts_real_report_and_rejects_damage() {
        let report = BenchReport {
            label: "t".into(),
            quick: true,
            threads: 4,
            simd: "scalar".into(),
            pool: PoolBench {
                invocations: 32,
                pool: Duration::from_micros(10),
                spawn: Duration::from_micros(30),
                speedup: 3.0,
            },
            serve: ServeOverhead {
                jobs: 48,
                reps: 5,
                off: Duration::from_millis(10),
                on: Duration::from_millis(10),
                overhead: 0.001,
            },
            flight: ServeOverhead {
                jobs: 48,
                reps: 5,
                off: Duration::from_millis(10),
                on: Duration::from_millis(10),
                overhead: 0.002,
            },
            results: vec![CodecResult {
                codec: "lz4".into(),
                adapter: "serial".into(),
                side: 16,
                threads: 1,
                elements: 1024,
                bytes: 4096,
                compress: Throughput {
                    best: Duration::from_micros(5),
                    gbps: 0.8,
                },
                decompress: Throughput {
                    best: Duration::from_micros(4),
                    gbps: 1.0,
                },
                ratio: 1.5,
            }],
        };
        let doc = report.to_json();
        validate_bench_json(&doc).expect("valid document");
        // A v1 schema id is still accepted (old baselines compare).
        validate_bench_json(&doc.replace("hpdr-bench/v2", "hpdr-bench/v1"))
            .expect("v1 documents stay valid");
        // Damage: wrong schema.
        assert!(validate_bench_json(&doc.replace("hpdr-bench/v2", "v0")).is_err());
        // Damage: truncation.
        assert!(validate_bench_json(&doc[..doc.len() - 1]).is_err());
        // Damage: empty results.
        let empty = doc.replace(
            &doc[doc.find("\"results\":[").unwrap()..doc.len() - 1],
            "\"results\":[]",
        );
        assert!(validate_bench_json(&empty).is_err());
        // Damage: zero throughput.
        assert!(validate_bench_json(&doc.replace("\"gbps\":0.8", "\"gbps\":0.0")).is_err());
        // Damage: missing serve-overhead section.
        assert!(validate_bench_json(&doc.replace("\"serve_overhead\"", "\"x\"")).is_err());
        // The flight section is emitted but stays optional to the
        // validator: committed baselines predate it and must keep
        // validating.
        assert!(doc.contains("\"flight_overhead\":"));
        validate_bench_json(&doc.replace("\"flight_overhead\"", "\"x\""))
            .expect("documents without a flight section stay valid");
    }

    #[test]
    fn compare_gates_on_paired_metering_overhead() {
        let dir = std::env::temp_dir().join(format!("hpdr-cmp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The two sections' placeholder overheads must be distinct:
        // `str::replace` rewrites every match, so each section needs its
        // own needle.
        let mk = |name: &str, overhead: &str, flight: &str| {
            let doc = BenchReport {
                label: name.into(),
                quick: true,
                threads: 4,
                simd: "scalar".into(),
                pool: PoolBench {
                    invocations: 32,
                    pool: Duration::from_micros(10),
                    spawn: Duration::from_micros(30),
                    speedup: 3.0,
                },
                serve: ServeOverhead {
                    jobs: 48,
                    reps: 5,
                    off: Duration::from_millis(10),
                    on: Duration::from_millis(10),
                    overhead: 0.0,
                },
                flight: ServeOverhead {
                    jobs: 48,
                    reps: 5,
                    off: Duration::from_millis(10),
                    on: Duration::from_millis(10),
                    overhead: 0.0005,
                },
                results: vec![CodecResult {
                    codec: "lz4".into(),
                    adapter: "serial".into(),
                    side: 16,
                    threads: 1,
                    elements: 1024,
                    bytes: 4096,
                    compress: Throughput {
                        best: Duration::from_micros(5),
                        gbps: 0.8,
                    },
                    decompress: Throughput {
                        best: Duration::from_micros(4),
                        gbps: 1.0,
                    },
                    ratio: 1.5,
                }],
            }
            .to_json()
            .replace("\"overhead\":0.0000", &format!("\"overhead\":{overhead}"))
            .replace("\"overhead\":0.0005", &format!("\"overhead\":{flight}"));
            let p = dir.join(format!("{name}.json"));
            std::fs::write(&p, doc).unwrap();
            p.display().to_string()
        };
        let base = mk("base", "0.0010", "0.0010");
        let ok = mk("ok", "0.0150", "0.0120");
        let bad = mk("bad", "0.0500", "0.0010");
        let badflight = mk("badflight", "0.0010", "0.0500");
        // Identical throughput rows, both overheads within budget:
        // passes and reports each.
        let lines = compare_command(&base, &ok, 0.10).unwrap();
        assert!(
            lines.iter().any(|l| l.contains("metering overhead +1.50%")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("flight recorder overhead +1.20%")),
            "{lines:?}"
        );
        // Either overhead past the 2% ceiling fails even with clean rows.
        let err = compare_command(&base, &bad, 0.10).unwrap_err();
        assert!(err.to_string().contains("zero-overhead-when-off"), "{err}");
        let err = compare_command(&base, &badflight, 0.10).unwrap_err();
        assert!(
            err.to_string().contains("flight recorder overhead"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pool_microbench_reports_plausible_numbers() {
        let b = pool_microbench(true);
        assert_eq!(b.invocations, 32);
        assert!(b.pool > Duration::ZERO);
        assert!(b.spawn > Duration::ZERO);
        assert!(b.speedup > 0.0);
    }

    #[test]
    fn quick_bench_runs_and_validates() {
        let dir = std::env::temp_dir().join(format!("hpdr-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_test.json");
        let opts = BenchOptions {
            quick: true,
            paper_scale: false,
            label: "test".into(),
            out: Some(out.display().to_string()),
        };
        let lines = bench_command(&opts, true).unwrap();
        assert!(lines[0].contains("\"schema\":\"hpdr-bench/v2\""));
        let on_disk = std::fs::read_to_string(&out).unwrap();
        validate_bench_json(&on_disk).expect("written document validates");
        // Five codecs × four adapter/thread configs × two sizes: quick
        // mode keeps at least two payload sizes on the axis.
        assert_eq!(on_disk.matches("\"codec\":").count(), 40);
        assert_eq!(on_disk.matches("\"side\":16,").count(), 20);
        assert_eq!(on_disk.matches("\"side\":32,").count(), 20);
        assert_eq!(on_disk.matches("\"threads\":2,").count(), 10);
        // The document records which SIMD tier produced it.
        assert!(on_disk.contains("\"simd\":\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_accepts_v1_documents_and_compare_matches_threadless_rows() {
        let v1 = r#"{"schema":"hpdr-bench/v1","label":"old","threads":4,
            "pool":{"invocations":32,"pool_ns":1,"spawn_ns":3,"speedup":3.0},
            "serve_overhead":{"jobs":48,"reps":5,"off_ns":1,"on_ns":1,"overhead":0.001},
            "results":[{"codec":"lz4","adapter":"serial","elements":1024,"bytes":4096,
            "ratio":1.5,"compress":{"median_ns":5,"gbps":0.8},
            "decompress":{"median_ns":4,"gbps":1.0}}]}"#;
        let entries = parse_bench_entries(v1).expect("v1 parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].threads, None);
        assert_eq!(entries[0].bytes, 4096);
        // A v1 baseline compares against a v2 candidate: the threadless
        // row matches the same (codec, adapter, bytes) at any thread
        // count instead of being dropped.
        let v2 = v1
            .replace("hpdr-bench/v1", "hpdr-bench/v2")
            .replace(
                "\"adapter\":\"serial\",",
                "\"adapter\":\"serial\",\"side\":16,\"threads\":1,",
            )
            .replace("\"gbps\":0.8", "\"gbps\":1.6");
        let dir = std::env::temp_dir().join(format!("hpdr-v1v2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join("a.json");
        let pb = dir.join("b.json");
        std::fs::write(&pa, v1).unwrap();
        std::fs::write(&pb, &v2).unwrap();
        let lines = compare_command(&pa.display().to_string(), &pb.display().to_string(), 0.10)
            .expect("v1-vs-v2 compare succeeds");
        assert!(
            lines.iter().any(|l| l.contains("2.00x")),
            "speedup column missing: {lines:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
