//! Command-line interface logic for the `hpdr` binary.
//!
//! ```text
//! hpdr compress   --codec mgard --rel-eb 1e-3 --shape 512x512x512 \
//!                 --dtype f32 --input nyx.bin --output nyx.hpdr
//! hpdr decompress --input nyx.hpdr --output restored.bin
//! hpdr info       --input nyx.hpdr
//! ```
//!
//! Parsing and execution live here (unit-testable); the binary is a thin
//! wrapper.

use crate::{detect_codec, Codec, CompressionStats};
use hpdr_baselines::SzConfig;
use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, HpdrError, Result, Shape};
use hpdr_mgard::MgardConfig;
use hpdr_zfp::ZfpConfig;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Compress {
        codec: Codec,
        shape: Shape,
        dtype: DType,
        input: String,
        output: String,
    },
    Decompress {
        input: String,
        output: String,
    },
    Info {
        input: String,
    },
    /// Statically verify the shipped pipeline schedules: hazard analysis
    /// plus the Fig. 9 schedule lints over every configuration.
    Verify {
        json: bool,
    },
    /// Dynamically audit the shipped codec × adapter configurations:
    /// run payloads under the shadow-access recorder and diff observed
    /// vs declared effects, then explore alternate interleavings of the
    /// happens-before DAG and check invariants in each.
    Audit {
        json: bool,
        out: Option<String>,
    },
    /// Record a 2-chunk adaptive MGARD-X run and emit Chrome-trace JSON
    /// (Perfetto-loadable; printed unless --out gives a file path).
    Trace {
        out: Option<String>,
    },
    /// Dynamic profile over span traces: engine utilization, overlap,
    /// critical path, latency histograms — with invariant checks.
    Profile {
        figure: Option<String>,
        json: bool,
    },
    /// Wall-clock throughput benchmark: codec × adapter × size GB/s plus
    /// the persistent-pool vs spawn-per-call microbenchmark; writes a
    /// schema-validated `BENCH_<label>.json`.
    Bench {
        opts: crate::bench::BenchOptions,
        json: bool,
    },
    /// Diff two bench JSON documents and fail on throughput regressions
    /// beyond the threshold.
    BenchCompare {
        a: String,
        b: String,
        threshold: f64,
    },
    /// Run the multi-tenant serving scheduler over a job script (the
    /// built-in demo when none is given; `-` reads stdin).
    Serve {
        devices: usize,
        policy: hpdr_serve::Policy,
        jobs: Option<String>,
        json: bool,
        out: Option<String>,
        /// Enable the flight recorder and write the standalone
        /// `hpdr-flight/v1` causal-trace report here.
        flight_out: Option<String>,
    },
    /// Deterministic seeded load generation against the serving layer,
    /// reporting latency percentiles, goodput and rejection rate.
    Loadgen {
        opts: hpdr_serve::LoadgenOptions,
        json: bool,
        out: Option<String>,
        /// Also write the Prometheus-style exposition text here
        /// (implies --metrics).
        expo: Option<String>,
        /// Also write the `hpdr-flight/v1` causal-trace report here
        /// (implies the flight recorder).
        flight_out: Option<String>,
    },
    /// Live metrics view: run a seeded loadgen workload with the
    /// registry installed and print the latest-scrape instrument table.
    Top {
        opts: hpdr_serve::LoadgenOptions,
        /// Ring-series points shown per instrument.
        tail: usize,
    },
    /// Per-tenant SLO attainment and burn-rate timeline, from a saved
    /// loadgen/serve report (--report) or a fresh quick run.
    Slo {
        opts: hpdr_serve::LoadgenOptions,
        report: Option<String>,
    },
    /// Progressive retrieval demo over a stored multi-fidelity
    /// refactoring: fetch the minimal component set for a relative
    /// tolerance, optionally refine to a tighter one (strict-delta
    /// fetch), and report bytes moved vs the full container.
    Retrieve {
        /// Cube edge of the synthetic NYX field (`side³` f32 values).
        side: usize,
        /// Relative L∞ tolerance (× data range).
        tolerance: f64,
        /// Optional tighter relative tolerance to refine to.
        refine: Option<f64>,
        json: bool,
        out: Option<String>,
    },
    /// Sharded cross-node serving: drive the seeded loadgen workload
    /// through N scheduler shards behind one logical queue, with
    /// locality-aware placement, cost-accounted cross-node fetches and
    /// optional mid-run node-failure injection.
    Cluster {
        opts: hpdr_shard::ClusterLoadOptions,
        json: bool,
        out: Option<String>,
        /// Also write the standalone `hpdr-flight/v1` causal-trace
        /// report here (cluster runs always record flight events).
        flight_out: Option<String>,
    },
    /// Latency root-cause explanation from a saved report carrying an
    /// `hpdr-flight/v1` section (standalone or embedded in a cluster
    /// document): one job's breakdown + timeline, or the worst N.
    Explain {
        report: String,
        job: Option<u64>,
        worst: usize,
    },
    Help,
}

pub const USAGE: &str = "\
hpdr — high-performance portable scientific data reduction

USAGE:
  hpdr compress   --codec <mgard|zfp|huffman|sz|lz4> --shape <AxBxC>
                  --dtype <f32|f64> --input <raw.bin> --output <out.hpdr>
                  [--rel-eb <e>] [--abs-eb <e>] [--rate <bits>]
  hpdr decompress --input <in.hpdr> --output <raw.bin>
  hpdr info       --input <in.hpdr>
  hpdr verify     [--json]
  hpdr audit      [--json] [--out <audit.json>]
  hpdr trace      [--out <trace.json>]
  hpdr profile    [--figure fig1] [--json]
  hpdr bench      [--quick] [--paper-scale] [--json] [--label <name>]
                  [--out <file>]
  hpdr bench      --compare <a.json> <b.json> [--threshold <frac>]
  hpdr serve      [--devices <n>] [--policy serial|batched]
                  [--jobs <file|->] [--json] [--out <file>]
                  [--flight-out <file>]
  hpdr loadgen    [--rps <r>] [--duration <s>] [--tenants <t>]
                  [--open|--closed] [--seed <n>] [--devices <n>]
                  [--nodes <n>] [--quick] [--json] [--out <file>]
                  [--metrics] [--expo <file>] [--flight-out <file>]
  hpdr top        [loadgen flags] [--tail <n>]
  hpdr slo        [--report <file>] | [loadgen flags]
  hpdr retrieve   [--side <n>] [--tolerance <rel>] [--refine <rel>]
                  [--json] [--out <file>]
  hpdr cluster    [loadgen flags] [--nodes <n>] [--policy locality|random]
                  [--fail-node <id>@<t_us>] [--json] [--out <file>]
                  [--flight-out <file>]
  hpdr explain    --report <file> [--job <trace>] [--worst <n>]

Codec parameters: --rel-eb / --abs-eb apply to mgard and sz;
--rate applies to zfp (fixed-rate bits per value).

`hpdr verify` runs the static hazard analyzer (data races,
use-after-free, deadlock) and the Fig. 9 schedule lints over the op-DAGs
of every shipped pipeline configuration; --json emits a machine-readable
report (schema hpdr-verify/v1). Exits non-zero if any hazard or lint
finding is reported.

`hpdr audit` closes the gap `verify` cannot: it trusts no declaration.
Every shipped codec × adapter configuration is executed under the
memory pool's shadow-access recorder and each op's *observed* buffer
accesses are diffed against its declared effects (under-declaration is
an unsound error, over-declaration a warning); the happens-before DAG
is then explored across bounded alternate interleavings and the
use-after-free / double-free / use-before-alloc / two-buffer-liveness /
deser-first invariants are asserted in every admissible one. --json
emits the schema-validated hpdr-audit/v1 document (--out writes it to a
file). Exits non-zero on any unsound finding, same discipline as
`hpdr verify`.

`hpdr trace` records a 2-chunk adaptive MGARD-X compression on a small
NYX sample and emits Chrome-trace JSON (pid=device, tid=engine) — load
it at https://ui.perfetto.dev or chrome://tracing.

`hpdr profile` records a small NYX run and reports engine utilization,
compute-DMA overlap, allocator contention, the critical path and
per-op-class latencies; internal invariants (non-empty trace,
utilization in (0,1], critical path == makespan) exit non-zero when
violated. `--figure fig1` profiles the four comparator codecs
non-pipelined and checks their memory-op time share against the paper's
34-89% band.

`hpdr bench` measures real wall-clock compress/decompress throughput
(uncompressed GB/s, best of N runs after warmup) for every codec
across a size x thread matrix: sizes 16^3 -> 32^3 -> 128^3 (the
paper-scale 512^3 point is opt-in via --paper-scale), the serial
adapter plus the CPU-parallel adapter at 1/2/4 threads, plus a
microbenchmark of >= 32 GEM/DEM stage invocations through the
persistent worker pool against the spawn-per-call baseline. The
document records which SIMD tier the kernel dispatch selected (set
HPDR_FORCE_SCALAR=1 to record a scalar baseline). Results are written
to BENCH_<label>.json (schema hpdr-bench/v2, validated before writing;
v1 documents still parse; --out overrides the path). --quick keeps two
sizes and few repetitions for CI smoke; --json prints the raw document
instead of the table. `--compare a.json b.json` diffs two bench
documents row by row ((codec, adapter, bytes, threads) matched; a
threadless v1 row matches any thread count), prints per-row B/A
speedup ratios, and exits non-zero if any direction's throughput in b
regressed more than --threshold (default 0.10 = 10%) below a.

`hpdr serve` runs the multi-tenant serving scheduler over a job script
(one job per line: `<arrival_us> <tenant> <compress|decompress>
<codec[:param]> <side> [prio=N] [deadline_us=N] [cancel_us=N]`; the
built-in demo script runs when --jobs is omitted, `-` reads stdin).
Jobs are admitted under a byte-budget controller with bounded-queue
backpressure, batched into shared pipeline launches, and dispatched
over the simulated device pool with per-tenant fair scheduling; the
report (schema hpdr-serve/v1) carries trace-derived latency
percentiles and enforces that every admitted job reached exactly one
terminal state.

`hpdr loadgen` generates a deterministic seeded workload (Poisson
open loop, or --closed for one outstanding request per tenant) against
the serving layer and writes a validated latency report (schema
hpdr-loadgen/v1, default LOADGEN.json): p50/p95/p99 latency, goodput
GB/s, rejection rate, plus a continuous-batching-vs-serial scheduler
microbench. --quick is a seconds-fast CI smoke preset. --metrics
installs the virtual-time metrics registry (schema hpdr-metrics/v1,
embedded in the report JSON); --expo additionally writes the
Prometheus-style text exposition to a file (implies --metrics). Both
views are deterministic: identical flags and seed produce byte-identical
series and exposition.

`hpdr top` runs the same seeded loadgen workload with the registry
installed and prints the latest-scrape instrument table (counters,
gauges, histogram quantiles) plus the tail of each ring-buffer time
series — a deterministic, virtual-time `top(1)` over the serving stack.
Volatile instruments (host-thread pool occupancy) are marked `~` and
excluded from series and exposition.

`hpdr slo` reports per-tenant SLO attainment (latency target, error
budget, burn rate) and the burn-rate alert timeline. With --report it
reads a saved hpdr-loadgen/hpdr-serve/hpdr-metrics JSON document;
otherwise it runs a quick metered loadgen. Exits non-zero if any tenant
fired a burn-rate alert.

`hpdr retrieve` demonstrates progressive (multi-fidelity) retrieval: a
synthetic NYX density field (--side, default 32) is refactored into
per-(level, bit-plane) components, each independently entropy-coded
and stored as its own block in a BP container next to a manifest of
per-component sizes and error contributions. The reader then fetches
only the minimal component set for --tolerance (relative to the data
range; greedy by error-contribution per byte) and reports bytes
fetched vs the full container plus the measured max error. --refine
retrieves again at a tighter tolerance, fetching strictly the delta
components (zero re-fetches, asserted). Component fetches are charged
through the Summit-GPFS filesystem cost model and the accumulated
virtual I/O time is reported (io_model_ns). --json emits the
hpdr-progressive/v1 document (--out writes it to a file).

`hpdr cluster` drives the seeded loadgen workload through --nodes
independent scheduler shards (one simulated node each) behind a single
logical queue on one virtual clock. --policy locality (default) places
by rendezvous hashing on the job's data key so consumers of one stored
object land where it lives; --policy random is the seeded scatter
baseline. Off-home fetches cost virtual transfer time through the
hpdr-io filesystem model and appear as xfer spans; admission
backpressure spills to the byte-weighted least-loaded survivor.
--fail-node <id>@<t_us> kills a shard mid-run: its queued and in-flight
jobs re-route to survivors under a bounded retry budget, and the report
enforces zero lost jobs (non-zero exit otherwise). The hpdr-shard/v1
report (default CLUSTER.json) aggregates per-shard hpdr-serve/v1
reports with merged latency quantiles, placement / steal / retry
counters and per-shard cache hit rates; identical flags and seed are
byte-identical. `hpdr loadgen --nodes <n>` with n > 1 routes here.
Cluster runs always record per-job causal flight events; the report
embeds the `hpdr-flight/v1` analysis and `--flight-out` also writes it
standalone.

`hpdr explain` answers \"why was this job slow\": it reads a saved
report carrying an hpdr-flight/v1 section (a cluster report, or the
document `--flight-out` wrote) and prints each job's additive latency
breakdown — queue / placement / transfer / batch / service / retry
components that sum exactly to the end-to-end virtual-time latency —
plus, for tail-sampled jobs (p99 outliers, failures, re-routes, and a
seeded 1-in-N baseline), the full event timeline. --worst N (default 3)
ranks the true N worst-latency jobs; --job <trace> explains one job by
its trace id, as linked from metric exemplars and cluster render
lines.";

/// Parse `AxBxC` into a shape.
pub fn parse_shape(s: &str) -> Result<Shape> {
    let dims: Vec<usize> = s
        .split(['x', 'X'])
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| HpdrError::invalid(format!("bad shape component '{p}'")))
        })
        .collect::<Result<_>>()?;
    Shape::try_new(&dims)
}

fn parse_dtype(s: &str) -> Result<DType> {
    match s {
        "f32" => Ok(DType::F32),
        "f64" => Ok(DType::F64),
        other => Err(HpdrError::invalid(format!("unknown dtype '{other}'"))),
    }
}

fn get_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn require_flag<'a>(args: &'a [String], flag: &str) -> Result<&'a str> {
    get_flag(args, flag).ok_or_else(|| HpdrError::invalid(format!("missing {flag} <value>")))
}

fn parse_codec(args: &[String]) -> Result<Codec> {
    let name = require_flag(args, "--codec")?;
    let rel = get_flag(args, "--rel-eb")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| HpdrError::invalid("bad --rel-eb"))
        })
        .transpose()?;
    let abs = get_flag(args, "--abs-eb")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| HpdrError::invalid("bad --abs-eb"))
        })
        .transpose()?;
    let rate = get_flag(args, "--rate")
        .map(|v| {
            v.parse::<u32>()
                .map_err(|_| HpdrError::invalid("bad --rate"))
        })
        .transpose()?;
    match name {
        "mgard" => Ok(Codec::Mgard(match (rel, abs) {
            (_, Some(a)) => MgardConfig::absolute(a),
            (Some(r), None) => MgardConfig::relative(r),
            (None, None) => MgardConfig::relative(1e-3),
        })),
        "zfp" => Ok(Codec::Zfp(ZfpConfig::fixed_rate(rate.unwrap_or(16)))),
        "huffman" => Ok(Codec::Huffman),
        "sz" => Ok(Codec::Sz(SzConfig::relative(rel.unwrap_or(1e-3)))),
        "lz4" => Ok(Codec::Lz4),
        other => Err(HpdrError::invalid(format!("unknown codec '{other}'"))),
    }
}

/// Parse the loadgen workload flags shared by `loadgen`, `top` and
/// `slo`: a `--quick` (or default) preset overridden flag by flag.
fn parse_loadgen_opts(args: &[String]) -> Result<hpdr_serve::LoadgenOptions> {
    let base = if args.iter().any(|a| a == "--quick") {
        hpdr_serve::LoadgenOptions::quick()
    } else {
        hpdr_serve::LoadgenOptions::default()
    };
    let num = |flag: &str, default: f64| -> Result<f64> {
        get_flag(args, flag)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| HpdrError::invalid(format!("bad {flag}")))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let opts = hpdr_serve::LoadgenOptions {
        rps: num("--rps", base.rps)?,
        duration_s: num("--duration", base.duration_s)?,
        tenants: num("--tenants", base.tenants as f64)? as u32,
        devices: (num("--devices", base.devices as f64)? as usize).max(1),
        seed: num("--seed", base.seed as f64)? as u64,
        closed: if args.iter().any(|a| a == "--open") {
            false
        } else {
            args.iter().any(|a| a == "--closed") || base.closed
        },
        metrics: args.iter().any(|a| a == "--metrics") || base.metrics,
        flight: args.iter().any(|a| a == "--flight-out") || base.flight,
    };
    if opts.rps <= 0.0 || opts.duration_s <= 0.0 {
        return Err(HpdrError::invalid("--rps and --duration must be positive"));
    }
    Ok(opts)
}

/// Parse `--fail-node <id>@<t_us>`: kill shard `id` at virtual
/// microsecond `t_us`.
fn parse_fail_node(s: &str) -> Result<(usize, hpdr_sim::Ns)> {
    let (id, at) = s
        .split_once('@')
        .ok_or_else(|| HpdrError::invalid("--fail-node wants <id>@<t_us>"))?;
    let id = id
        .parse::<usize>()
        .map_err(|_| HpdrError::invalid("bad --fail-node shard id"))?;
    let us = at
        .parse::<u64>()
        .map_err(|_| HpdrError::invalid("bad --fail-node instant (microseconds)"))?;
    Ok((id, hpdr_sim::Ns::from_micros(us)))
}

/// Parse the cluster flags shared by `hpdr cluster` and
/// `hpdr loadgen --nodes`: the loadgen workload plus placement policy,
/// node count and optional failure injection.
fn parse_cluster_opts(args: &[String]) -> Result<hpdr_shard::ClusterLoadOptions> {
    let mut base = parse_loadgen_opts(args)?;
    base.metrics = false; // per-shard registries are not merged; cluster counters live in the report
    Ok(hpdr_shard::ClusterLoadOptions {
        base,
        nodes: get_flag(args, "--nodes")
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| HpdrError::invalid("bad --nodes"))
            })
            .transpose()?
            .unwrap_or(4)
            .max(1),
        policy: match get_flag(args, "--policy") {
            None => hpdr_shard::PlacementPolicy::Locality,
            Some(p) => hpdr_shard::PlacementPolicy::parse(p)
                .ok_or_else(|| HpdrError::invalid(format!("unknown placement policy '{p}'")))?,
        },
        fail: get_flag(args, "--fail-node")
            .map(parse_fail_node)
            .transpose()?,
    })
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command> {
    match args.first().map(String::as_str) {
        Some("compress") => Ok(Command::Compress {
            codec: parse_codec(args)?,
            shape: parse_shape(require_flag(args, "--shape")?)?,
            dtype: parse_dtype(require_flag(args, "--dtype")?)?,
            input: require_flag(args, "--input")?.to_string(),
            output: require_flag(args, "--output")?.to_string(),
        }),
        Some("decompress") => Ok(Command::Decompress {
            input: require_flag(args, "--input")?.to_string(),
            output: require_flag(args, "--output")?.to_string(),
        }),
        Some("info") => Ok(Command::Info {
            input: require_flag(args, "--input")?.to_string(),
        }),
        Some("verify") => Ok(Command::Verify {
            json: args.iter().any(|a| a == "--json"),
        }),
        Some("audit") => Ok(Command::Audit {
            json: args.iter().any(|a| a == "--json"),
            out: get_flag(args, "--out").map(str::to_string),
        }),
        Some("trace") => Ok(Command::Trace {
            out: get_flag(args, "--out").map(str::to_string),
        }),
        Some("profile") => Ok(Command::Profile {
            figure: get_flag(args, "--figure").map(str::to_string),
            json: args.iter().any(|a| a == "--json"),
        }),
        Some("bench") => {
            if let Some(i) = args.iter().position(|a| a == "--compare") {
                let path = |j: usize, which: &str| -> Result<String> {
                    args.get(i + j)
                        .filter(|p| !p.starts_with("--"))
                        .map(|p| p.to_string())
                        .ok_or_else(|| {
                            HpdrError::invalid(format!("--compare needs <{which}.json>"))
                        })
                };
                return Ok(Command::BenchCompare {
                    a: path(1, "baseline")?,
                    b: path(2, "candidate")?,
                    threshold: get_flag(args, "--threshold")
                        .map(|v| {
                            v.parse::<f64>()
                                .map_err(|_| HpdrError::invalid("bad --threshold"))
                        })
                        .transpose()?
                        .unwrap_or(0.10),
                });
            }
            Ok(Command::Bench {
                opts: crate::bench::BenchOptions {
                    quick: args.iter().any(|a| a == "--quick"),
                    paper_scale: args.iter().any(|a| a == "--paper-scale"),
                    label: get_flag(args, "--label").unwrap_or("local").to_string(),
                    out: get_flag(args, "--out").map(str::to_string),
                },
                json: args.iter().any(|a| a == "--json"),
            })
        }
        Some("serve") => Ok(Command::Serve {
            devices: get_flag(args, "--devices")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| HpdrError::invalid("bad --devices"))
                })
                .transpose()?
                .unwrap_or(2)
                .max(1),
            policy: match get_flag(args, "--policy") {
                None | Some("batched") => hpdr_serve::Policy::Batched,
                Some("serial") => hpdr_serve::Policy::Serial,
                Some(other) => return Err(HpdrError::invalid(format!("unknown policy '{other}'"))),
            },
            jobs: get_flag(args, "--jobs").map(str::to_string),
            json: args.iter().any(|a| a == "--json"),
            out: get_flag(args, "--out").map(str::to_string),
            flight_out: get_flag(args, "--flight-out").map(str::to_string),
        }),
        Some("loadgen") => {
            // --nodes <n> with n > 1 routes the workload through the
            // sharded cluster front-end.
            if get_flag(args, "--nodes").is_some_and(|v| v.parse::<usize>().unwrap_or(0) > 1) {
                return Ok(Command::Cluster {
                    opts: parse_cluster_opts(args)?,
                    json: args.iter().any(|a| a == "--json"),
                    out: get_flag(args, "--out").map(str::to_string),
                    flight_out: get_flag(args, "--flight-out").map(str::to_string),
                });
            }
            let expo = get_flag(args, "--expo").map(str::to_string);
            let mut opts = parse_loadgen_opts(args)?;
            opts.metrics |= expo.is_some();
            Ok(Command::Loadgen {
                opts,
                json: args.iter().any(|a| a == "--json"),
                out: get_flag(args, "--out").map(str::to_string),
                expo,
                flight_out: get_flag(args, "--flight-out").map(str::to_string),
            })
        }
        Some("cluster") => Ok(Command::Cluster {
            opts: parse_cluster_opts(args)?,
            json: args.iter().any(|a| a == "--json"),
            out: get_flag(args, "--out").map(str::to_string),
            flight_out: get_flag(args, "--flight-out").map(str::to_string),
        }),
        Some("explain") => Ok(Command::Explain {
            report: require_flag(args, "--report")?.to_string(),
            job: get_flag(args, "--job")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| HpdrError::invalid("bad --job (wants a trace id)"))
                })
                .transpose()?,
            worst: get_flag(args, "--worst")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| HpdrError::invalid("bad --worst"))
                })
                .transpose()?
                .unwrap_or(3)
                .max(1),
        }),
        Some("top") => {
            let mut opts = parse_loadgen_opts(args)?;
            opts.metrics = true;
            Ok(Command::Top {
                opts,
                tail: get_flag(args, "--tail")
                    .map(|v| {
                        v.parse::<usize>()
                            .map_err(|_| HpdrError::invalid("bad --tail"))
                    })
                    .transpose()?
                    .unwrap_or(5)
                    .max(1),
            })
        }
        Some("slo") => {
            let mut opts = parse_loadgen_opts(args)?;
            opts.metrics = true;
            Ok(Command::Slo {
                opts,
                report: get_flag(args, "--report").map(str::to_string),
            })
        }
        Some("retrieve") => {
            let float = |flag: &str, default: f64| -> Result<f64> {
                get_flag(args, flag)
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| HpdrError::invalid(format!("bad {flag}")))
                    })
                    .transpose()
                    .map(|v| v.unwrap_or(default))
            };
            let tolerance = float("--tolerance", 1e-2)?;
            let refine = get_flag(args, "--refine")
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| HpdrError::invalid("bad --refine"))
                })
                .transpose()?;
            for (what, v) in [("--tolerance", Some(tolerance)), ("--refine", refine)] {
                if v.is_some_and(|v| v <= 0.0 || !v.is_finite()) {
                    return Err(HpdrError::invalid(format!("{what} must be positive")));
                }
            }
            Ok(Command::Retrieve {
                side: get_flag(args, "--side")
                    .map(|v| {
                        v.parse::<usize>()
                            .map_err(|_| HpdrError::invalid("bad --side"))
                    })
                    .transpose()?
                    .unwrap_or(32)
                    .clamp(4, 64),
                tolerance,
                refine,
                json: args.iter().any(|a| a == "--json"),
                out: get_flag(args, "--out").map(str::to_string),
            })
        }
        Some("help" | "--help" | "-h") | None => Ok(Command::Help),
        Some(other) => Err(HpdrError::invalid(format!("unknown command '{other}'"))),
    }
}

/// Execute a parsed command; returns the lines to print.
pub fn run(cmd: Command) -> Result<Vec<String>> {
    let adapter = CpuParallelAdapter::with_defaults();
    match cmd {
        Command::Help => Ok(vec![USAGE.to_string()]),
        Command::Verify { json } => verify_schedules(json),
        Command::Audit { json, out } => audit_schedules(json, out.as_deref()),
        Command::Trace { out } => trace_run(out),
        Command::Profile { figure, json } => profile_run(figure.as_deref(), json),
        Command::Bench { opts, json } => crate::bench::bench_command(&opts, json),
        Command::BenchCompare { a, b, threshold } => {
            crate::bench::compare_command(&a, &b, threshold)
        }
        Command::Serve {
            devices,
            policy,
            jobs,
            json,
            out,
            flight_out,
        } => serve_command(
            devices,
            policy,
            jobs.as_deref(),
            json,
            out.as_deref(),
            flight_out.as_deref(),
        ),
        Command::Loadgen {
            opts,
            json,
            out,
            expo,
            flight_out,
        } => loadgen_command(
            opts,
            json,
            out.as_deref(),
            expo.as_deref(),
            flight_out.as_deref(),
        ),
        Command::Top { opts, tail } => top_command(opts, tail),
        Command::Slo { opts, report } => slo_command(opts, report.as_deref()),
        Command::Retrieve {
            side,
            tolerance,
            refine,
            json,
            out,
        } => retrieve_command(side, tolerance, refine, json, out.as_deref()),
        Command::Cluster {
            opts,
            json,
            out,
            flight_out,
        } => cluster_command(opts, json, out.as_deref(), flight_out.as_deref()),
        Command::Explain { report, job, worst } => explain_command(&report, job, worst),
        Command::Compress {
            codec,
            shape,
            dtype,
            input,
            output,
        } => {
            let bytes = std::fs::read(&input)?;
            let meta = ArrayMeta::new(dtype, shape);
            if bytes.len() != meta.num_bytes() {
                return Err(HpdrError::invalid(format!(
                    "{input}: {} bytes, but shape {} as {} needs {}",
                    bytes.len(),
                    meta.shape,
                    meta.dtype.name(),
                    meta.num_bytes()
                )));
            }
            let (stream, stats): (Vec<u8>, CompressionStats) =
                crate::compress(&adapter, &bytes, &meta, codec)?;
            std::fs::write(&output, &stream)?;
            Ok(vec![format!(
                "{} -> {}: {} -> {} bytes ({:.2}x) with {}",
                input,
                output,
                stats.original_bytes,
                stats.compressed_bytes,
                stats.ratio,
                stats.codec
            )])
        }
        Command::Decompress { input, output } => {
            let stream = std::fs::read(&input)?;
            let (bytes, meta) = crate::decompress(&adapter, &stream)?;
            std::fs::write(&output, &bytes)?;
            Ok(vec![format!(
                "{} -> {}: {} {} values restored ({} bytes)",
                input,
                output,
                meta.shape,
                meta.dtype.name(),
                bytes.len()
            )])
        }
        Command::Info { input } => {
            let stream = std::fs::read(&input)?;
            let codec = detect_codec(&stream)
                .ok_or_else(|| HpdrError::corrupt("unrecognized stream magic"))?;
            let (bytes, meta) = crate::decompress(&adapter, &stream)?;
            Ok(vec![
                format!("codec:  {codec}"),
                format!("dtype:  {}", meta.dtype.name()),
                format!("shape:  {}", meta.shape),
                format!("raw:    {} bytes", bytes.len()),
                format!(
                    "stored: {} bytes ({:.2}x)",
                    stream.len(),
                    bytes.len() as f64 / stream.len().max(1) as f64
                ),
            ])
        }
    }
}

/// `hpdr serve`: run a job script through the serving scheduler and
/// report (validated) per-tenant / per-device accounting.
fn serve_command(
    devices: usize,
    policy: hpdr_serve::Policy,
    jobs: Option<&str>,
    json: bool,
    out: Option<&str>,
    flight_out: Option<&str>,
) -> Result<Vec<String>> {
    use std::io::Read as _;
    use std::sync::Arc;

    let script = match jobs {
        None => hpdr_serve::DEMO_SCRIPT.to_string(),
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| HpdrError::invalid(format!("{path}: {e}")))?
        }
    };
    let work: Arc<dyn hpdr_core::DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let mut cache = hpdr_serve::PayloadCache::new();
    let requests = hpdr_serve::parse_script_with(&script, work.as_ref(), &mut cache)
        .map_err(HpdrError::from)?;
    let flight_cfg = hpdr_flight::FlightConfig::default();
    let cfg = hpdr_serve::ServeConfig {
        devices,
        policy,
        flight: flight_out.map(|_| flight_cfg),
        ..hpdr_serve::ServeConfig::default()
    };
    let mut source = hpdr_serve::VecSource::new(requests);
    let mut outcome = hpdr_serve::serve(cfg, work, &mut source);
    let flight = outcome
        .flight
        .take()
        .map(|log| hpdr_flight::analyze(&log, &flight_cfg, None));
    let mut report = hpdr_serve::ServeReport::build(policy, outcome);
    report.payload_cache = Some(cache.stats());
    let doc = report.to_json();
    hpdr_serve::validate_serve_json(&doc).map_err(|e| {
        let target = out.unwrap_or("<stdout>");
        HpdrError::invalid(format!("{target}: serve report failed validation: {e}"))
    })?;
    let mut lines = if json {
        vec![doc.clone()]
    } else {
        report.render()
    };
    if let Some(path) = out {
        std::fs::write(path, doc.as_bytes())?;
        lines.push(format!("wrote {path}"));
    }
    if let Some(path) = flight_out {
        let f = flight.expect("flight recording is on when --flight-out is given");
        write_flight_doc(path, &f, &mut lines)?;
    }
    Ok(lines)
}

/// Serialize, validate and write a standalone `hpdr-flight/v1` report.
fn write_flight_doc(
    path: &str,
    report: &hpdr_flight::FlightReport,
    lines: &mut Vec<String>,
) -> Result<()> {
    let mut doc = hpdr_flight::to_json(report);
    doc.push('\n');
    hpdr_flight::validate_flight_json(&doc)
        .map_err(|e| HpdrError::invalid(format!("{path}: flight report failed validation: {e}")))?;
    std::fs::write(path, doc.as_bytes())?;
    lines.push(format!("wrote {path}"));
    Ok(())
}

/// `hpdr explain`: render latency root-cause breakdowns from a saved
/// report document carrying an `hpdr-flight/v1` section.
fn explain_command(report: &str, job: Option<u64>, worst: usize) -> Result<Vec<String>> {
    let doc = std::fs::read_to_string(report)
        .map_err(|e| HpdrError::invalid(format!("{report}: {e}")))?;
    hpdr_flight::explain_lines(&doc, job, worst)
        .map_err(|e| HpdrError::invalid(format!("{report}: {e}")))
}

/// `hpdr loadgen`: deterministic seeded workload against the serving
/// layer; writes the validated latency report JSON.
fn loadgen_command(
    opts: hpdr_serve::LoadgenOptions,
    json: bool,
    out: Option<&str>,
    expo: Option<&str>,
    flight_out: Option<&str>,
) -> Result<Vec<String>> {
    let report = hpdr_serve::run_loadgen(opts).map_err(HpdrError::from)?;
    let doc = report.to_json();
    let path = out
        .map(str::to_string)
        .unwrap_or_else(|| "LOADGEN.json".to_string());
    hpdr_serve::validate_loadgen_json(&doc).map_err(|e| {
        HpdrError::invalid(format!("{path}: loadgen report failed validation: {e}"))
    })?;
    std::fs::write(&path, doc.as_bytes())?;
    let mut lines = if json { vec![doc] } else { report.render() };
    lines.push(format!("wrote {path}"));
    if let Some(expo_path) = expo {
        let reg = report.serve.metrics.as_ref().ok_or_else(|| {
            HpdrError::invalid("--expo requires the metrics registry (use --metrics)")
        })?;
        std::fs::write(expo_path, reg.exposition().as_bytes())?;
        lines.push(format!("wrote {expo_path}"));
    }
    if let Some(fpath) = flight_out {
        let f = report.flight.as_ref().ok_or_else(|| {
            HpdrError::invalid("--flight-out requires the flight recorder on the loadgen run")
        })?;
        write_flight_doc(fpath, f, &mut lines)?;
    }
    Ok(lines)
}

/// `hpdr cluster`: the seeded loadgen workload through the sharded
/// cross-node front-end; writes the validated hpdr-shard/v1 report.
/// Exits non-zero when the report loses jobs (the zero-lost-jobs
/// invariant) or any shard's own report is unsound.
fn cluster_command(
    opts: hpdr_shard::ClusterLoadOptions,
    json: bool,
    out: Option<&str>,
    flight_out: Option<&str>,
) -> Result<Vec<String>> {
    let report = hpdr_shard::run_cluster_loadgen(&opts).map_err(HpdrError::from)?;
    let doc = report.to_json();
    let path = out
        .map(str::to_string)
        .unwrap_or_else(|| "CLUSTER.json".to_string());
    std::fs::write(&path, doc.as_bytes())?;
    hpdr_shard::validate_cluster_json(&doc).map_err(|e| {
        HpdrError::invalid(format!("{path}: cluster report failed validation: {e}"))
    })?;
    let mut lines = if json { vec![doc] } else { report.render() };
    lines.push(format!("wrote {path}"));
    if let Some(fpath) = flight_out {
        let f = report.flight.as_ref().ok_or_else(|| {
            HpdrError::invalid("cluster run recorded no flight events (tracing disabled)")
        })?;
        write_flight_doc(fpath, f, &mut lines)?;
    }
    Ok(lines)
}

/// `hpdr top`: run a seeded metered loadgen and print the registry's
/// latest-scrape instrument table — a virtual-time `top(1)` snapshot.
fn top_command(opts: hpdr_serve::LoadgenOptions, tail: usize) -> Result<Vec<String>> {
    let report = hpdr_serve::run_loadgen(opts).map_err(HpdrError::from)?;
    let reg = report
        .serve
        .metrics
        .as_ref()
        .ok_or_else(|| HpdrError::invalid("loadgen run produced no metrics registry"))?;
    let mut lines = vec![format!(
        "top: seed {} — {:.0} rps x {:.2}s, {} tenants, {} devices ({} scrapes every {})",
        report.opts.seed,
        report.opts.rps,
        report.opts.duration_s,
        report.opts.tenants,
        report.opts.devices,
        reg.scrape_count(),
        reg.config().scrape_interval,
    )];
    lines.extend(reg.render_table(tail));
    Ok(lines)
}

/// `hpdr slo`: per-tenant SLO attainment and burn-rate alerts, either
/// from a saved JSON report (`--report`) or from a fresh metered run.
/// Exits non-zero when any burn-rate alert fired.
fn slo_command(opts: hpdr_serve::LoadgenOptions, report: Option<&str>) -> Result<Vec<String>> {
    let doc = match report {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| HpdrError::invalid(format!("{path}: {e}")))?
        }
        None => {
            let report = hpdr_serve::run_loadgen(opts).map_err(HpdrError::from)?;
            report.to_json()
        }
    };
    let (lines, alerts) = crate::slo::render_slo_report(&doc).map_err(|e| match report {
        Some(path) => HpdrError::invalid(format!("{path}: {e}")),
        None => HpdrError::invalid(e),
    })?;
    if alerts > 0 {
        return Err(HpdrError::invalid(format!(
            "{alerts} burn-rate alert(s) fired:\n{}",
            lines.join("\n")
        )));
    }
    Ok(lines)
}

/// `hpdr retrieve`: refactor a synthetic NYX field into a progressive
/// BP container (temp dir), then retrieve at the requested relative
/// tolerance — fetching only the component prefix the fetch planner
/// picks — and optionally refine to a tighter bound, asserting the
/// refine fetched strictly delta components (zero re-fetches).
fn retrieve_command(
    side: usize,
    tolerance: f64,
    refine: Option<f64>,
    json: bool,
    out: Option<&str>,
) -> Result<Vec<String>> {
    use hpdr_progressive::{refactor_progressive, ProgressiveConfig, ProgressiveReader};

    let adapter = CpuParallelAdapter::with_defaults();
    let d = crate::data::nyx_density(side, 7);
    let data: Vec<f32> = d
        .bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let set = refactor_progressive(&adapter, &data, &d.shape, &ProgressiveConfig::default())?;
    let total = set.total_bytes();
    let range = set.manifest.range;
    let num_components = set.manifest.components.len();

    let dir = std::env::temp_dir().join(format!("hpdr-retrieve-{}", std::process::id()));
    hpdr_progressive::write_bp(&dir, &set, 2)?;
    let max_err = |out: &[f32]| -> f64 {
        data.iter()
            .zip(out)
            .map(|(a, b)| (*a as f64 - *b as f64).abs())
            .fold(0.0f64, f64::max)
    };

    let run = |reader: &mut ProgressiveReader| -> Result<Vec<String>> {
        let abs_tol = tolerance * range;
        let first = reader.retrieve::<f32>(&adapter, abs_tol)?;
        let err = max_err(&first.data);
        if err > abs_tol {
            return Err(HpdrError::invalid(format!(
                "retrieved error {err:.3e} exceeds tolerance {abs_tol:.3e}"
            )));
        }
        let refined = refine
            .map(|rel| -> Result<_> {
                let abs = rel * range;
                let ops_before = reader.fetch_ops();
                let r = reader.refine::<f32>(&adapter, abs)?;
                if reader.fetch_ops() - ops_before != r.fetched_components as u64 {
                    return Err(HpdrError::invalid(
                        "refine re-fetched an already-held component",
                    ));
                }
                let err = max_err(&r.data);
                if err > abs {
                    return Err(HpdrError::invalid(format!(
                        "refined error {err:.3e} exceeds tolerance {abs:.3e}"
                    )));
                }
                Ok((rel, abs, r, err))
            })
            .transpose()?;

        let mut lines;
        if json {
            let mut doc = format!(
                concat!(
                    "{{\"schema\":\"hpdr-progressive/v1\",\"side\":{},",
                    "\"range\":{:.6e},\"components_total\":{},\"total_bytes\":{},",
                    "\"tolerance_rel\":{:.6e},\"tolerance_abs\":{:.6e},",
                    "\"fetched_bytes\":{},\"fetched_components\":{},",
                    "\"bound\":{:.6e},\"max_error\":{:.6e}"
                ),
                side,
                range,
                num_components,
                total,
                tolerance,
                abs_tol,
                first.fetched_bytes,
                first.fetched_components,
                first.bound,
                err,
            );
            if let Some((rel, abs, r, rerr)) = &refined {
                doc.push_str(&format!(
                    concat!(
                        ",\"refine\":{{\"tolerance_rel\":{:.6e},\"tolerance_abs\":{:.6e},",
                        "\"delta_bytes\":{},\"delta_components\":{},",
                        "\"bound\":{:.6e},\"max_error\":{:.6e}}}"
                    ),
                    rel, abs, r.fetched_bytes, r.fetched_components, r.bound, rerr,
                ));
            }
            doc.push_str(&format!(",\"io_model_ns\":{}", reader.io_time().0));
            doc.push('}');
            lines = vec![doc];
        } else {
            lines = vec![
                format!(
                    "retrieve: NYX {side}^3 f32, {num_components} components, {total} bytes stored"
                ),
                format!(
                    "  tolerance {tolerance:.1e} rel ({abs_tol:.3e} abs): fetched {} / {} bytes \
                     ({} components), bound {:.3e}, max error {err:.3e}",
                    first.fetched_bytes, total, first.fetched_components, first.bound
                ),
            ];
            if let Some((rel, abs, r, rerr)) = &refined {
                lines.push(format!(
                    "  refine to {rel:.1e} rel ({abs:.3e} abs): +{} bytes ({} components, \
                     zero re-fetches), bound {:.3e}, max error {rerr:.3e}",
                    r.fetched_bytes, r.fetched_components, r.bound
                ));
            }
            lines.push(format!(
                "  modeled I/O time (Summit GPFS): {}",
                reader.io_time()
            ));
        }
        if let Some(path) = out {
            let doc = if json {
                lines[0].clone()
            } else {
                lines.join("\n")
            };
            std::fs::write(path, doc.as_bytes())?;
            lines.push(format!("wrote {path}"));
        }
        Ok(lines)
    };

    let result = ProgressiveReader::open(&dir)
        .map(|r| r.with_cost_model(hpdr_io::FetchCostModel::new(hpdr_io::summit_gpfs(), 4)))
        .and_then(|mut reader| run(&mut reader));
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Map pipeline options onto the linter's declared-schedule config.
fn lint_config(
    direction: hpdr_verify::Direction,
    opts: &hpdr_pipeline::PipelineOptions,
) -> hpdr_verify::LintConfig {
    hpdr_verify::LintConfig {
        direction,
        two_buffers: opts.two_buffers,
        cmm: opts.cmm,
        deser_first: opts.deser_first,
        serial_queue: opts.serial_queue,
    }
}

/// Statically verify every shipped pipeline configuration: build each
/// compression and reconstruction DAG (without executing it), run the
/// hazard analyzer and the schedule lints, and report per config.
///
/// Returns `Err` (→ non-zero exit) if any configuration is not clean.
fn verify_schedules(json: bool) -> Result<Vec<String>> {
    use hpdr_huffman::ByteHuffmanReducer;
    use hpdr_pipeline::{
        compress_pipelined, plan_compress, plan_decompress, PipelineMode, PipelineOptions,
    };
    use hpdr_verify::Direction;
    use std::sync::Arc;

    let spec = hpdr_sim::v100();
    let adapter: Arc<dyn hpdr_core::DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let reducer: Arc<dyn hpdr_core::Reducer> = Arc::new(ByteHuffmanReducer::default());

    // Small synthetic input: 64 rows × 256 f32 (64 KiB) — enough rows for
    // multi-chunk schedules under every mode.
    let meta = ArrayMeta::new(DType::F32, Shape::try_new(&[64, 256])?);
    let row_bytes = (meta.shape.row_elements() * meta.dtype.size()) as u64;
    let input: Arc<Vec<u8>> = Arc::new(
        (0..meta.num_bytes() / 4)
            .flat_map(|i| ((i % 251) as f32).to_le_bytes())
            .collect(),
    );

    let modes = [
        ("unpipelined", PipelineMode::Unpipelined),
        (
            "fixed",
            PipelineMode::Fixed {
                chunk_bytes: 8 * row_bytes,
            },
        ),
        (
            "adaptive",
            PipelineMode::Adaptive {
                init_bytes: 4 * row_bytes,
                limit_bytes: 16 * row_bytes,
            },
        ),
    ];
    let mut configs: Vec<(String, PipelineOptions)> = Vec::new();
    for (mode_name, mode) in modes {
        for two_buffers in [false, true] {
            for cmm in [false, true] {
                for deser_first in [false, true] {
                    configs.push((
                        format!(
                            "{mode_name} two_buffers={} cmm={} deser_first={}",
                            two_buffers as u8, cmm as u8, deser_first as u8
                        ),
                        PipelineOptions {
                            mode,
                            two_buffers,
                            cmm,
                            deser_first,
                            serial_queue: false,
                            host_staging: false,
                        },
                    ));
                }
            }
        }
    }
    configs.push((
        "baseline-unoptimized".to_string(),
        PipelineOptions::baseline_unoptimized(),
    ));
    configs.push((
        "baseline-per-step".to_string(),
        PipelineOptions::baseline_per_step(8 * row_bytes),
    ));

    let mut lines = Vec::new();
    let mut json_items = Vec::new();
    let mut dirty = 0usize;
    for (name, opts) in &configs {
        let mut one = |direction: Direction, sim: hpdr_sim::Sim| {
            let dag = sim.dag();
            let report = hpdr_verify::check(&dag, &lint_config(direction, opts));
            let dir = match direction {
                Direction::Compress => "compress",
                Direction::Decompress => "decompress",
            };
            if json {
                json_items.push(format!(
                    "{{\"config\":\"{name}\",\"direction\":\"{dir}\",\"report\":{}}}",
                    report.to_json(&dag)
                ));
            } else if report.is_clean() {
                lines.push(format!(
                    "ok   {dir:<10} {name}  ({} ops, {} pairs checked)",
                    report.analysis.num_ops, report.analysis.checked_pairs
                ));
            } else {
                lines.push(format!("FAIL {dir:<10} {name}"));
                for l in report.describe(&dag).lines() {
                    lines.push(format!("       {l}"));
                }
            }
            if !report.is_clean() {
                dirty += 1;
            }
        };

        let sim = plan_compress(
            &spec,
            Arc::clone(&adapter),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            opts,
        )?;
        one(Direction::Compress, sim);

        let (container, _) = compress_pipelined(
            &spec,
            Arc::clone(&adapter),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            opts,
        )?;
        let sim = plan_decompress(
            &spec,
            Arc::clone(&adapter),
            Arc::clone(&reducer),
            &container,
            opts,
        )?;
        one(Direction::Decompress, sim);
    }

    // Progressive retrieval plans ride along: the same hazard analyzer
    // and lints certify the fetch → decode → reconstruct DAG at a loose
    // and a tight tolerance (different component subsets, same
    // invariants). Retrieval is single-pass and never stages through
    // pinned chunk buffers, so only the decompress-direction lints with
    // CMM reuse apply.
    let popts = PipelineOptions {
        mode: PipelineMode::Unpipelined,
        two_buffers: false,
        cmm: true,
        deser_first: false,
        serial_queue: false,
        host_staging: false,
    };
    let pdata = crate::data::nyx_density(16, 7);
    let pf32: Vec<f32> = pdata
        .bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let set = Arc::new(hpdr_progressive::refactor_progressive(
        adapter.as_ref(),
        &pf32,
        &pdata.shape,
        &hpdr_progressive::ProgressiveConfig::default(),
    )?);
    let progressive = [
        ("progressive/loose", set.manifest.base_bound() / 2.0),
        ("progressive/tight", set.manifest.full_bound() * 4.0),
    ];
    for (name, tol) in progressive {
        let sim =
            hpdr_progressive::plan_retrieve(&spec, Arc::clone(&adapter), Arc::clone(&set), tol)?;
        let dag = sim.dag();
        let report = hpdr_verify::check(&dag, &lint_config(Direction::Decompress, &popts));
        if json {
            json_items.push(format!(
                "{{\"config\":\"{name}\",\"direction\":\"retrieve\",\"report\":{}}}",
                report.to_json(&dag)
            ));
        } else if report.is_clean() {
            lines.push(format!(
                "ok   {:<10} {name}  ({} ops, {} pairs checked)",
                "retrieve", report.analysis.num_ops, report.analysis.checked_pairs
            ));
        } else {
            lines.push(format!("FAIL {:<10} {name}", "retrieve"));
            for l in report.describe(&dag).lines() {
                lines.push(format!("       {l}"));
            }
        }
        if !report.is_clean() {
            dirty += 1;
        }
    }

    if json {
        // Same envelope family as `hpdr audit` (see hpdr_verify::envelope).
        lines.push(hpdr_verify::envelope::wrap(
            hpdr_verify::envelope::SCHEMA_VERIFY,
            dirty == 0,
            &format!(
                "\"checked\":{},\"dirty\":{dirty},\"configs\":[{}]",
                json_items.len(),
                json_items.join(",")
            ),
        ));
    } else {
        lines.push(format!(
            "{} schedule(s) verified, {dirty} with findings",
            2 * configs.len() + progressive.len()
        ));
    }
    if dirty > 0 {
        return Err(HpdrError::invalid(format!(
            "schedule verification failed for {dirty} configuration(s):\n{}",
            lines.join("\n")
        )));
    }
    Ok(lines)
}

/// Dynamically audit every shipped codec × adapter configuration: run
/// the real payloads under the memory pool's shadow-access recorder and
/// diff each op's observed buffer accesses against its declaration,
/// then explore bounded alternate interleavings of the happens-before
/// DAG and assert the schedule invariants in every admissible one.
///
/// Returns `Err` (→ non-zero exit, the same discipline as
/// `hpdr verify`) if any configuration is unsound.
fn audit_schedules(json: bool, out: Option<&str>) -> Result<Vec<String>> {
    use hpdr_audit::{diff_effects, explore, AuditReport, ConfigAudit, ExploreOptions};
    use hpdr_pipeline::{
        compress_pipelined, plan_compress, plan_decompress, PipelineMode, PipelineOptions,
    };
    use hpdr_verify::Direction;
    use std::sync::Arc;

    let spec = hpdr_sim::v100();
    // Small input: 32 rows × 128 f32 (16 KiB), chunked at 8 rows — four
    // chunks, enough for the steady-state pipeline invariants, small
    // enough to run every codec × adapter pair under the recorder.
    let meta = ArrayMeta::new(DType::F32, Shape::try_new(&[32, 128])?);
    let row_bytes = (meta.shape.row_elements() * meta.dtype.size()) as u64;
    let input: Arc<Vec<u8>> = Arc::new(
        (0..meta.num_bytes() / 4)
            .flat_map(|i| ((i % 251) as f32).to_le_bytes())
            .collect(),
    );

    let codecs: [(&str, Codec); 5] = [
        ("mgard", Codec::Mgard(MgardConfig::relative(1e-2))),
        ("zfp", Codec::Zfp(ZfpConfig::fixed_rate(16))),
        ("huffman", Codec::Huffman),
        ("sz", Codec::Sz(SzConfig::relative(1e-3))),
        ("lz4", Codec::Lz4),
    ];
    let adapters: [(&str, Arc<dyn hpdr_core::DeviceAdapter>); 3] = [
        ("serial", Arc::new(hpdr_core::SerialAdapter::new())),
        (
            "cpu-parallel",
            Arc::new(CpuParallelAdapter::with_defaults()),
        ),
        ("gpu-sim", Arc::new(crate::GpuSimAdapter::new(spec.clone()))),
    ];
    // The fully optimized pipeline for the codec × adapter matrix; the
    // two baseline schedules ride along once (they exercise the
    // alloc/free replay paths the optimized plan removes via the CMM).
    let optimized = PipelineOptions {
        mode: PipelineMode::Fixed {
            chunk_bytes: 8 * row_bytes,
        },
        two_buffers: true,
        cmm: true,
        deser_first: true,
        serial_queue: false,
        host_staging: false,
    };
    let explore_opts = ExploreOptions::default();
    let mut report = AuditReport::default();

    let audit_one = |report: &mut AuditReport,
                     name: String,
                     direction: Direction,
                     opts: &PipelineOptions,
                     mut sim: hpdr_sim::Sim|
     -> Result<()> {
        let dag = sim.dag();
        sim.set_audit(true);
        sim.run();
        let effects = diff_effects(&dag, &sim.take_observed());
        let explore = explore(&dag, &lint_config(direction, opts), &explore_opts)
            .map_err(HpdrError::invalid)?;
        report.configs.push(ConfigAudit {
            name,
            direction: match direction {
                Direction::Compress => "compress",
                Direction::Decompress => "decompress",
            },
            effects,
            explore,
        });
        Ok(())
    };

    let audit_pair = |report: &mut AuditReport,
                      name: String,
                      reducer: Arc<dyn hpdr_core::Reducer>,
                      adapter: Arc<dyn hpdr_core::DeviceAdapter>,
                      opts: &PipelineOptions|
     -> Result<()> {
        let sim = plan_compress(
            &spec,
            Arc::clone(&adapter),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            opts,
        )?;
        audit_one(report, name.clone(), Direction::Compress, opts, sim)?;
        let (container, _) = compress_pipelined(
            &spec,
            Arc::clone(&adapter),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            opts,
        )?;
        let sim = plan_decompress(&spec, adapter, reducer, &container, opts)?;
        audit_one(report, name, Direction::Decompress, opts, sim)
    };

    for (codec_name, codec) in &codecs {
        for (adapter_name, adapter) in &adapters {
            audit_pair(
                &mut report,
                format!("{codec_name}/{adapter_name}"),
                codec.reducer(),
                Arc::clone(adapter),
                &optimized,
            )?;
        }
    }
    for (base_name, base_opts) in [
        (
            "baseline-unoptimized",
            PipelineOptions::baseline_unoptimized(),
        ),
        (
            "baseline-per-step",
            PipelineOptions::baseline_per_step(8 * row_bytes),
        ),
    ] {
        audit_pair(
            &mut report,
            format!("huffman/serial {base_name}"),
            Codec::Huffman.reducer(),
            Arc::clone(&adapters[0].1),
            &base_opts,
        )?;
    }

    // Progressive retrieval rides along once per fidelity: replay the
    // real fetch/decode/reconstruct payloads under the shadow-access
    // recorder and explore alternate interleavings of the retrieval
    // DAG, the same certification the pipelines get.
    let popts = PipelineOptions {
        mode: PipelineMode::Unpipelined,
        two_buffers: false,
        cmm: true,
        deser_first: false,
        serial_queue: false,
        host_staging: false,
    };
    let pdata = crate::data::nyx_density(16, 7);
    let pf32: Vec<f32> = pdata
        .bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let pwork = Arc::clone(&adapters[1].1);
    let set = Arc::new(hpdr_progressive::refactor_progressive(
        pwork.as_ref(),
        &pf32,
        &pdata.shape,
        &hpdr_progressive::ProgressiveConfig::default(),
    )?);
    for (name, tol) in [
        ("progressive/loose", set.manifest.base_bound() / 2.0),
        ("progressive/tight", set.manifest.full_bound() * 4.0),
    ] {
        let sim =
            hpdr_progressive::plan_retrieve(&spec, Arc::clone(&pwork), Arc::clone(&set), tol)?;
        audit_one(
            &mut report,
            name.to_string(),
            Direction::Decompress,
            &popts,
            sim,
        )?;
    }

    let doc = report.to_json();
    hpdr_audit::validate_audit_json(&doc)
        .map_err(|e| HpdrError::invalid(format!("audit report failed validation: {e}")))?;
    let mut lines = if json {
        vec![doc.clone()]
    } else {
        report.describe()
    };
    if let Some(path) = out {
        std::fs::write(path, doc.as_bytes())?;
        lines.push(format!("wrote {path}"));
    }
    if !report.is_sound() {
        return Err(HpdrError::invalid(format!(
            "audit found {} unsound finding(s) across {} configuration(s):\n{}",
            report.errors(),
            report.configs.len(),
            lines.join("\n")
        )));
    }
    Ok(lines)
}

/// `hpdr trace`: record a 2-chunk adaptive MGARD-X compression of a
/// small NYX sample and emit (validated) Chrome-trace JSON.
fn trace_run(out: Option<String>) -> Result<Vec<String>> {
    use hpdr_pipeline::{compress_pipelined, PipelineMode, PipelineOptions};
    use std::sync::Arc;

    let spec = hpdr_sim::v100();
    let data = crate::data::nyx_density(64, 1);
    let meta = ArrayMeta::new(DType::F32, data.shape.clone());
    let total = data.bytes.len() as u64;
    let input: Arc<Vec<u8>> = Arc::new(data.bytes);
    // init == limit == half the array → exactly two adaptive chunks.
    let opts = PipelineOptions {
        mode: PipelineMode::Adaptive {
            init_bytes: total / 2,
            limit_bytes: total / 2,
        },
        ..PipelineOptions::default()
    };
    let work: Arc<dyn hpdr_core::DeviceAdapter> = Arc::new(crate::GpuSimAdapter::new(spec.clone()));
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let (_, report) = compress_pipelined(&spec, work, reducer, input, &meta, &opts)?;
    let json = hpdr_trace::to_chrome_trace(&report.trace);
    let summary = hpdr_trace::validate_chrome_trace(&json)
        .map_err(|e| HpdrError::invalid(format!("emitted trace failed validation: {e}")))?;
    let mut lines = vec![format!(
        "traced {} ops across {} chunks, makespan {}",
        report.trace.len(),
        report.num_chunks,
        report.makespan
    )];
    match out {
        Some(path) => {
            std::fs::write(&path, json.as_bytes())?;
            lines.push(format!(
                "wrote {path}: {} metadata + {} span events, {} processes",
                summary.metadata_events,
                summary.complete_events,
                summary.pids.len()
            ));
            lines.push("open it at https://ui.perfetto.dev or chrome://tracing".to_string());
        }
        None => lines.push(json),
    }
    Ok(lines)
}

fn profile_run(figure: Option<&str>, json: bool) -> Result<Vec<String>> {
    match figure {
        None => profile_default(json),
        Some("fig1") => profile_fig1(json),
        Some(other) => Err(HpdrError::invalid(format!(
            "unknown figure '{other}' (supported: fig1)"
        ))),
    }
}

/// `hpdr profile`: compress and decompress a small NYX sample through
/// the adaptive pipeline, report both profiles, and enforce the trace
/// invariants (non-zero exit on violation — the CI smoke gate).
fn profile_default(json: bool) -> Result<Vec<String>> {
    use hpdr_pipeline::{compress_pipelined, decompress_pipelined, PipelineMode, PipelineOptions};
    use std::sync::Arc;

    let spec = hpdr_sim::v100();
    let data = crate::data::nyx_density(32, 1);
    let meta = ArrayMeta::new(DType::F32, data.shape.clone());
    let total = data.bytes.len() as u64;
    let input: Arc<Vec<u8>> = Arc::new(data.bytes);
    let opts = PipelineOptions {
        mode: PipelineMode::Adaptive {
            init_bytes: total / 4,
            limit_bytes: total / 2,
        },
        ..PipelineOptions::default()
    };
    let work: Arc<dyn hpdr_core::DeviceAdapter> = Arc::new(crate::GpuSimAdapter::new(spec.clone()));
    let reducer = Codec::Mgard(MgardConfig::relative(1e-2)).reducer();
    let (container, creport) = compress_pipelined(
        &spec,
        Arc::clone(&work),
        Arc::clone(&reducer),
        input,
        &meta,
        &opts,
    )?;
    let (_, _, dreport) = decompress_pipelined(&spec, work, reducer, &container, &opts)?;
    let cprof = hpdr_trace::Profile::from_trace(&creport.trace).map_err(HpdrError::invalid)?;
    let dprof = hpdr_trace::Profile::from_trace(&dreport.trace).map_err(HpdrError::invalid)?;
    if json {
        return Ok(vec![format!(
            "{{\"compress\":{},\"decompress\":{}}}",
            cprof.to_json(),
            dprof.to_json()
        )]);
    }
    let mut lines =
        vec!["== compress (NYX 32^3, adaptive pipeline, simulated V100) ==".to_string()];
    lines.extend(cprof.render());
    lines.push("== decompress ==".to_string());
    lines.extend(dprof.render());
    lines.push("profile invariants ok (2 traced runs)".to_string());
    Ok(lines)
}

/// `hpdr profile --figure fig1`: memory-op time share of the four
/// comparator codecs without pipeline optimization. The paper reports
/// 34–89% across codecs and GPUs; any share outside that band is an
/// error (non-zero exit).
fn profile_fig1(json: bool) -> Result<Vec<String>> {
    use hpdr_pipeline::{compress_pipelined, decompress_pipelined, PipelineOptions};
    use std::sync::Arc;

    const BAND: (f64, f64) = (0.34, 0.89);
    let spec = hpdr_sim::v100();
    let data = crate::data::nyx_density(32, 1);
    let meta = ArrayMeta::new(DType::F32, data.shape.clone());
    let input: Arc<Vec<u8>> = Arc::new(data.bytes);
    // Non-pipelined with pageable host staging: the paper's Fig. 1
    // baselines move every byte through an extra host copy but are not
    // artificially serialized.
    let opts = PipelineOptions {
        host_staging: true,
        ..PipelineOptions::unpipelined()
    };
    let codecs = [
        Codec::Mgard(MgardConfig::relative(1e-2)),
        Codec::Sz(SzConfig::relative(1e-2)),
        Codec::Zfp(ZfpConfig::fixed_rate(16)),
        Codec::Lz4,
    ];
    let mut lines = Vec::new();
    let mut json_items = Vec::new();
    let mut out_of_band = Vec::new();
    for codec in codecs {
        let work: Arc<dyn hpdr_core::DeviceAdapter> =
            Arc::new(crate::GpuSimAdapter::new(spec.clone()));
        let reducer = codec.reducer();
        let (container, creport) = compress_pipelined(
            &spec,
            Arc::clone(&work),
            Arc::clone(&reducer),
            Arc::clone(&input),
            &meta,
            &opts,
        )?;
        let (_, _, dreport) = decompress_pipelined(&spec, work, reducer, &container, &opts)?;
        let (c, d) = (creport.memory_fraction, dreport.memory_fraction);
        for (dir, share) in [("compress", c), ("decompress", d)] {
            if !(BAND.0..=BAND.1).contains(&share) {
                out_of_band.push(format!("{} {dir} {:.1}%", codec.name(), share * 100.0));
            }
        }
        json_items.push(format!(
            "{{\"codec\":\"{}\",\"compress\":{c:.6},\"decompress\":{d:.6}}}",
            codec.name()
        ));
        lines.push(format!(
            "{:10} memory ops {:5.1}% of compress, {:5.1}% of decompress",
            codec.name(),
            c * 100.0,
            d * 100.0
        ));
    }
    if !out_of_band.is_empty() {
        return Err(HpdrError::invalid(format!(
            "memory-op share outside the paper's 34-89% band: {}",
            out_of_band.join(", ")
        )));
    }
    if json {
        lines = vec![format!(
            "{{\"band\":[{},{}],\"codecs\":[{}]}}",
            BAND.0,
            BAND.1,
            json_items.join(",")
        )];
    } else {
        lines.insert(
            0,
            "Fig. 1 — memory-op time share, unpipelined, simulated V100, NYX 32^3:".to_string(),
        );
        lines.push("paper band: 34-89% — all codecs within band".to_string());
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_shape_variants() {
        assert_eq!(parse_shape("4x5x6").unwrap().dims(), &[4, 5, 6]);
        assert_eq!(parse_shape("128").unwrap().dims(), &[128]);
        assert!(parse_shape("4xx5").is_err());
        assert!(parse_shape("4x0").is_err());
        assert!(parse_shape("a").is_err());
    }

    #[test]
    fn parse_full_compress_command() {
        let cmd = parse(&argv(
            "compress --codec mgard --rel-eb 1e-2 --shape 8x8 --dtype f32 \
             --input a.bin --output a.hpdr",
        ))
        .unwrap();
        match cmd {
            Command::Compress {
                codec,
                shape,
                dtype,
                input,
                output,
            } => {
                assert_eq!(codec.name(), "mgard-x");
                assert_eq!(shape.dims(), &[8, 8]);
                assert_eq!(dtype, DType::F32);
                assert_eq!(input, "a.bin");
                assert_eq!(output, "a.hpdr");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_flags_are_errors() {
        assert!(parse(&argv("compress --codec mgard")).is_err());
        assert!(parse(&argv("decompress --input x")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(matches!(parse(&argv("help")).unwrap(), Command::Help));
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn codec_parameter_parsing() {
        let c = parse_codec(&argv("compress --codec zfp --rate 8")).unwrap();
        assert_eq!(c.name(), "zfp-x");
        let c = parse_codec(&argv("compress --codec sz --rel-eb 1e-4")).unwrap();
        assert_eq!(c.name(), "cusz-like");
        assert!(parse_codec(&argv("compress --codec gzip")).is_err());
        assert!(parse_codec(&argv("compress --codec zfp --rate nope")).is_err());
    }

    #[test]
    fn parse_serve_and_loadgen_commands() {
        match parse(&argv(
            "serve --devices 3 --policy serial --jobs q.txt --json",
        ))
        .unwrap()
        {
            Command::Serve {
                devices,
                policy,
                jobs,
                json,
                out,
                flight_out,
            } => {
                assert_eq!(devices, 3);
                assert_eq!(policy, hpdr_serve::Policy::Serial);
                assert_eq!(jobs.as_deref(), Some("q.txt"));
                assert!(json);
                assert_eq!(out, None);
                assert_eq!(flight_out, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --policy fifo")).is_err());
        // --devices is clamped to at least one device, not rejected.
        match parse(&argv("serve --devices 0")).unwrap() {
            Command::Serve { devices, .. } => assert_eq!(devices, 1),
            other => panic!("{other:?}"),
        }

        match parse(&argv("loadgen --quick --seed 11 --closed")).unwrap() {
            Command::Loadgen {
                opts,
                json,
                out,
                expo,
                flight_out,
            } => {
                assert_eq!(opts.seed, 11);
                assert!(opts.closed);
                assert!(!opts.metrics);
                assert!(!opts.flight);
                assert!(!json);
                assert_eq!(out, None);
                assert_eq!(expo, None);
                assert_eq!(flight_out, None);
                // --quick preset survives the overrides it doesn't name.
                assert_eq!(
                    opts,
                    hpdr_serve::LoadgenOptions {
                        seed: 11,
                        closed: true,
                        ..hpdr_serve::LoadgenOptions::quick()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("loadgen --rps 0")).is_err());
        assert!(parse(&argv("loadgen --duration -1")).is_err());
    }

    #[test]
    fn parse_cluster_command() {
        match parse(&argv(
            "cluster --quick --nodes 3 --policy random --fail-node 1@250 --json --out c.json",
        ))
        .unwrap()
        {
            Command::Cluster {
                opts,
                json,
                out,
                flight_out,
            } => {
                assert_eq!(opts.nodes, 3);
                assert_eq!(opts.policy, hpdr_shard::PlacementPolicy::Random);
                assert_eq!(opts.fail, Some((1, hpdr_sim::Ns::from_micros(250))));
                assert_eq!(opts.base.seed, hpdr_serve::LoadgenOptions::quick().seed);
                assert!(
                    !opts.base.metrics,
                    "cluster runs never install the registry"
                );
                assert!(json);
                assert_eq!(out.as_deref(), Some("c.json"));
                assert_eq!(flight_out, None);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: 4 nodes, locality, no failure.
        match parse(&argv("cluster --quick")).unwrap() {
            Command::Cluster { opts, .. } => {
                assert_eq!(opts.nodes, 4);
                assert_eq!(opts.policy, hpdr_shard::PlacementPolicy::Locality);
                assert_eq!(opts.fail, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("cluster --policy round-robin")).is_err());
        assert!(parse(&argv("cluster --fail-node 1")).is_err());
        assert!(parse(&argv("cluster --fail-node one@5")).is_err());

        // loadgen --nodes n>1 routes through the cluster front-end;
        // --nodes 1 stays a plain loadgen run.
        match parse(&argv("loadgen --quick --nodes 2")).unwrap() {
            Command::Cluster { opts, .. } => assert_eq!(opts.nodes, 2),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("loadgen --quick --nodes 1")).unwrap(),
            Command::Loadgen { .. }
        ));
    }

    #[test]
    fn parse_flight_out_and_explain_commands() {
        match parse(&argv("serve --devices 2 --flight-out f.json")).unwrap() {
            Command::Serve { flight_out, .. } => {
                assert_eq!(flight_out.as_deref(), Some("f.json"));
            }
            other => panic!("{other:?}"),
        }
        // --flight-out turns the recorder on for the loadgen run.
        match parse(&argv("loadgen --quick --flight-out f.json")).unwrap() {
            Command::Loadgen {
                opts, flight_out, ..
            } => {
                assert!(opts.flight, "--flight-out must enable the recorder");
                assert_eq!(flight_out.as_deref(), Some("f.json"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("cluster --quick --flight-out f.json")).unwrap() {
            Command::Cluster { flight_out, .. } => {
                assert_eq!(flight_out.as_deref(), Some("f.json"));
            }
            other => panic!("{other:?}"),
        }
        // loadgen routed through the cluster keeps the flag.
        match parse(&argv("loadgen --quick --nodes 2 --flight-out f.json")).unwrap() {
            Command::Cluster { flight_out, .. } => {
                assert_eq!(flight_out.as_deref(), Some("f.json"));
            }
            other => panic!("{other:?}"),
        }

        match parse(&argv("explain --report c.json --job 7 --worst 5")).unwrap() {
            Command::Explain { report, job, worst } => {
                assert_eq!(report, "c.json");
                assert_eq!(job, Some(7));
                assert_eq!(worst, 5);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: worst 3, no single-job filter; --report is required.
        match parse(&argv("explain --report c.json")).unwrap() {
            Command::Explain { report, job, worst } => {
                assert_eq!(report, "c.json");
                assert_eq!(job, None);
                assert_eq!(worst, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("explain")).is_err());
        assert!(parse(&argv("explain --report c.json --job seven")).is_err());
    }

    #[test]
    fn parse_metrics_top_and_slo_commands() {
        // --expo implies --metrics on loadgen.
        match parse(&argv("loadgen --quick --expo m.prom")).unwrap() {
            Command::Loadgen { opts, expo, .. } => {
                assert!(opts.metrics);
                assert_eq!(expo.as_deref(), Some("m.prom"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("loadgen --quick --metrics")).unwrap() {
            Command::Loadgen { opts, expo, .. } => {
                assert!(opts.metrics);
                assert_eq!(expo, None);
            }
            other => panic!("{other:?}"),
        }

        // top forces metrics on and shares the loadgen workload flags.
        match parse(&argv("top --quick --seed 3 --tail 12")).unwrap() {
            Command::Top { opts, tail } => {
                assert!(opts.metrics);
                assert_eq!(opts.seed, 3);
                assert_eq!(tail, 12);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("top")).unwrap() {
            Command::Top { tail, .. } => assert_eq!(tail, 5),
            other => panic!("{other:?}"),
        }

        match parse(&argv("slo --report LOADGEN.json")).unwrap() {
            Command::Slo { report, .. } => assert_eq!(report.as_deref(), Some("LOADGEN.json")),
            other => panic!("{other:?}"),
        }
        match parse(&argv("slo --quick")).unwrap() {
            Command::Slo { opts, report } => {
                assert!(opts.metrics);
                assert_eq!(report, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("top --rps 0")).is_err());
    }

    #[test]
    fn top_and_slo_run_a_quick_metered_workload() {
        let quick = hpdr_serve::LoadgenOptions {
            metrics: true,
            ..hpdr_serve::LoadgenOptions::quick()
        };
        let lines = run(Command::Top {
            opts: quick,
            tail: 4,
        })
        .unwrap();
        let text = lines.join("\n");
        assert!(text.contains("serve_queue_jobs"), "{text}");
        assert!(text.contains("slo_burn_rate"), "{text}");
        // Volatile pool gauges appear in the table but are marked.
        assert!(text.contains("~pool_workers"), "{text}");

        // The quick workload meets its SLO, so `hpdr slo` succeeds and
        // reports per-tenant attainment.
        let lines = run(Command::Slo {
            opts: quick,
            report: None,
        })
        .unwrap();
        let text = lines.join("\n");
        assert!(text.contains("latency target"), "{text}");
        assert!(text.contains("tenant"), "{text}");
    }

    #[test]
    fn parse_bench_compare_command() {
        match parse(&argv("bench --compare old.json new.json --threshold 0.25")).unwrap() {
            Command::BenchCompare { a, b, threshold } => {
                assert_eq!(a, "old.json");
                assert_eq!(b, "new.json");
                assert!((threshold - 0.25).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        // Default threshold.
        match parse(&argv("bench --compare a.json b.json")).unwrap() {
            Command::BenchCompare { threshold, .. } => {
                assert!((threshold - 0.10).abs() < 1e-12)
            }
            other => panic!("{other:?}"),
        }
        // Missing the second baseline path is an error.
        assert!(parse(&argv("bench --compare only-one.json")).is_err());
    }

    #[test]
    fn parse_retrieve_command() {
        match parse(&argv("retrieve")).unwrap() {
            Command::Retrieve {
                side,
                tolerance,
                refine,
                json,
                out,
            } => {
                assert_eq!(side, 32);
                assert!((tolerance - 1e-2).abs() < 1e-15);
                assert_eq!(refine, None);
                assert!(!json);
                assert_eq!(out, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "retrieve --side 16 --tolerance 1e-1 --refine 1e-3 --json --out r.json",
        ))
        .unwrap()
        {
            Command::Retrieve {
                side,
                tolerance,
                refine,
                json,
                out,
            } => {
                assert_eq!(side, 16);
                assert!((tolerance - 1e-1).abs() < 1e-15);
                assert!((refine.unwrap() - 1e-3).abs() < 1e-15);
                assert!(json);
                assert_eq!(out.as_deref(), Some("r.json"));
            }
            other => panic!("{other:?}"),
        }
        // --side is clamped rather than rejected; bad bounds are errors.
        match parse(&argv("retrieve --side 1")).unwrap() {
            Command::Retrieve { side, .. } => assert_eq!(side, 4),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("retrieve --tolerance 0")).is_err());
        assert!(parse(&argv("retrieve --refine -2")).is_err());
        assert!(parse(&argv("retrieve --tolerance nope")).is_err());
    }

    #[test]
    fn retrieve_fetches_fewer_bytes_at_looser_tolerance() {
        let loose =
            run(parse(&argv("retrieve --side 16 --tolerance 1e-1 --json")).unwrap()).unwrap();
        let tight = run(parse(&argv(
            "retrieve --side 16 --tolerance 1e-3 --refine 1e-5 --json",
        ))
        .unwrap())
        .unwrap();
        // Top-level "fetched_bytes" appears exactly once per document
        // (the refine delta uses "delta_bytes") — check.sh greps it.
        let bytes = |doc: &str| -> u64 {
            assert_eq!(doc.matches("\"fetched_bytes\":").count(), 1, "{doc}");
            let tail = doc.split("\"fetched_bytes\":").nth(1).unwrap();
            tail[..tail.find(',').unwrap()].parse().unwrap()
        };
        assert!(loose[0].contains("\"schema\":\"hpdr-progressive/v1\""));
        let (lb, tb) = (bytes(&loose[0]), bytes(&tight[0]));
        assert!(lb < tb, "loose fetch {lb} not < tight fetch {tb}");
        assert!(tight[0].contains("\"refine\":{"), "{}", tight[0]);
    }

    #[test]
    fn end_to_end_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hpdr-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.bin");
        let comp = dir.join("out.hpdr");
        let back = dir.join("back.bin");
        // 16x16 f32 ramp.
        let data: Vec<u8> = (0..256u32)
            .flat_map(|i| (i as f32 * 0.5).to_le_bytes())
            .collect();
        std::fs::write(&raw, &data).unwrap();

        let msg = run(parse(&argv(&format!(
            "compress --codec lz4 --shape 16x16 --dtype f32 --input {} --output {}",
            raw.display(),
            comp.display()
        )))
        .unwrap())
        .unwrap();
        assert!(msg[0].contains("lz4"));

        run(parse(&argv(&format!(
            "decompress --input {} --output {}",
            comp.display(),
            back.display()
        )))
        .unwrap())
        .unwrap();
        assert_eq!(std::fs::read(&back).unwrap(), data);

        let info = run(parse(&argv(&format!("info --input {}", comp.display()))).unwrap()).unwrap();
        assert!(info.iter().any(|l| l.contains("16x16")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_all_shipped_configs_clean() {
        assert!(matches!(
            parse(&argv("verify --json")).unwrap(),
            Command::Verify { json: true }
        ));
        let lines = run(parse(&argv("verify")).unwrap()).unwrap();
        assert!(
            lines.last().unwrap().contains("0 with findings"),
            "{lines:?}"
        );
        let json = run(Command::Verify { json: true }).unwrap();
        let blob = json.last().unwrap();
        // Shared envelope family with `hpdr audit`.
        assert_eq!(
            hpdr_verify::envelope::read_header(blob, hpdr_verify::envelope::SCHEMA_VERIFY),
            Ok(true),
            "{blob}"
        );
        assert!(blob.contains("\"dirty\":0"), "{blob}");
        assert!(blob.contains("\"hazards\":[]"));
    }

    #[test]
    fn audit_reports_all_shipped_configs_sound() {
        assert!(matches!(
            parse(&argv("audit --json --out a.json")).unwrap(),
            Command::Audit { json: true, out: Some(ref p) } if p == "a.json"
        ));
        let lines = run(parse(&argv("audit")).unwrap()).unwrap();
        assert!(
            lines
                .last()
                .unwrap()
                .contains("0 error(s), 0 warning(s), 0 interleaving violation(s)"),
            "{lines:?}"
        );
        let json = run(Command::Audit {
            json: true,
            out: None,
        })
        .unwrap();
        let blob = json.last().unwrap();
        hpdr_audit::validate_audit_json(blob).unwrap();
        assert_eq!(
            hpdr_verify::envelope::read_header(blob, hpdr_verify::envelope::SCHEMA_AUDIT),
            Ok(true)
        );
        // Both directions of the codec × adapter matrix are present.
        for name in ["mgard", "zfp", "huffman", "sz", "lz4"] {
            for adapter in ["serial", "cpu-parallel", "gpu-sim"] {
                assert!(
                    blob.contains(&format!("\"{name}/{adapter}\"")),
                    "{name}/{adapter}"
                );
            }
        }
        assert!(blob.contains("baseline-per-step"));
    }

    #[test]
    fn trace_emits_valid_two_chunk_chrome_json() {
        let lines = run(parse(&argv("trace")).unwrap()).unwrap();
        assert!(lines[0].contains("across 2 chunks"), "{}", lines[0]);
        let json = lines.last().unwrap();
        let summary = hpdr_trace::validate_chrome_trace(json).unwrap();
        assert!(summary.complete_events > 0);
        assert!(summary.metadata_events > 0);
    }

    #[test]
    fn profile_reports_invariants_ok() {
        let lines = run(parse(&argv("profile")).unwrap()).unwrap();
        assert!(lines.last().unwrap().contains("invariants ok"), "{lines:?}");
        let json = run(parse(&argv("profile --json")).unwrap()).unwrap();
        assert!(json[0].contains("\"compress\""), "{}", json[0]);
        assert!(json[0].contains("\"critical_path\""));
    }

    #[test]
    fn profile_fig1_shares_stay_in_paper_band() {
        let lines = run(parse(&argv("profile --figure fig1")).unwrap()).unwrap();
        assert!(lines.last().unwrap().contains("within band"), "{lines:?}");
        assert!(run(parse(&argv("profile --figure fig99")).unwrap()).is_err());
    }

    #[test]
    fn parse_bench_flags() {
        match parse(&argv("bench --quick --json --label ci --out x.json")).unwrap() {
            Command::Bench { opts, json } => {
                assert!(opts.quick);
                assert!(!opts.paper_scale);
                assert!(json);
                assert_eq!(opts.label, "ci");
                assert_eq!(opts.out.as_deref(), Some("x.json"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("bench --paper-scale")).unwrap() {
            Command::Bench { opts, json } => {
                assert!(!opts.quick);
                assert!(opts.paper_scale);
                assert!(!json);
                assert_eq!(opts.label, "local");
                assert_eq!(opts.out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_size_input_rejected() {
        let dir = std::env::temp_dir().join(format!("hpdr-cli-sz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("short.bin");
        std::fs::write(&raw, [0u8; 10]).unwrap();
        let r = run(parse(&argv(&format!(
            "compress --codec lz4 --shape 16x16 --dtype f32 --input {} --output {}",
            raw.display(),
            dir.join("x.hpdr").display()
        )))
        .unwrap());
        assert!(r.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
