//! The `hpdr` command-line tool: compress, decompress and inspect
//! scientific arrays from the shell. See `hpdr help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = hpdr::cli::parse(&args).and_then(hpdr::cli::run);
    match result {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", hpdr::cli::USAGE);
            std::process::exit(1);
        }
    }
}
