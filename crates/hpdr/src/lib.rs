//! # HPDR — High-Performance Portable Scientific Data Reduction
//!
//! A Rust reproduction of *"HPDR: High-Performance Portable Scientific
//! Data Reduction Framework"* (IPDPS 2025). The framework layers
//! (paper Fig. 2), bottom to top:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Device adapters | `hpdr_core::adapter`, `hpdr_core::gpu_sim` | Serial / CPU-parallel / simulated CUDA & HIP devices |
//! | Machine abstraction | `hpdr_core` (GEM/DEM, CMM), `hpdr_pipeline` (HDEM) | execution models, context memory model, host-device pipeline |
//! | Parallel abstractions | `hpdr_core::abstractions` | Locality, Iterative, Map&Process, Global |
//! | Reduction algorithms | `hpdr_mgard`, `hpdr_zfp`, `hpdr_huffman`, `hpdr_baselines` | MGARD-X, ZFP-X, Huffman-X + cuSZ/LZ4 comparators |
//! | Pipeline optimization | `hpdr_pipeline` | Fig. 9 overlapped DAG, Algorithm 4 adaptive chunking, multi-GPU |
//! | I/O integration | `hpdr_io` | BP5-like files, filesystem model, cluster scaling harness |
//!
//! ## Quickstart
//!
//! ```
//! use hpdr::{compress_slice, decompress_slice, Codec};
//! use hpdr::MgardConfig;
//! use hpdr::{CpuParallelAdapter, Shape};
//!
//! let adapter = CpuParallelAdapter::with_defaults();
//! let shape = Shape::new(&[64, 64]);
//! let data: Vec<f32> = (0..64 * 64)
//!     .map(|i| ((i / 64) as f32 * 0.1).sin() + ((i % 64) as f32 * 0.07).cos())
//!     .collect();
//!
//! let (stream, stats) =
//!     compress_slice(&adapter, &data, &shape, Codec::Mgard(MgardConfig::relative(1e-2)))
//!         .unwrap();
//! assert!(stats.ratio > 4.0, "smooth data compresses well");
//!
//! let (restored, restored_shape) = decompress_slice::<f32>(&adapter, &stream).unwrap();
//! assert_eq!(restored_shape, shape);
//! assert_eq!(restored.len(), data.len());
//! ```
//!
//! Because no GPU hardware is assumed, the CUDA/HIP adapters run on a
//! deterministic virtual-time device simulator (see `hpdr-sim`): kernels
//! execute for real on host threads while timing is charged against
//! calibrated engine models — every compressed byte is real, every
//! reported overlap/throughput number comes from the simulated engines.

pub mod api;

pub use api::{
    compress, compress_slice, decompress, decompress_slice, detect_codec, reducer_by_name, Codec,
    CompressionStats,
};

// Layer re-exports under stable names.
pub use hpdr_baselines as baselines;
pub use hpdr_core as framework;
pub use hpdr_data as data;
pub use hpdr_huffman as huffman;
pub use hpdr_io as io;
pub use hpdr_kernels as kernels;
pub use hpdr_mgard as mgard;
pub use hpdr_pipeline as pipeline;
pub use hpdr_progressive as progressive;
pub use hpdr_sim as sim;
pub use hpdr_trace as trace;
pub use hpdr_zfp as zfp;

// The most-used types at the top level.
pub use hpdr_baselines::SzConfig;
pub use hpdr_core::{
    ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, GpuSimAdapter, HpdrError, Reducer, Result,
    SerialAdapter, Shape,
};
pub use hpdr_mgard::{ErrorBound, MgardConfig};
pub use hpdr_pipeline::{PipelineMode, PipelineOptions};
pub use hpdr_zfp::{ZfpConfig, ZfpMode};

pub mod bench;
pub mod cli;
pub mod slo;
