//! `hpdr slo` report rendering: per-tenant SLO attainment and the
//! burn-rate alert timeline, read back out of a saved JSON document.
//!
//! Accepts any of the three report schemas that can carry a metrics
//! registry — a bare `hpdr-metrics/v1` document, an `hpdr-serve/v1`
//! report (registry under `"metrics"`), or an `hpdr-loadgen/v1` report
//! (registry under `"serve"."metrics"`) — so `hpdr slo --report` works
//! on whatever file a metered run left behind.

use hpdr_metrics::{parse_json, JsonValue};

/// Locate the embedded metrics registry object in a parsed report.
fn find_metrics(doc: &JsonValue) -> Result<&JsonValue, String> {
    if doc.get("schema").and_then(JsonValue::as_str) == Some(hpdr_metrics::METRICS_SCHEMA) {
        return Ok(doc);
    }
    if let Some(m) = doc.get("metrics") {
        return Ok(m);
    }
    if let Some(m) = doc.get("serve").and_then(|s| s.get("metrics")) {
        return Ok(m);
    }
    Err("document carries no metrics registry (re-run with --metrics)".to_string())
}

fn num(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}' in slo section"))
}

/// Render the SLO section of a report: objectives, per-tenant
/// attainment, the alert timeline, and each tenant's burn-rate series
/// tail. Returns the lines plus the total number of alerts that fired.
pub fn render_slo_report(doc: &str) -> Result<(Vec<String>, u64), String> {
    let parsed = parse_json(doc)?;
    let metrics = find_metrics(&parsed)?;
    let slo = metrics
        .get("slo")
        .ok_or("metrics registry has no SLO tracker (enable MetricsConfig::slo)")?;

    let target_ns = num(slo, "latency_target_ns")?;
    let goal = num(slo, "goal")?;
    let window_ns = num(slo, "window_ns")?;
    let threshold = num(slo, "burn_threshold")?;
    let mut lines = vec![format!(
        "slo: latency target {:.3} ms, goal {:.1}% good, burn window {:.0} ms, alert at {:.2}x",
        target_ns / 1e6,
        goal * 100.0,
        window_ns / 1e6,
        threshold
    )];

    let rows = slo
        .get("attainment")
        .and_then(JsonValue::as_arr)
        .ok_or("slo section has no attainment array")?;
    lines.push(format!(
        "  {:<8} {:>10} {:>10} {:>12} {:>8}",
        "tenant", "good", "total", "attainment", "alerts"
    ));
    let mut total_alerts = 0u64;
    for row in rows {
        let tenant = num(row, "tenant")? as u32;
        let alerts = num(row, "alerts")? as u64;
        let attainment = num(row, "attainment")?;
        let met = if attainment >= goal {
            ""
        } else {
            "  << below goal"
        };
        lines.push(format!(
            "  t{tenant:<7} {:>10} {:>10} {:>11.2}% {alerts:>8}{met}",
            num(row, "good")? as u64,
            num(row, "total")? as u64,
            attainment * 100.0,
        ));
        total_alerts += alerts;
    }

    let alerts = slo
        .get("alerts")
        .and_then(JsonValue::as_arr)
        .ok_or("slo section has no alerts array")?;
    if alerts.is_empty() {
        lines.push("  no burn-rate alerts fired".to_string());
    } else {
        lines.push(format!("  {} burn-rate alert(s):", alerts.len()));
        for a in alerts {
            lines.push(format!(
                "    t{} at {:.3} ms virtual — burn {:.2}x budget",
                num(a, "tenant")? as u32,
                num(a, "at_ns")? / 1e6,
                num(a, "burn")?
            ));
        }
    }

    // Burn-rate timeline: tail of each tenant's scraped gauge series.
    if let Some(series) = metrics.get("series").and_then(JsonValue::as_obj) {
        for (name, ring) in series {
            if !name.starts_with("slo_burn_rate{") {
                continue;
            }
            let Some(points) = ring.as_arr() else {
                continue;
            };
            let tail: Vec<String> = points
                .iter()
                .rev()
                .take(8)
                .rev()
                .filter_map(|p| p.as_arr())
                .filter_map(|p| Some(format!("{:.2}", p.get(1)?.as_f64()?)))
                .collect();
            lines.push(format!("  {name:<28} burn tail: {}", tail.join(" ")));
        }
    }
    Ok((lines, total_alerts))
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS_DOC: &str = r#"{
      "schema": "hpdr-metrics/v1",
      "scrape_interval_ns": 25000000,
      "scrapes": 2,
      "last_scrape_ns": 50000000,
      "counters": {},
      "gauges": {"slo_burn_rate{tenant=\"0\"}": 2.500000},
      "histograms": {},
      "series": {"slo_burn_rate{tenant=\"0\"}": [[25000000,0.0],[50000000,2.5]]},
      "slo": {
        "latency_target_ns": 10000000,
        "goal": 0.900000,
        "window_ns": 200000000,
        "burn_threshold": 2.000000,
        "attainment": [{"tenant":0,"good":3,"total":4,"attainment":0.750000,"alerts":1}],
        "alerts": [{"tenant":0,"at_ns":50000000,"burn":2.500000}]
      }
    }"#;

    #[test]
    fn renders_bare_metrics_document() {
        let (lines, alerts) = render_slo_report(METRICS_DOC).unwrap();
        assert_eq!(alerts, 1);
        let text = lines.join("\n");
        assert!(text.contains("latency target 10.000 ms"), "{text}");
        assert!(text.contains("below goal"), "{text}");
        assert!(text.contains("burn 2.50x budget"), "{text}");
        assert!(text.contains("burn tail: 0.00 2.50"), "{text}");
    }

    #[test]
    fn finds_registry_nested_in_loadgen_shape() {
        let nested = format!(
            "{{\"schema\":\"hpdr-loadgen/v1\",\"serve\":{{\"metrics\":{}}}}}",
            METRICS_DOC
        );
        let (_, alerts) = render_slo_report(&nested).unwrap();
        assert_eq!(alerts, 1);
    }

    #[test]
    fn missing_registry_and_missing_slo_are_errors() {
        let e = render_slo_report("{\"schema\":\"hpdr-serve/v1\"}").unwrap_err();
        assert!(e.contains("--metrics"), "{e}");
        let e = render_slo_report("{\"schema\":\"hpdr-metrics/v1\",\"series\":{}}").unwrap_err();
        assert!(e.contains("SLO tracker"), "{e}");
    }
}
