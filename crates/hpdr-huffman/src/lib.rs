//! # hpdr-huffman — Huffman-X
//!
//! Portable parallel Huffman entropy codec built on the HPDR abstractions
//! (paper §IV-B, Algorithm 2). The pipeline is: Global histogram → sort →
//! filter → two-phase treeless canonical codebook generation → Locality
//! encode → Global serialize (scan + atomic-OR bit packing). Decoding is
//! chunk-parallel via recorded bit offsets.
//!
//! Streams are canonical and little-endian, so data compressed on any
//! adapter decompresses bit-identically on any other — the portability
//! property HPDR is built around.

// The encode/decode kernels write disjoint index sets of shared outputs through
// `hpdr_core::SharedSlice` (each site documents its disjointness
// argument) — part of the workspace's sanctioned `unsafe` island under
// `unsafe_code = "deny"`.
#![allow(unsafe_code)]

pub mod codebook;
pub mod codec;

pub use codebook::{Code, Codebook, TwoLevelTable, MAX_CODE_LEN};
pub use codec::{
    compress_bytes, compress_u32, decompress_bytes, decompress_u32, HuffKey, HuffmanConfig,
};
pub mod reducer;
pub use reducer::ByteHuffmanReducer;
