//! Huffman-X compression pipeline (paper Algorithm 2 / Fig. 6):
//!
//! ```text
//! Histogram(Global) → Sort → Filter → GenCodebook(Global)
//!   → Encode(Locality) → Serialize(Global)
//! ```
//!
//! The encoded stream is chunked: every `chunk_elems` symbols start at a
//! recorded bit offset, so decoding parallelizes across chunks (the
//! coarse-grained scheme of Tian et al.'s GPU Huffman, ref \[40\]).

use crate::codebook::Codebook;
use hpdr_core::{ByteReader, ByteWriter, DeviceAdapter, HpdrError, KernelClass, Locality, Result};
use hpdr_kernels::bitstream::BitReader;
use hpdr_kernels::{histogram_u32, histogram_u8};

const MAGIC: u32 = 0x4855_4631; // "HUF1"

mod private {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u8 {}
}

/// Symbol types the Huffman pipeline consumes directly (sealed: `u32` and
/// `u8`). The byte instantiation lets [`compress_bytes`] encode raw byte
/// streams without materializing a 4×-larger `u32` key vector, while both
/// instantiations share the exact container format and packing loop — the
/// emitted bytes for equal symbol sequences are identical.
pub trait HuffKey: Copy + Send + Sync + private::Sealed + 'static {
    fn as_u32(self) -> u32;
    fn from_u32(v: u32) -> Self;
    /// Device histogram over `0..dict`: `(freqs, overflow_count)`.
    fn histogram(adapter: &dyn DeviceAdapter, keys: &[Self], dict: usize) -> (Vec<u64>, u64);
    /// `Σ lens[key]` through the SIMD dispatch table (keys ≥ `lens.len()`
    /// clamp to the last slot; valid inputs never reach it).
    fn bits_sum(keys: &[Self], lens: &[u32]) -> u64;
}

impl HuffKey for u32 {
    fn as_u32(self) -> u32 {
        self
    }
    fn from_u32(v: u32) -> u32 {
        v
    }
    fn histogram(adapter: &dyn DeviceAdapter, keys: &[u32], dict: usize) -> (Vec<u64>, u64) {
        histogram_u32(adapter, keys, dict)
    }
    fn bits_sum(keys: &[u32], lens: &[u32]) -> u64 {
        (hpdr_kernels::kernels().code_bits_sum)(keys, lens)
    }
}

impl HuffKey for u8 {
    fn as_u32(self) -> u32 {
        self as u32
    }
    fn from_u32(v: u32) -> u8 {
        v as u8
    }
    fn histogram(adapter: &dyn DeviceAdapter, keys: &[u8], dict: usize) -> (Vec<u64>, u64) {
        let h = histogram_u8(adapter, keys);
        if dict >= 256 {
            let mut freqs = h;
            freqs.resize(dict, 0);
            (freqs, 0)
        } else {
            let overflow = h[dict..].iter().sum();
            (h[..dict].to_vec(), overflow)
        }
    }
    fn bits_sum(keys: &[u8], lens: &[u32]) -> u64 {
        (hpdr_kernels::kernels().byte_bits_sum)(keys, lens)
    }
}

/// Huffman-X configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HuffmanConfig {
    /// Dictionary size: symbols must lie in `0..dict_size`.
    pub dict_size: u32,
    /// Symbols per decode chunk (decode parallelism granularity).
    pub chunk_elems: usize,
}

impl Default for HuffmanConfig {
    fn default() -> Self {
        HuffmanConfig {
            dict_size: 4096,
            chunk_elems: 1 << 16,
        }
    }
}

impl HuffmanConfig {
    pub fn config_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.dict_size);
        w.put_u64(self.chunk_elems as u64);
        w.into_vec()
    }
}

/// Compress a symbol stream. All `keys` must be `< cfg.dict_size`.
pub fn compress_u32(
    adapter: &dyn DeviceAdapter,
    keys: &[u32],
    cfg: &HuffmanConfig,
) -> Result<Vec<u8>> {
    compress_keys(adapter, keys, cfg)
}

/// Compress a raw byte stream (`dict_size` must be ≤ 256 for the symbols
/// to be representable, typically exactly 256). Produces a byte-identical
/// container to [`compress_u32`] over the widened keys, without the 4×
/// `u32` key materialization.
pub fn compress_bytes(
    adapter: &dyn DeviceAdapter,
    bytes: &[u8],
    cfg: &HuffmanConfig,
) -> Result<Vec<u8>> {
    compress_keys(adapter, bytes, cfg)
}

/// Shared compression pipeline over any [`HuffKey`] symbol type.
pub fn compress_keys<K: HuffKey>(
    adapter: &dyn DeviceAdapter,
    keys: &[K],
    cfg: &HuffmanConfig,
) -> Result<Vec<u8>> {
    if cfg.dict_size == 0 {
        return Err(HpdrError::invalid("dict_size must be positive"));
    }
    // Alg. 2 line 2: Global histogram.
    let (freqs, overflow) = K::histogram(adapter, keys, cfg.dict_size as usize);
    if overflow > 0 {
        return Err(HpdrError::invalid(format!(
            "{overflow} symbols outside dictionary of {}",
            cfg.dict_size
        )));
    }
    // Lines 3–5: sort, filter, two-phase codebook generation.
    let book = Codebook::from_frequencies(&freqs)?;

    // Lines 6–7, fused: instead of materializing a `(bits, len)` pair per
    // element, scanning all n lengths, and atomically OR-packing, each
    // decode chunk (a) counts its encoded bits, then — after a host-side
    // byte-rounding scan of the chunk sizes — (b) re-encodes directly
    // into its own disjoint byte range with a local 64-bit accumulator.
    // Byte-aligning every chunk start costs ≤ 7 pad bits per chunk and
    // makes the packing ranges disjoint, so no atomics are needed and the
    // bytes are adapter-independent by construction.
    let n = keys.len();
    let chunk = cfg.chunk_elems.max(1);
    let num_chunks = n.div_ceil(chunk);

    // Stage A (Locality): per-chunk encoded bit counts, summed by the
    // SIMD-dispatched gather kernel over a dense code-length table.
    let lens: Vec<u32> = (0..cfg.dict_size).map(|s| book.code(s).len).collect();
    let mut chunk_bits = vec![0u64; num_chunks];
    if n > 0 {
        let bits_sh = hpdr_core::SharedSlice::new(&mut chunk_bits);
        Locality::new(num_chunks).run(adapter, &|c, _| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let bits = K::bits_sum(&keys[lo..hi], &lens);
            // Safety: one writer per chunk index.
            unsafe { bits_sh.write(c, bits) };
        });
    }

    // Host scan: byte-aligned chunk starts (the chunk table doubles as
    // the parallel-decode seek table).
    let mut chunk_offsets = Vec::with_capacity(num_chunks);
    let mut cursor = 0u64; // bits; always a multiple of 8
    let mut total_bits = 0u64;
    for &bits in &chunk_bits {
        chunk_offsets.push(cursor);
        total_bits = cursor + bits;
        cursor = total_bits.div_ceil(8) * 8;
    }

    // Stage B (Locality): pack each chunk into its disjoint byte range.
    let mut payload = vec![0u8; (cursor / 8) as usize];
    if n > 0 {
        let payload_sh = hpdr_core::SharedSlice::new(&mut payload);
        Locality::new(num_chunks).run(adapter, &|c, _| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let base = (chunk_offsets[c] / 8) as usize;
            let nbytes = chunk_bits[c].div_ceil(8) as usize;
            // Safety: chunk byte ranges are disjoint — each chunk starts
            // on the byte after its predecessor's last data byte.
            let dst = unsafe { payload_sh.slice_mut(base, nbytes) };
            let mut acc = 0u64;
            let mut nacc = 0u32; // invariant: nacc < 64 between symbols
            let mut wpos = 0usize;
            for &k in &keys[lo..hi] {
                let code = book.code(k.as_u32());
                debug_assert!(code.len > 0, "uncoded symbol in input");
                let spill = if nacc == 0 {
                    0
                } else {
                    code.bits_rev >> (64 - nacc)
                };
                acc |= code.bits_rev << nacc;
                nacc += code.len;
                if nacc >= 64 {
                    dst[wpos..wpos + 8].copy_from_slice(&acc.to_le_bytes());
                    wpos += 8;
                    nacc -= 64;
                    acc = spill;
                }
            }
            let tail = acc.to_le_bytes();
            let mut rem = nacc;
            let mut bi = 0usize;
            while rem > 0 {
                dst[wpos] = tail[bi];
                wpos += 1;
                bi += 1;
                rem = rem.saturating_sub(8);
            }
            debug_assert_eq!(wpos, nbytes);
        });
    }

    // Charge the whole Huffman kernel once against the device cost model.
    adapter.charge(KernelClass::Huffman, (n * 4) as u64);

    // Container.
    let mut w = ByteWriter::with_capacity(payload.len() + 64);
    w.put_u32(MAGIC);
    w.put_u32(cfg.dict_size);
    w.put_u64(n as u64);
    w.put_u64(chunk as u64);
    w.put_u64(total_bits);
    let pairs = book.length_pairs();
    w.put_u32(pairs.len() as u32);
    for (sym, len) in pairs {
        w.put_u32(sym);
        w.put_u8(len as u8);
    }
    w.put_u32(chunk_offsets.len() as u32);
    for off in chunk_offsets {
        w.put_u64(off);
    }
    w.put_block(&payload);
    Ok(w.into_vec())
}

/// Decompress a Huffman-X stream produced by [`compress_u32`].
pub fn decompress_u32(adapter: &dyn DeviceAdapter, bytes: &[u8]) -> Result<Vec<u32>> {
    decompress_keys::<u32>(adapter, bytes, u32::MAX)
}

/// Decompress a Huffman-X stream into bytes. Rejects streams whose
/// dictionary exceeds 256 (their symbols would not fit in a byte).
pub fn decompress_bytes(adapter: &dyn DeviceAdapter, bytes: &[u8]) -> Result<Vec<u8>> {
    decompress_keys::<u8>(adapter, bytes, 256)
}

/// Shared decompression pipeline; `max_dict` bounds the dictionary size
/// representable in `K`.
fn decompress_keys<K: HuffKey>(
    adapter: &dyn DeviceAdapter,
    bytes: &[u8],
    max_dict: u32,
) -> Result<Vec<K>> {
    let mut r = ByteReader::new(bytes);
    if r.get_u32()? != MAGIC {
        return Err(HpdrError::corrupt("bad Huffman magic"));
    }
    let dict_size = r.get_u32()?;
    if dict_size > max_dict {
        return Err(HpdrError::invalid(format!(
            "dictionary of {dict_size} does not fit the requested symbol width"
        )));
    }
    let n = r.get_u64()? as usize;
    let chunk = r.get_u64()? as usize;
    let total_bits = r.get_u64()?;
    if chunk == 0 {
        return Err(HpdrError::corrupt("zero chunk size"));
    }
    let num_pairs = r.get_u32()? as usize;
    if num_pairs > dict_size as usize {
        return Err(HpdrError::corrupt("more codes than dictionary entries"));
    }
    let mut pairs = Vec::with_capacity(num_pairs);
    for _ in 0..num_pairs {
        let sym = r.get_u32()?;
        let len = r.get_u8()? as u32;
        pairs.push((sym, len));
    }
    let book = Codebook::from_lengths(dict_size, &pairs)?;
    let num_chunks = r.get_u32()? as usize;
    let expected_chunks = n.div_ceil(chunk);
    if num_chunks != expected_chunks {
        return Err(HpdrError::corrupt(format!(
            "chunk table has {num_chunks} entries, expected {expected_chunks}"
        )));
    }
    let mut chunk_offsets = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        chunk_offsets.push(r.get_u64()?);
    }
    let payload = r.get_block()?;
    r.expect_exhausted()?;
    if total_bits > payload.len() as u64 * 8 {
        return Err(HpdrError::corrupt(
            "payload shorter than declared bit length",
        ));
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Parallel chunk decode via the Locality abstraction. Every symbol
    // decodes from a zero-padded 64-bit window: a two-level table hit
    // resolves the common case in one or two probes, and table misses
    // fall back to the canonical first-code scan over the same window —
    // no per-bit stream reads on any path. Zero padding could complete a
    // truncated codeword, so each decode is bounded by the remaining
    // stream bits. Any codeword error inside a worker is collected and
    // surfaced after the join.
    let table = book.two_level_table(12);
    let mut out = vec![K::from_u32(0); n];
    let errors = std::sync::Mutex::new(Vec::new());
    {
        let out_sh = hpdr_core::SharedSlice::new(&mut out);
        Locality::new(num_chunks).run(adapter, &|c, _| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let mut br = match BitReader::with_bit_limit(payload, total_bits) {
                Ok(b) => b,
                Err(e) => {
                    errors.lock().unwrap().push(e);
                    return;
                }
            };
            if let Err(e) = br.seek(chunk_offsets[c]) {
                errors.lock().unwrap().push(e);
                return;
            }
            for i in lo..hi {
                let pos = br.bit_pos();
                let window = br.peek_padded();
                let decoded = match table.decode(window) {
                    Some(hit) => Ok(hit),
                    None => book.decode_window(window),
                };
                match decoded {
                    Ok((sym, used)) if (used as u64) <= br.remaining_bits() => {
                        // In-bounds by the guard above, so seek succeeds.
                        let _ = br.seek(pos + used as u64);
                        // Safety: chunks write disjoint ranges.
                        unsafe { out_sh.write(i, K::from_u32(sym)) };
                    }
                    Ok(_) => {
                        errors
                            .lock()
                            .unwrap()
                            .push(HpdrError::corrupt("codeword extends past end of stream"));
                        return;
                    }
                    Err(e) => {
                        errors.lock().unwrap().push(e);
                        return;
                    }
                }
            }
        });
    }
    if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
        return Err(e);
    }
    adapter.charge(KernelClass::Huffman, (n * 4) as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn roundtrip(keys: &[u32], cfg: &HuffmanConfig) {
        let a = CpuParallelAdapter::new(4);
        let compressed = compress_u32(&a, keys, cfg).unwrap();
        let out = decompress_u32(&a, &compressed).unwrap();
        assert_eq!(out, keys);
    }

    /// Stage-level profile of the byte-compress hot path on a 32³-f32-
    /// sized input (131072 bytes). Run with:
    ///   cargo test --release -p hpdr-huffman --lib -- --ignored profile --nocapture
    #[test]
    #[ignore = "profiling harness, run manually with --nocapture"]
    fn profile_compress_bytes_stages() {
        use std::time::Instant;
        // Byte stream shaped like a smooth f32 field's raw bytes: highly
        // skewed exponent/sign bytes, near-uniform mantissa bytes.
        let bytes: Vec<u8> = (0..32768usize)
            .flat_map(|i| {
                let x = (i as f32 * 0.003).sin() * (i as f32 * 0.0007).cos() + 1.5;
                x.to_le_bytes()
            })
            .collect();
        let n = bytes.len();
        let cfg = HuffmanConfig::default();
        let a = SerialAdapter::new();
        let reps = 300usize;

        let best = |label: &str, f: &mut dyn FnMut()| {
            let mut min = std::time::Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                f();
                min = min.min(t0.elapsed());
            }
            println!(
                "{label:>12}: {:>9.1} us  ({:.2} ns/sym)",
                min.as_secs_f64() * 1e6,
                min.as_secs_f64() * 1e9 / n as f64
            );
        };

        best("histogram", &mut || {
            std::hint::black_box(u8::histogram(&a, &bytes, cfg.dict_size as usize));
        });
        let (freqs, _) = u8::histogram(&a, &bytes, cfg.dict_size as usize);
        best("codebook", &mut || {
            std::hint::black_box(Codebook::from_frequencies(&freqs).unwrap());
        });
        let book = Codebook::from_frequencies(&freqs).unwrap();
        let lens: Vec<u32> = (0..cfg.dict_size).map(|s| book.code(s).len).collect();
        best("bits_sum", &mut || {
            std::hint::black_box(u8::bits_sum(&bytes, &lens));
        });
        let total_bits = u8::bits_sum(&bytes, &lens);
        let mut payload = vec![0u8; (total_bits as usize).div_ceil(8)];
        best("pack", &mut || {
            let dst = &mut payload[..];
            let mut acc = 0u64;
            let mut nacc = 0u32;
            let mut wpos = 0usize;
            for &k in &bytes {
                let code = book.code(k as u32);
                let spill = if nacc == 0 {
                    0
                } else {
                    code.bits_rev >> (64 - nacc)
                };
                acc |= code.bits_rev << nacc;
                nacc += code.len;
                if nacc >= 64 {
                    dst[wpos..wpos + 8].copy_from_slice(&acc.to_le_bytes());
                    wpos += 8;
                    nacc -= 64;
                    acc = spill;
                }
            }
            let tail = acc.to_le_bytes();
            let mut rem = nacc;
            let mut bi = 0usize;
            while rem > 0 {
                dst[wpos] = tail[bi];
                wpos += 1;
                bi += 1;
                rem = rem.saturating_sub(8);
            }
            std::hint::black_box(&dst);
        });
        best("full", &mut || {
            std::hint::black_box(compress_bytes(&a, &bytes, &cfg).unwrap());
        });
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let keys: Vec<u32> = (0..100_000u32)
            .map(|i| {
                // Geometric-ish skew around 2048 (a quantizer's zero bin).
                let r = i.wrapping_mul(2654435761) >> 16;
                2048 + (r % 64) * if i % 2 == 0 { 1 } else { 0 }
            })
            .collect();
        roundtrip(&keys, &HuffmanConfig::default());
    }

    #[test]
    fn roundtrip_uniform_and_tiny() {
        let cfg = HuffmanConfig {
            dict_size: 257,
            chunk_elems: 100,
        };
        let keys: Vec<u32> = (0..10_000u32).map(|i| i % 257).collect();
        roundtrip(&keys, &cfg);
        roundtrip(&[0], &cfg);
        roundtrip(&[5, 5, 5, 5], &cfg);
        roundtrip(&[], &cfg);
    }

    #[test]
    fn serial_and_parallel_streams_identical() {
        // Portability: the bytes must not depend on the adapter.
        let keys: Vec<u32> = (0..50_000u32).map(|i| (i * 7) % 300).collect();
        let cfg = HuffmanConfig::default();
        let serial = compress_u32(&SerialAdapter::new(), &keys, &cfg).unwrap();
        let parallel = compress_u32(&CpuParallelAdapter::new(8), &keys, &cfg).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cross_adapter_decode() {
        let keys: Vec<u32> = (0..20_000u32).map(|i| (i * 31) % 1000).collect();
        let cfg = HuffmanConfig::default();
        let stream = compress_u32(&CpuParallelAdapter::new(4), &keys, &cfg).unwrap();
        let out = decompress_u32(&SerialAdapter::new(), &stream).unwrap();
        assert_eq!(out, keys);
    }

    #[test]
    fn compresses_skewed_data() {
        let a = SerialAdapter::new();
        let keys = vec![7u32; 100_000]; // maximally skewed
        let stream = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        // 100k symbols at ~1 bit ≈ 12.5 KB plus headers — far below raw.
        assert!(stream.len() < 20_000, "got {}", stream.len());
    }

    #[test]
    fn out_of_dict_symbol_rejected() {
        let a = SerialAdapter::new();
        let cfg = HuffmanConfig {
            dict_size: 16,
            chunk_elems: 8,
        };
        assert!(compress_u32(&a, &[3, 99], &cfg).is_err());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let a = SerialAdapter::new();
        let keys: Vec<u32> = (0..1000u32).map(|i| i % 50).collect();
        let good = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        // Truncations at every length must return Err, never panic.
        for cut in [0, 1, 4, 10, good.len() / 2, good.len() - 1] {
            assert!(decompress_u32(&a, &good[..cut]).is_err(), "cut={cut}");
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decompress_u32(&a, &bad).is_err());
    }

    #[test]
    fn byte_path_is_stream_identical_to_u32_path() {
        // The u8 instantiation must emit the exact bytes of the widened
        // u32 instantiation — same histogram, same codebook, same packing.
        let a = CpuParallelAdapter::new(4);
        let bytes: Vec<u8> = (0..60_000usize)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for dict in [256u32, 300, 100] {
            let cfg = HuffmanConfig {
                dict_size: dict,
                chunk_elems: 1 << 12,
            };
            let keys: Vec<u32> = bytes.iter().map(|&b| b as u32).collect();
            let via_u32 = compress_u32(&a, &keys, &cfg);
            let via_u8 = compress_bytes(&a, &bytes, &cfg);
            match (via_u32, via_u8) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x, y, "dict={dict}");
                    if dict <= 256 {
                        assert_eq!(decompress_bytes(&a, &y).unwrap(), bytes);
                    } else {
                        assert_eq!(decompress_u32(&a, &y).unwrap(), keys);
                    }
                }
                (Err(_), Err(_)) => {} // both reject out-of-dict symbols
                (x, y) => panic!("paths disagree for dict={dict}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn byte_decode_rejects_wide_dictionaries() {
        let a = SerialAdapter::new();
        let keys = vec![300u32, 2, 3];
        let stream = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        assert!(decompress_bytes(&a, &stream).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let a = SerialAdapter::new();
        let keys = vec![1u32, 2, 3];
        let mut stream = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        stream.push(0xAB);
        assert!(decompress_u32(&a, &stream).is_err());
    }
}
