//! Huffman-X compression pipeline (paper Algorithm 2 / Fig. 6):
//!
//! ```text
//! Histogram(Global) → Sort → Filter → GenCodebook(Global)
//!   → Encode(Locality) → Serialize(Global)
//! ```
//!
//! The encoded stream is chunked: every `chunk_elems` symbols start at a
//! recorded bit offset, so decoding parallelizes across chunks (the
//! coarse-grained scheme of Tian et al.'s GPU Huffman, ref \[40\]).

use crate::codebook::Codebook;
use hpdr_core::{ByteReader, ByteWriter, DeviceAdapter, HpdrError, KernelClass, Locality, Result};
use hpdr_kernels::bitstream::BitReader;
use hpdr_kernels::{exclusive_scan, histogram_u32, pack_bits};

const MAGIC: u32 = 0x4855_4631; // "HUF1"

/// Huffman-X configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HuffmanConfig {
    /// Dictionary size: symbols must lie in `0..dict_size`.
    pub dict_size: u32,
    /// Symbols per decode chunk (decode parallelism granularity).
    pub chunk_elems: usize,
}

impl Default for HuffmanConfig {
    fn default() -> Self {
        HuffmanConfig {
            dict_size: 4096,
            chunk_elems: 1 << 16,
        }
    }
}

impl HuffmanConfig {
    pub fn config_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.dict_size);
        w.put_u64(self.chunk_elems as u64);
        w.into_vec()
    }
}

/// Compress a symbol stream. All `keys` must be `< cfg.dict_size`.
#[allow(clippy::needless_range_loop)] // indexed writes into the shared slice
pub fn compress_u32(
    adapter: &dyn DeviceAdapter,
    keys: &[u32],
    cfg: &HuffmanConfig,
) -> Result<Vec<u8>> {
    if cfg.dict_size == 0 {
        return Err(HpdrError::invalid("dict_size must be positive"));
    }
    // Alg. 2 line 2: Global histogram.
    let (freqs, overflow) = histogram_u32(adapter, keys, cfg.dict_size as usize);
    if overflow > 0 {
        return Err(HpdrError::invalid(format!(
            "{overflow} symbols outside dictionary of {}",
            cfg.dict_size
        )));
    }
    // Lines 3–5: sort, filter, two-phase codebook generation.
    let book = Codebook::from_frequencies(&freqs)?;

    // Line 6: Encode via the Locality abstraction — each element encodes
    // independently; blocks of elements map to groups for locality.
    let n = keys.len();
    let mut codes: Vec<(u64, u32)> = vec![(0, 0); n];
    if n > 0 {
        let block = 1usize << 14;
        let blocks = n.div_ceil(block);
        let codes_sh = hpdr_core::SharedSlice::new(&mut codes);
        Locality::new(blocks).run(adapter, &|b, _| {
            let lo = b * block;
            let hi = (lo + block).min(n);
            for i in lo..hi {
                let c = book.code(keys[i]);
                debug_assert!(c.len > 0, "uncoded symbol in input");
                // Safety: blocks write disjoint ranges.
                unsafe { codes_sh.write(i, (c.bits_rev, c.len)) };
            }
        });
    }

    // Line 7: Serialize (Global): scan lengths → offsets → parallel pack.
    let lengths: Vec<u64> = codes.iter().map(|&(_, l)| l as u64).collect();
    let offsets = exclusive_scan(adapter, &lengths);
    let payload = pack_bits(adapter, &codes, &offsets);
    let total_bits = *offsets.last().unwrap();

    // Chunk table for parallel decode.
    let chunk = cfg.chunk_elems.max(1);
    let chunk_offsets: Vec<u64> = (0..n).step_by(chunk).map(|i| offsets[i]).collect();

    // Charge the whole Huffman kernel once against the device cost model.
    adapter.charge(KernelClass::Huffman, (n * 4) as u64);

    // Container.
    let mut w = ByteWriter::with_capacity(payload.len() + 64);
    w.put_u32(MAGIC);
    w.put_u32(cfg.dict_size);
    w.put_u64(n as u64);
    w.put_u64(chunk as u64);
    w.put_u64(total_bits);
    let pairs = book.length_pairs();
    w.put_u32(pairs.len() as u32);
    for (sym, len) in pairs {
        w.put_u32(sym);
        w.put_u8(len as u8);
    }
    w.put_u32(chunk_offsets.len() as u32);
    for off in chunk_offsets {
        w.put_u64(off);
    }
    w.put_block(&payload);
    Ok(w.into_vec())
}

/// Decompress a Huffman-X stream produced by [`compress_u32`].
pub fn decompress_u32(adapter: &dyn DeviceAdapter, bytes: &[u8]) -> Result<Vec<u32>> {
    let mut r = ByteReader::new(bytes);
    if r.get_u32()? != MAGIC {
        return Err(HpdrError::corrupt("bad Huffman magic"));
    }
    let dict_size = r.get_u32()?;
    let n = r.get_u64()? as usize;
    let chunk = r.get_u64()? as usize;
    let total_bits = r.get_u64()?;
    if chunk == 0 {
        return Err(HpdrError::corrupt("zero chunk size"));
    }
    let num_pairs = r.get_u32()? as usize;
    if num_pairs > dict_size as usize {
        return Err(HpdrError::corrupt("more codes than dictionary entries"));
    }
    let mut pairs = Vec::with_capacity(num_pairs);
    for _ in 0..num_pairs {
        let sym = r.get_u32()?;
        let len = r.get_u8()? as u32;
        pairs.push((sym, len));
    }
    let book = Codebook::from_lengths(dict_size, &pairs)?;
    let num_chunks = r.get_u32()? as usize;
    let expected_chunks = n.div_ceil(chunk);
    if num_chunks != expected_chunks {
        return Err(HpdrError::corrupt(format!(
            "chunk table has {num_chunks} entries, expected {expected_chunks}"
        )));
    }
    let mut chunk_offsets = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        chunk_offsets.push(r.get_u64()?);
    }
    let payload = r.get_block()?;
    r.expect_exhausted()?;
    if total_bits > payload.len() as u64 * 8 {
        return Err(HpdrError::corrupt(
            "payload shorter than declared bit length",
        ));
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Parallel chunk decode via the Locality abstraction, with a
    // lookup-table fast path for short codes. Any codeword error inside a
    // worker is collected and surfaced after the join.
    let table = book.decode_table(12);
    let mut out = vec![0u32; n];
    let errors = std::sync::Mutex::new(Vec::new());
    {
        let out_sh = hpdr_core::SharedSlice::new(&mut out);
        Locality::new(num_chunks).run(adapter, &|c, _| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let mut br = match BitReader::with_bit_limit(payload, total_bits) {
                Ok(b) => b,
                Err(e) => {
                    errors.lock().unwrap().push(e);
                    return;
                }
            };
            if let Err(e) = br.seek(chunk_offsets[c]) {
                errors.lock().unwrap().push(e);
                return;
            }
            for i in lo..hi {
                // Fast path: probe a full-width window in the table.
                let pos = br.bit_pos();
                let width = table.width() as u64;
                let mut sym = None;
                if br.remaining_bits() >= width {
                    if let Ok(window) = br.read_bits(table.width()) {
                        if let Some((s, used)) = table.probe(window) {
                            if br.seek(pos + used as u64).is_ok() {
                                sym = Some(s);
                            }
                        }
                    }
                    if sym.is_none() && br.seek(pos).is_err() {
                        errors.lock().unwrap().push(hpdr_core::HpdrError::corrupt(
                            "bit seek failed during decode",
                        ));
                        return;
                    }
                }
                let decoded = match sym {
                    Some(s) => Ok(s),
                    None => book.decode_one(|| br.read_bit()),
                };
                match decoded {
                    // Safety: chunks write disjoint ranges.
                    Ok(sym) => unsafe { out_sh.write(i, sym) },
                    Err(e) => {
                        errors.lock().unwrap().push(e);
                        return;
                    }
                }
            }
        });
    }
    if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
        return Err(e);
    }
    adapter.charge(KernelClass::Huffman, (n * 4) as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn roundtrip(keys: &[u32], cfg: &HuffmanConfig) {
        let a = CpuParallelAdapter::new(4);
        let compressed = compress_u32(&a, keys, cfg).unwrap();
        let out = decompress_u32(&a, &compressed).unwrap();
        assert_eq!(out, keys);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let keys: Vec<u32> = (0..100_000u32)
            .map(|i| {
                // Geometric-ish skew around 2048 (a quantizer's zero bin).
                let r = i.wrapping_mul(2654435761) >> 16;
                2048 + (r % 64) * if i % 2 == 0 { 1 } else { 0 }
            })
            .collect();
        roundtrip(&keys, &HuffmanConfig::default());
    }

    #[test]
    fn roundtrip_uniform_and_tiny() {
        let cfg = HuffmanConfig {
            dict_size: 257,
            chunk_elems: 100,
        };
        let keys: Vec<u32> = (0..10_000u32).map(|i| i % 257).collect();
        roundtrip(&keys, &cfg);
        roundtrip(&[0], &cfg);
        roundtrip(&[5, 5, 5, 5], &cfg);
        roundtrip(&[], &cfg);
    }

    #[test]
    fn serial_and_parallel_streams_identical() {
        // Portability: the bytes must not depend on the adapter.
        let keys: Vec<u32> = (0..50_000u32).map(|i| (i * 7) % 300).collect();
        let cfg = HuffmanConfig::default();
        let serial = compress_u32(&SerialAdapter::new(), &keys, &cfg).unwrap();
        let parallel = compress_u32(&CpuParallelAdapter::new(8), &keys, &cfg).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cross_adapter_decode() {
        let keys: Vec<u32> = (0..20_000u32).map(|i| (i * 31) % 1000).collect();
        let cfg = HuffmanConfig::default();
        let stream = compress_u32(&CpuParallelAdapter::new(4), &keys, &cfg).unwrap();
        let out = decompress_u32(&SerialAdapter::new(), &stream).unwrap();
        assert_eq!(out, keys);
    }

    #[test]
    fn compresses_skewed_data() {
        let a = SerialAdapter::new();
        let keys = vec![7u32; 100_000]; // maximally skewed
        let stream = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        // 100k symbols at ~1 bit ≈ 12.5 KB plus headers — far below raw.
        assert!(stream.len() < 20_000, "got {}", stream.len());
    }

    #[test]
    fn out_of_dict_symbol_rejected() {
        let a = SerialAdapter::new();
        let cfg = HuffmanConfig {
            dict_size: 16,
            chunk_elems: 8,
        };
        assert!(compress_u32(&a, &[3, 99], &cfg).is_err());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let a = SerialAdapter::new();
        let keys: Vec<u32> = (0..1000u32).map(|i| i % 50).collect();
        let good = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        // Truncations at every length must return Err, never panic.
        for cut in [0, 1, 4, 10, good.len() / 2, good.len() - 1] {
            assert!(decompress_u32(&a, &good[..cut]).is_err(), "cut={cut}");
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decompress_u32(&a, &bad).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let a = SerialAdapter::new();
        let keys = vec![1u32, 2, 3];
        let mut stream = compress_u32(&a, &keys, &HuffmanConfig::default()).unwrap();
        stream.push(0xAB);
        assert!(decompress_u32(&a, &stream).is_err());
    }
}
