//! Two-phase treeless Huffman codebook generation (paper Alg. 2 line 5,
//! following Ostadzadeh et al.'s two-phase parallel algorithm):
//!
//! * **Phase 1** computes optimal code *lengths* directly from the sorted
//!   frequency array (no explicit tree walk at assignment time);
//! * **Phase 2** assigns *canonical* codewords from the lengths alone.
//!
//! Canonical codes make the codebook self-describing from `(symbol,
//! length)` pairs only — the property that keeps HPDR streams portable
//! across architectures (any device can rebuild the identical decoder).

use hpdr_core::{HpdrError, Result};
use hpdr_kernels::radix_sort_by_key;

/// Longest codeword we accept. Depth `L` requires a total input count of
/// at least Fibonacci(L+2), so 64 is unreachable for physical inputs; we
/// enforce it defensively for corrupt streams.
pub const MAX_CODE_LEN: u32 = 64;

/// One symbol's canonical code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Code {
    /// Codeword bits, *bit-reversed* so an LSB-first bit writer emits the
    /// canonical code MSB-first.
    pub bits_rev: u64,
    /// Code length in bits (0 = symbol does not occur).
    pub len: u32,
}

/// A canonical Huffman codebook over symbols `0..dict_size`.
#[derive(Debug, Clone)]
pub struct Codebook {
    dict_size: u32,
    /// Per-symbol canonical codes.
    codes: Vec<Code>,
    /// Decoder tables: symbols sorted by (len, symbol).
    sorted_symbols: Vec<u32>,
    /// count[l] = number of codes of length l (index 0 unused).
    length_count: Vec<u32>,
    /// first_code[l] = canonical value of the first code of length l.
    first_code: Vec<u64>,
    /// sym_base[l] = index into `sorted_symbols` of the first symbol of
    /// length l.
    sym_base: Vec<u32>,
    max_len: u32,
}

fn reverse_bits(v: u64, nbits: u32) -> u64 {
    if nbits == 0 {
        return 0;
    }
    v.reverse_bits() >> (64 - nbits)
}

/// Phase 1: optimal code lengths from frequencies via the two-queue
/// method over the frequency-sorted leaves. O(n log n) in the sort,
/// O(n) in the merge.
#[allow(clippy::explicit_counter_loop)] // `internal_tail` is the arena tail, not a counter
fn code_lengths(freqs: &[(u32, u64)]) -> Vec<(u32, u32)> {
    let n = freqs.len();
    match n {
        0 => return Vec::new(),
        1 => return vec![(freqs[0].0, 1)],
        _ => {}
    }
    // Sort (freq, symbol) ascending; stable tie-break on symbol keeps the
    // codebook deterministic across platforms.
    let mut pairs: Vec<(u64, u32)> = freqs.iter().map(|&(s, f)| (f, s)).collect();
    radix_sort_by_key(&mut pairs);

    // Node arena: leaves 0..n, internal nodes appended after.
    let total_nodes = 2 * n - 1;
    let mut weight = vec![0u64; total_nodes];
    let mut parent = vec![usize::MAX; total_nodes];
    for (i, &(f, _)) in pairs.iter().enumerate() {
        weight[i] = f;
    }
    // Two queues: leaves (by index, already sorted) and internal nodes
    // (created in nondecreasing weight order).
    let mut leaf = 0usize;
    let mut internal_head = n;
    let mut internal_tail = n;
    let pick = |leaf: &mut usize,
                internal_head: &mut usize,
                internal_tail: usize,
                weight: &[u64]|
     -> usize {
        let leaf_ok = *leaf < n;
        let int_ok = *internal_head < internal_tail;
        let take_leaf = match (leaf_ok, int_ok) {
            (true, true) => weight[*leaf] <= weight[*internal_head],
            (true, false) => true,
            (false, true) => false,
            (false, false) => unreachable!("ran out of nodes"),
        };
        if take_leaf {
            *leaf += 1;
            *leaf - 1
        } else {
            *internal_head += 1;
            *internal_head - 1
        }
    };
    for _ in 0..n - 1 {
        let a = pick(&mut leaf, &mut internal_head, internal_tail, &weight);
        let b = pick(&mut leaf, &mut internal_head, internal_tail, &weight);
        let idx = internal_tail;
        internal_tail += 1;
        weight[idx] = weight[a] + weight[b];
        parent[a] = idx;
        parent[b] = idx;
    }
    // Depth of each leaf = code length.
    let mut out = Vec::with_capacity(n);
    for (i, &(_, sym)) in pairs.iter().enumerate() {
        let mut d = 0u32;
        let mut node = i;
        while parent[node] != usize::MAX {
            node = parent[node];
            d += 1;
        }
        out.push((sym, d.max(1)));
    }
    out
}

impl Codebook {
    /// Build a codebook from per-symbol frequencies (`freqs.len()` =
    /// dictionary size). Symbols with zero frequency get no code.
    pub fn from_frequencies(freqs: &[u64]) -> Result<Codebook> {
        let dict_size = freqs.len() as u32;
        // Alg. 2 line 4: filter non-zero frequencies.
        let nonzero: Vec<(u32, u64)> = freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(s, &f)| (s as u32, f))
            .collect();
        let lengths = code_lengths(&nonzero);
        Self::from_lengths_inner(dict_size, &lengths)
    }

    /// Rebuild a codebook from `(symbol, length)` pairs (decoder side).
    pub fn from_lengths(dict_size: u32, lengths: &[(u32, u32)]) -> Result<Codebook> {
        Self::from_lengths_inner(dict_size, lengths)
    }

    fn from_lengths_inner(dict_size: u32, lengths: &[(u32, u32)]) -> Result<Codebook> {
        let max_len = lengths.iter().map(|&(_, l)| l).max().unwrap_or(0);
        if max_len > MAX_CODE_LEN {
            return Err(HpdrError::corrupt(format!(
                "Huffman code length {max_len} exceeds {MAX_CODE_LEN}"
            )));
        }
        let mut codes = vec![Code::default(); dict_size as usize];
        // Phase 2: canonical assignment. Symbols sorted by (length, symbol).
        let mut sorted: Vec<(u32, u32)> = lengths.to_vec();
        sorted.sort_unstable_by_key(|&(sym, len)| (len, sym));
        let mut length_count = vec![0u32; max_len as usize + 1];
        for &(sym, len) in &sorted {
            if len == 0 || len > MAX_CODE_LEN {
                return Err(HpdrError::corrupt("zero or oversized code length"));
            }
            if sym >= dict_size {
                return Err(HpdrError::corrupt(format!(
                    "symbol {sym} outside dictionary of {dict_size}"
                )));
            }
            length_count[len as usize] += 1;
        }
        // Kraft check: sum 2^-l must be <= 1 for decodability (== 1 for a
        // complete code; single-symbol books are incomplete but valid).
        let mut kraft: u128 = 0;
        for (l, &c) in length_count.iter().enumerate().skip(1) {
            kraft += (c as u128) << (MAX_CODE_LEN as usize + 1 - l);
        }
        if kraft > 1u128 << (MAX_CODE_LEN as usize + 1) {
            return Err(HpdrError::corrupt("code lengths violate Kraft inequality"));
        }

        let mut first_code = vec![0u64; max_len as usize + 1];
        let mut sym_base = vec![0u32; max_len as usize + 1];
        let mut code = 0u64;
        let mut base = 0u32;
        for l in 1..=max_len as usize {
            code = (code + length_count[l - 1] as u64) << 1;
            first_code[l] = code;
            sym_base[l] = base;
            base += length_count[l];
            // `code` tracks the first code of length l; advance by the
            // codes of this length for the next iteration's shift.
        }
        // Assign codes in (len, sym) order.
        let mut next = first_code.clone();
        let mut sorted_symbols = Vec::with_capacity(sorted.len());
        for &(sym, len) in &sorted {
            let c = next[len as usize];
            next[len as usize] += 1;
            if len < 64 && c >= (1u64 << len) {
                return Err(HpdrError::corrupt("canonical code overflow"));
            }
            codes[sym as usize] = Code {
                bits_rev: reverse_bits(c, len),
                len,
            };
            sorted_symbols.push(sym);
        }
        Ok(Codebook {
            dict_size,
            codes,
            sorted_symbols,
            length_count,
            first_code,
            sym_base,
            max_len,
        })
    }

    pub fn dict_size(&self) -> u32 {
        self.dict_size
    }

    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// The code for `symbol` (len 0 if the symbol never occurs).
    #[inline]
    pub fn code(&self, symbol: u32) -> Code {
        self.codes[symbol as usize]
    }

    /// Number of distinct coded symbols.
    pub fn num_coded(&self) -> usize {
        self.sorted_symbols.len()
    }

    /// `(symbol, length)` pairs for serialization, in canonical order.
    pub fn length_pairs(&self) -> Vec<(u32, u32)> {
        self.sorted_symbols
            .iter()
            .map(|&s| (s, self.codes[s as usize].len))
            .collect()
    }

    /// Decode one symbol from an MSB-first canonical bit source. `next`
    /// yields successive bits. Returns the symbol.
    #[inline]
    pub fn decode_one(&self, mut next: impl FnMut() -> Result<bool>) -> Result<u32> {
        let mut code: u64 = 0;
        for len in 1..=self.max_len {
            code = (code << 1) | next()? as u64;
            let l = len as usize;
            let count = self.length_count[l] as u64;
            if count > 0 && code >= self.first_code[l] && code < self.first_code[l] + count {
                let idx = self.sym_base[l] as u64 + (code - self.first_code[l]);
                return Ok(self.sorted_symbols[idx as usize]);
            }
        }
        Err(HpdrError::corrupt("invalid Huffman codeword"))
    }

    /// Build an accelerated decode table over `width`-bit prefixes.
    pub fn decode_table(&self, width: u32) -> DecodeTable {
        DecodeTable::new(self, width)
    }

    /// Build the two-level decode table used by the codec hot path.
    pub fn two_level_table(&self, l1_width: u32) -> TwoLevelTable {
        TwoLevelTable::new(self, l1_width)
    }

    /// Decode one symbol from a zero-padded LSB-first bit `window` (as
    /// produced by `BitReader::peek_padded`). Returns `(symbol, bits
    /// consumed)`. This is the canonical first-code scan — O(max_len)
    /// register operations with **no** per-bit stream reads — used for
    /// codes too long for the lookup tables.
    ///
    /// Callers must verify `bits consumed <= remaining stream bits`:
    /// zero padding past the end of the stream can otherwise complete a
    /// truncated codeword.
    #[inline]
    pub fn decode_window(&self, window: u64) -> Result<(u32, u32)> {
        let mut code: u64 = 0;
        for len in 1..=self.max_len {
            code = (code << 1) | ((window >> (len - 1)) & 1);
            let l = len as usize;
            let count = self.length_count[l] as u64;
            if count > 0 && code >= self.first_code[l] && code < self.first_code[l] + count {
                let idx = self.sym_base[l] as u64 + (code - self.first_code[l]);
                return Ok((self.sorted_symbols[idx as usize], len));
            }
        }
        Err(HpdrError::corrupt("invalid Huffman codeword"))
    }

    /// Expected encoded size in bits for the given frequency table.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * self.codes[s].len as u64)
            .sum()
    }
}

/// Lookup-table decoder: a table of `2^width` entries maps every
/// possible `width`-bit window (LSB-first, as read off the stream) to the
/// decoded symbol and its code length. Codes longer than `width` fall
/// back to the bit-by-bit canonical decoder. With the typical skewed
/// quantizer distributions, ≥ 99% of symbols decode in one table probe.
#[derive(Debug, Clone)]
pub struct DecodeTable {
    width: u32,
    /// entry = (symbol, code_len); code_len == 0 marks "fall back".
    entries: Vec<(u32, u8)>,
}

impl DecodeTable {
    fn new(book: &Codebook, width: u32) -> DecodeTable {
        let width = width.clamp(1, 16).min(book.max_len().max(1));
        let mut entries = vec![(0u32, 0u8); 1usize << width];
        for sym in 0..book.dict_size() {
            let code = book.code(sym);
            if code.len == 0 || code.len > width {
                continue;
            }
            // The stream is written LSB-first with the canonical code
            // bit-reversed, so a window's low `len` bits equal bits_rev.
            let step = 1u64 << code.len;
            let mut w = code.bits_rev;
            while w < (1u64 << width) {
                entries[w as usize] = (sym, code.len as u8);
                w += step;
            }
        }
        DecodeTable { width, entries }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    /// Probe the table with a `width`-bit window. Returns
    /// `Some((symbol, bits_consumed))` on a hit.
    #[inline]
    pub fn probe(&self, window: u64) -> Option<(u32, u32)> {
        let (sym, len) = self.entries[(window & ((1u64 << self.width) - 1)) as usize];
        (len != 0).then_some((sym, len as u32))
    }
}

/// Two-level lookup decoder: an L1 table over the first `l1_width` bits
/// resolves every code of length ≤ `l1_width` in one probe; longer codes
/// land in per-prefix L2 subtables sized to the bucket's deepest code
/// (capped at [`TwoLevelTable::L2_CAP`] extra bits). Codes deeper than
/// both levels — or buckets that would blow the total L2 budget — return
/// `None` and are resolved by [`Codebook::decode_window`], which is still
/// a pure register scan over an already-peeked window. No decode path
/// reads the stream bit-by-bit.
#[derive(Debug, Clone)]
pub struct TwoLevelTable {
    l1_width: u32,
    /// `(symbol, total_len)` for direct hits; `total_len == 0` means
    /// "consult the subtable fields".
    l1: Vec<L1Entry>,
    /// Concatenated L2 subtables; entry `(symbol, total_len)`,
    /// `total_len == 0` marks an invalid / escape window.
    l2: Vec<(u32, u8)>,
}

#[derive(Debug, Clone, Copy, Default)]
struct L1Entry {
    sym: u32,
    /// Code length for a direct L1 hit (0 = no direct hit).
    len: u8,
    /// Extra bits indexed by this prefix's subtable (0 = no subtable).
    sub_width: u8,
    /// Offset of the subtable in `l2`.
    sub: u32,
}

impl TwoLevelTable {
    /// Maximum extra bits resolved by one L2 subtable.
    pub const L2_CAP: u32 = 12;
    /// Total L2 entry budget; prefixes beyond it escape to the canonical
    /// window scan (pathological books only).
    const L2_BUDGET: usize = 1 << 18;

    fn new(book: &Codebook, l1_width: u32) -> TwoLevelTable {
        let l1_width = l1_width.clamp(1, 16).min(book.max_len().max(1));
        let mut l1 = vec![L1Entry::default(); 1usize << l1_width];
        // Short codes: strided direct fill (stream is LSB-first with
        // bit-reversed canonical codes, so a window's low `len` bits
        // equal `bits_rev`).
        for sym in 0..book.dict_size() {
            let code = book.code(sym);
            if code.len == 0 || code.len > l1_width {
                continue;
            }
            let step = 1u64 << code.len;
            let mut w = code.bits_rev;
            while w < (1u64 << l1_width) {
                l1[w as usize] = L1Entry {
                    sym,
                    len: code.len as u8,
                    sub_width: 0,
                    sub: 0,
                };
                w += step;
            }
        }
        // Long codes: bucket by their first `l1_width` stream bits.
        let mut buckets: std::collections::BTreeMap<u64, Vec<(u32, Code)>> =
            std::collections::BTreeMap::new();
        for sym in 0..book.dict_size() {
            let code = book.code(sym);
            if code.len > l1_width {
                let prefix = code.bits_rev & ((1u64 << l1_width) - 1);
                buckets.entry(prefix).or_default().push((sym, code));
            }
        }
        let mut l2: Vec<(u32, u8)> = Vec::new();
        for (prefix, codes) in buckets {
            let deepest = codes.iter().map(|&(_, c)| c.len).max().unwrap_or(0);
            let sub_width = deepest - l1_width;
            if sub_width > Self::L2_CAP || l2.len() + (1usize << sub_width) > Self::L2_BUDGET {
                continue; // escape to Codebook::decode_window
            }
            let base = l2.len();
            l2.resize(base + (1usize << sub_width), (0, 0));
            for (sym, code) in codes {
                let rem = code.len - l1_width;
                let rest = code.bits_rev >> l1_width;
                let step = 1u64 << rem;
                let mut w = rest;
                while w < (1u64 << sub_width) {
                    l2[base + w as usize] = (sym, code.len as u8);
                    w += step;
                }
            }
            l1[prefix as usize].sub_width = sub_width as u8;
            l1[prefix as usize].sub = base as u32;
        }
        TwoLevelTable { l1_width, l1, l2 }
    }

    pub fn l1_width(&self) -> u32 {
        self.l1_width
    }

    /// Decode one symbol from a zero-padded LSB-first window. Returns
    /// `Some((symbol, bits_consumed))` on a table hit; `None` sends the
    /// caller to [`Codebook::decode_window`]. As with `decode_window`,
    /// the caller must bound consumption by the stream's remaining bits.
    #[inline]
    pub fn decode(&self, window: u64) -> Option<(u32, u32)> {
        let e = self.l1[(window & ((1u64 << self.l1_width) - 1)) as usize];
        if e.len != 0 {
            return Some((e.sym, e.len as u32));
        }
        if e.sub_width != 0 {
            let idx = (window >> self.l1_width) & ((1u64 << e.sub_width) - 1);
            let (sym, len) = self.l2[e.sub as usize + idx as usize];
            if len != 0 {
                return Some((sym, len as u32));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book(freqs: &[u64]) -> Codebook {
        Codebook::from_frequencies(freqs).unwrap()
    }

    #[test]
    fn lengths_are_optimal_for_classic_example() {
        // Freqs 1,1,2,3,5 — known optimal lengths 3,3,3,2,1 (or equivalent).
        let b = book(&[1, 1, 2, 3, 5]);
        let total: u64 = b.encoded_bits(&[1, 1, 2, 3, 5]);
        // Optimal weighted length: 1*3+1*3+2*3+3*2+5*1 = 23? Check against
        // entropy-optimal Huffman cost computed by hand: merging
        // (1,1)->2, (2,2)->4, (3,4)->7, (5,7)->12: cost = 2+4+7+12 = 25.
        assert_eq!(total, 25);
    }

    #[test]
    fn kraft_equality_for_complete_codes() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let b = book(&freqs);
        let mut kraft = 0.0f64;
        for s in 0..64u32 {
            let c = b.code(s);
            assert!(c.len > 0);
            kraft += 2f64.powi(-(c.len as i32));
        }
        assert!((kraft - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_frequent_symbols_get_shorter_codes() {
        let b = book(&[1000, 1, 500, 1, 250]);
        assert!(b.code(0).len <= b.code(2).len);
        assert!(b.code(2).len <= b.code(4).len);
        assert!(b.code(4).len <= b.code(1).len);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let b = book(&[0, 42, 0]);
        assert_eq!(b.code(1).len, 1);
        assert_eq!(b.code(0).len, 0);
        assert_eq!(b.num_coded(), 1);
    }

    #[test]
    fn empty_frequencies_build_empty_book() {
        let b = book(&[0, 0, 0]);
        assert_eq!(b.num_coded(), 0);
        assert_eq!(b.max_len(), 0);
    }

    #[test]
    fn codes_are_prefix_free() {
        let freqs: Vec<u64> = (0..100).map(|i| (i % 7) + 1).collect();
        let b = book(&freqs);
        let canon = |s: u32| {
            let c = b.code(s);
            (reverse_bits(c.bits_rev, c.len), c.len)
        };
        for a in 0..100u32 {
            for bsym in 0..100u32 {
                if a == bsym {
                    continue;
                }
                let (ca, la) = canon(a);
                let (cb, lb) = canon(bsym);
                if la == 0 || lb == 0 {
                    continue;
                }
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "code {a} prefixes {bsym}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_through_lengths() {
        let freqs: Vec<u64> = (0..50)
            .map(|i| if i % 3 == 0 { 0 } else { i + 1 })
            .collect();
        let b = book(&freqs);
        let b2 = Codebook::from_lengths(50, &b.length_pairs()).unwrap();
        for s in 0..50u32 {
            assert_eq!(b.code(s), b2.code(s), "symbol {s}");
        }
    }

    #[test]
    fn decode_one_inverts_encode() {
        use hpdr_kernels::{BitReader, BitWriter};
        let freqs = [7u64, 1, 3, 12, 5, 0, 2];
        let b = book(&freqs);
        let symbols = [3u32, 0, 4, 2, 3, 6, 1, 3, 0, 0, 4];
        let mut w = BitWriter::new();
        for &s in &symbols {
            let c = b.code(s);
            w.write_bits(c.bits_rev, c.len);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            let got = b.decode_one(|| r.read_bit()).unwrap();
            assert_eq!(got, s);
        }
    }

    #[test]
    fn bad_lengths_rejected() {
        // Kraft violation: three codes of length 1.
        assert!(Codebook::from_lengths(3, &[(0, 1), (1, 1), (2, 1)]).is_err());
        // Symbol out of dictionary.
        assert!(Codebook::from_lengths(2, &[(5, 1)]).is_err());
        // Zero length.
        assert!(Codebook::from_lengths(2, &[(0, 0)]).is_err());
        // Oversized length.
        assert!(Codebook::from_lengths(2, &[(0, 99)]).is_err());
    }

    #[test]
    fn decode_table_agrees_with_bitwise_decoder() {
        use hpdr_kernels::{BitReader, BitWriter};
        let freqs: Vec<u64> = (0..200u64).map(|i| (i % 13) * (i % 7) + 1).collect();
        let b = book(&freqs);
        let table = b.decode_table(10);
        let symbols: Vec<u32> = (0..5000u32).map(|i| (i * 31) % 200).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            let c = b.code(s);
            w.write_bits(c.bits_rev, c.len);
        }
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        for &expect in &symbols {
            // Try the table with a peeked window first.
            let pos = r.bit_pos();
            let avail = (r.remaining_bits()).min(table.width() as u64) as u32;
            let window = r.read_bits(avail).unwrap();
            r.seek(pos).unwrap();
            let got = match table.probe(window) {
                Some((sym, used)) if used as u64 <= total - pos => {
                    r.seek(pos + used as u64).unwrap();
                    sym
                }
                _ => b.decode_one(|| r.read_bit()).unwrap(),
            };
            assert_eq!(got, expect);
        }
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn decode_table_flags_long_codes_as_fallback() {
        // Highly skewed book: some codes exceed a narrow table width.
        let freqs: Vec<u64> = (0..32u64).map(|i| 1u64 << i).collect();
        let b = book(&freqs);
        let table = b.decode_table(4);
        assert_eq!(table.width(), 4);
        let mut hits = 0;
        for w in 0..16u64 {
            if table.probe(w).is_some() {
                hits += 1;
            }
        }
        assert!(hits > 0, "short codes must populate the table");
        // The most frequent symbol (shortest code) hits on many windows.
        let c = b.code(31);
        assert!(c.len <= 2);
    }

    #[test]
    fn two_level_table_agrees_with_bitwise_decoder() {
        use hpdr_kernels::{BitReader, BitWriter};
        // Mixed-length book: short hot codes plus a deep skewed tail so
        // both the L1 direct path and the L2 subtable path are exercised.
        let freqs: Vec<u64> = (0..300u64).map(|i| 1 + (1u64 << (i % 20))).collect();
        let b = book(&freqs);
        let table = b.two_level_table(8);
        assert!(table.l1_width() <= 8);
        let symbols: Vec<u32> = (0..8000u32).map(|i| (i * 37) % 300).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            let c = b.code(s);
            w.write_bits(c.bits_rev, c.len);
        }
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        for &expect in &symbols {
            let pos = r.bit_pos();
            let window = r.peek_padded();
            let (sym, used) = match table.decode(window) {
                Some(hit) => hit,
                None => b.decode_window(window).unwrap(),
            };
            assert!(used as u64 <= total - pos);
            r.seek(pos + used as u64).unwrap();
            assert_eq!(sym, expect);
        }
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn two_level_escape_falls_back_to_window_scan() {
        // Fibonacci-like frequencies force code lengths past
        // l1_width + L2_CAP, so the deepest codes must escape.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b_) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b_;
            a = b_;
            b_ = next;
        }
        let b = book(&freqs);
        assert!(b.max_len() > 1 + TwoLevelTable::L2_CAP);
        let table = b.two_level_table(1);
        // Deepest symbol: its window must miss the table and resolve via
        // the canonical window scan.
        let deepest = (0..40u32).max_by_key(|&s| b.code(s).len).unwrap();
        let c = b.code(deepest);
        let window = c.bits_rev; // exact code bits, zero-padded above
        match table.decode(window) {
            Some((sym, used)) => {
                // A miss may still land on a shorter sibling prefix-wise;
                // the full scan must agree on the exact window.
                let (wsym, wused) = b.decode_window(window).unwrap();
                assert_eq!((sym, used), (wsym, wused));
            }
            None => {
                let (sym, used) = b.decode_window(window).unwrap();
                assert_eq!(sym, deepest);
                assert_eq!(used, c.len);
            }
        }
    }

    #[test]
    fn decode_window_agrees_with_decode_one() {
        use hpdr_kernels::{BitReader, BitWriter};
        let freqs: Vec<u64> = (0..64u64).map(|i| i * i + 1).collect();
        let b = book(&freqs);
        let symbols: Vec<u32> = (0..2000u32).map(|i| (i * 11) % 64).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            let c = b.code(s);
            w.write_bits(c.bits_rev, c.len);
        }
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        for &expect in &symbols {
            let pos = r.bit_pos();
            let (sym, used) = b.decode_window(r.peek_padded()).unwrap();
            assert_eq!(sym, expect);
            r.seek(pos + used as u64).unwrap();
        }
    }

    #[test]
    fn reverse_bits_helper() {
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0, 0), 0);
        assert_eq!(reverse_bits(u64::MAX, 64), u64::MAX);
    }
}
