//! [`Reducer`] implementation for Huffman-X as a standalone lossless
//! byte compressor (dictionary = the 256 byte values).

use crate::codec::{compress_bytes, decompress_bytes, HuffmanConfig};
use hpdr_core::{
    ArrayMeta, ByteReader, ByteWriter, DType, DeviceAdapter, HpdrError, KernelClass, Reducer,
    Result, Shape,
};

const MAGIC: u32 = 0x4855_4658; // "HUFX"

/// Huffman-X over raw bytes (paper: "Huffman-X provides lossless
/// compression").
#[derive(Debug, Clone, Copy)]
pub struct ByteHuffmanReducer {
    pub chunk_elems: usize,
}

impl Default for ByteHuffmanReducer {
    fn default() -> Self {
        ByteHuffmanReducer {
            chunk_elems: 1 << 16,
        }
    }
}

impl Reducer for ByteHuffmanReducer {
    fn name(&self) -> &'static str {
        "huffman-x"
    }

    fn kernel_class(&self) -> KernelClass {
        KernelClass::Huffman
    }

    fn is_lossless(&self) -> bool {
        true
    }

    fn compress(
        &self,
        adapter: &dyn DeviceAdapter,
        bytes: &[u8],
        meta: &ArrayMeta,
    ) -> Result<Vec<u8>> {
        if bytes.len() != meta.num_bytes() {
            return Err(HpdrError::invalid("byte length does not match metadata"));
        }
        let cfg = HuffmanConfig {
            dict_size: 256,
            chunk_elems: self.chunk_elems,
        };
        // Byte-keyed pipeline: same stream as the u32 path over widened
        // keys, without materializing the 4×-larger key vector.
        let encoded = compress_bytes(adapter, bytes, &cfg)?;
        let mut w = ByteWriter::with_capacity(encoded.len() + 64);
        w.put_u32(MAGIC);
        w.put_u8(meta.dtype.tag());
        w.put_u8(meta.shape.ndims() as u8);
        for &d in meta.shape.dims() {
            w.put_u64(d as u64);
        }
        w.put_block(&encoded);
        Ok(w.into_vec())
    }

    fn decompress(
        &self,
        adapter: &dyn DeviceAdapter,
        stream: &[u8],
    ) -> Result<(Vec<u8>, ArrayMeta)> {
        let mut r = ByteReader::new(stream);
        if r.get_u32()? != MAGIC {
            return Err(HpdrError::corrupt("bad Huffman-X container magic"));
        }
        let dtype =
            DType::from_tag(r.get_u8()?).ok_or_else(|| HpdrError::corrupt("unknown dtype tag"))?;
        let nd = r.get_u8()? as usize;
        if !(1..=4).contains(&nd) {
            return Err(HpdrError::corrupt("bad rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        let shape = Shape::try_new(&dims)?;
        let encoded = r.get_block()?;
        r.expect_exhausted()?;
        let out = decompress_bytes(adapter, encoded)?;
        let meta = ArrayMeta::new(dtype, shape);
        if out.len() != meta.num_bytes() {
            return Err(HpdrError::corrupt("decoded length mismatch"));
        }
        Ok((out, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::SerialAdapter;

    #[test]
    fn lossless_byte_roundtrip() {
        let adapter = SerialAdapter::new();
        let data: Vec<f32> = (0..500).map(|i| ((i / 7) as f32) * 0.5).collect();
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let meta = ArrayMeta::new(DType::F32, Shape::new(&[500]));
        let r = ByteHuffmanReducer::default();
        assert!(r.is_lossless());
        let stream = r.compress(&adapter, &bytes, &meta).unwrap();
        let (out, meta2) = r.decompress(&adapter, &stream).unwrap();
        assert_eq!(out, bytes);
        assert_eq!(meta2, meta);
    }

    #[test]
    fn repetitive_bytes_compress() {
        let adapter = SerialAdapter::new();
        let bytes = vec![42u8; 40_000];
        let meta = ArrayMeta::new(DType::F32, Shape::new(&[10_000]));
        let r = ByteHuffmanReducer::default();
        let stream = r.compress(&adapter, &bytes, &meta).unwrap();
        assert!(stream.len() < bytes.len() / 4);
    }
}
