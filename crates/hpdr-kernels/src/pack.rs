//! Parallel bit packing ("condense" / serialization stage, paper Fig. 6).
//!
//! Every item owns a variable-length code; an exclusive scan of the code
//! lengths yields each item's destination bit offset; all items then write
//! concurrently. Boundary words are shared between neighbouring items, so
//! writes use atomic OR — the standard GPU serialization scheme.

use hpdr_core::DeviceAdapter;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pack `codes[i] = (bits, nbits)` at bit offsets `offsets[i]`
/// (`offsets.len() == codes.len() + 1`, from an exclusive scan of the
/// lengths). Returns the packed little-endian byte stream of
/// `offsets.last()` bits.
pub fn pack_bits(adapter: &dyn DeviceAdapter, codes: &[(u64, u32)], offsets: &[u64]) -> Vec<u8> {
    assert_eq!(
        offsets.len(),
        codes.len() + 1,
        "offsets must be scan(lengths)"
    );
    let total_bits = *offsets.last().unwrap();
    let nwords = (total_bits as usize).div_ceil(64);
    let words: Vec<AtomicU64> = (0..nwords).map(|_| AtomicU64::new(0)).collect();

    adapter.dem(codes.len(), &|i| {
        let (value, nbits) = codes[i];
        if nbits == 0 {
            return;
        }
        debug_assert!(nbits <= 64);
        debug_assert_eq!(offsets[i] + nbits as u64, offsets[i + 1]);
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        let word = (offsets[i] / 64) as usize;
        let off = (offsets[i] % 64) as u32;
        words[word].fetch_or(value << off, Ordering::Relaxed);
        if off + nbits > 64 {
            words[word + 1].fetch_or(value >> (64 - off), Ordering::Relaxed);
        }
    });

    let nbytes = (total_bits as usize).div_ceil(8);
    let mut out = Vec::with_capacity(nbytes);
    for w in &words {
        out.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
    }
    out.truncate(nbytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{BitReader, BitWriter};
    use crate::scan::exclusive_scan_serial;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn offsets_of(codes: &[(u64, u32)]) -> Vec<u64> {
        exclusive_scan_serial(&codes.iter().map(|&(_, n)| n as u64).collect::<Vec<_>>())
    }

    fn serial_reference(codes: &[(u64, u32)]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &(v, n) in codes {
            w.write_bits(v, n);
        }
        w.into_bytes()
    }

    #[test]
    fn matches_serial_bitwriter() {
        let adapter = CpuParallelAdapter::new(4);
        let codes: Vec<(u64, u32)> = (0..10_000u64)
            .map(|i| {
                let nbits = (i % 33 + 1) as u32;
                (i.wrapping_mul(0x9E3779B97F4A7C15), nbits)
            })
            .collect();
        let offsets = offsets_of(&codes);
        assert_eq!(
            pack_bits(&adapter, &codes, &offsets),
            serial_reference(&codes)
        );
    }

    #[test]
    fn zero_length_codes_allowed() {
        let adapter = SerialAdapter::new();
        let codes = vec![(0b1u64, 1u32), (0, 0), (0b11, 2)];
        let offsets = offsets_of(&codes);
        let packed = pack_bits(&adapter, &codes, &offsets);
        let mut r = BitReader::new(&packed);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn empty_input() {
        let adapter = SerialAdapter::new();
        assert!(pack_bits(&adapter, &[], &[0]).is_empty());
    }

    #[test]
    fn full_width_codes() {
        let adapter = CpuParallelAdapter::new(2);
        let codes = vec![(u64::MAX, 64u32), (0x1234_5678_9ABC_DEF0, 64), (1, 1)];
        let offsets = offsets_of(&codes);
        assert_eq!(
            pack_bits(&adapter, &codes, &offsets),
            serial_reference(&codes)
        );
    }

    #[test]
    #[should_panic(expected = "offsets must be scan")]
    fn mismatched_offsets_panics() {
        let adapter = SerialAdapter::new();
        pack_bits(&adapter, &[(1, 1)], &[0]);
    }
}
