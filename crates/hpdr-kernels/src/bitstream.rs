//! Word-based bit streams.
//!
//! Bits are packed LSB-first into little-endian `u64` words, so streams
//! are byte-portable across architectures. Used by the Huffman serializer
//! and the ZFP bit-plane codec.

use hpdr_core::{HpdrError, Result};

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    words: Vec<u64>,
    /// Total number of bits written.
    bitlen: u64,
}

impl BitWriter {
    pub fn new() -> BitWriter {
        BitWriter {
            words: Vec::new(),
            bitlen: 0,
        }
    }

    pub fn with_bit_capacity(bits: usize) -> BitWriter {
        BitWriter {
            words: Vec::with_capacity(bits.div_ceil(64)),
            bitlen: 0,
        }
    }

    /// Append the low `nbits` bits of `value` (LSB first). `nbits <= 64`.
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return;
        }
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        let word = (self.bitlen / 64) as usize;
        let off = (self.bitlen % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << off;
        let spill = off + nbits;
        if spill > 64 {
            self.words.push(value >> (64 - off));
        }
        self.bitlen += nbits as u64;
    }

    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    pub fn bit_len(&self) -> u64 {
        self.bitlen
    }

    /// Bytes needed to hold the written bits (⌈bits/8⌉).
    pub fn byte_len(&self) -> usize {
        (self.bitlen as usize).div_ceil(8)
    }

    /// Reset to empty, keeping the allocated word buffer for reuse —
    /// block-batched encoders call this between blocks instead of
    /// constructing a fresh writer per block.
    pub fn clear(&mut self) {
        self.words.clear();
        self.bitlen = 0;
    }

    /// Serialize to bytes (little-endian words, trimmed to ⌈bits/8⌉).
    pub fn into_bytes(self) -> Vec<u8> {
        let nbytes = self.byte_len();
        let mut out = Vec::with_capacity(nbytes);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(nbytes);
        out
    }

    /// Copy the written bits into `dst` (which must hold at least
    /// [`BitWriter::byte_len`] bytes) without consuming the writer.
    /// Returns the number of bytes copied.
    pub fn copy_bytes_to(&self, dst: &mut [u8]) -> usize {
        let nbytes = self.byte_len();
        debug_assert!(dst.len() >= nbytes);
        let mut written = 0usize;
        for w in &self.words {
            if written >= nbytes {
                break;
            }
            let bytes = w.to_le_bytes();
            let take = (nbytes - written).min(8);
            dst[written..written + take].copy_from_slice(&bytes[..take]);
            written += take;
        }
        written
    }

    /// The underlying words (padded with zero bits at the tail).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Bounds-checked bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Current bit position.
    pos: u64,
    /// Total bits available.
    limit: u64,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: 0,
            limit: bytes.len() as u64 * 8,
        }
    }

    /// Restrict the stream to the first `bits` bits.
    pub fn with_bit_limit(bytes: &'a [u8], bits: u64) -> Result<BitReader<'a>> {
        if bits > bytes.len() as u64 * 8 {
            return Err(HpdrError::corrupt(format!(
                "bit limit {bits} exceeds buffer of {} bits",
                bytes.len() * 8
            )));
        }
        Ok(BitReader {
            bytes,
            pos: 0,
            limit: bits,
        })
    }

    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    pub fn remaining_bits(&self) -> u64 {
        self.limit - self.pos
    }

    /// Jump to an absolute bit offset.
    pub fn seek(&mut self, bitpos: u64) -> Result<()> {
        if bitpos > self.limit {
            return Err(HpdrError::corrupt("bit seek past end of stream"));
        }
        self.pos = bitpos;
        Ok(())
    }

    #[inline]
    fn byte(&self, i: u64) -> u64 {
        // In-bounds by construction of the callers.
        self.bytes[i as usize] as u64
    }

    /// Read `nbits` bits (LSB first). `nbits <= 64`.
    pub fn read_bits(&mut self, nbits: u32) -> Result<u64> {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return Ok(0);
        }
        if self.pos + nbits as u64 > self.limit {
            return Err(HpdrError::corrupt(format!(
                "bit stream underflow: need {nbits} bits at {} of {}",
                self.pos, self.limit
            )));
        }
        let mut out: u64 = 0;
        let mut got: u32 = 0;
        let mut pos = self.pos;
        while got < nbits {
            let byte_idx = pos / 8;
            let bit_off = (pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(nbits - got); // take <= 8
            let chunk = (self.byte(byte_idx) >> bit_off) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            pos += take as u64;
        }
        self.pos = pos;
        Ok(out)
    }

    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Peek up to 64 bits at the current position without consuming them.
    /// Bits past the stream limit read as zero — callers that act on the
    /// window must bound their consumption by [`BitReader::remaining_bits`].
    /// Table-driven Huffman decoders use this to grab a full decode window
    /// in one unaligned load instead of per-bit reads.
    #[inline]
    pub fn peek_padded(&self) -> u64 {
        let avail = self.limit - self.pos;
        if avail == 0 {
            return 0;
        }
        let byte0 = (self.pos / 8) as usize;
        let off = (self.pos % 8) as u32;
        let window = if byte0 + 9 <= self.bytes.len() {
            // Fast path: unaligned 8-byte little-endian load + spill byte.
            let lo = u64::from_le_bytes(self.bytes[byte0..byte0 + 8].try_into().unwrap());
            let mut w = lo >> off;
            if off > 0 {
                w |= (self.bytes[byte0 + 8] as u64) << (64 - off);
            }
            w
        } else {
            // Tail path: gather what remains into a zero-padded buffer.
            let mut buf = [0u8; 9];
            let take = self.bytes.len() - byte0;
            buf[..take].copy_from_slice(&self.bytes[byte0..]);
            let lo = u64::from_le_bytes(buf[..8].try_into().unwrap());
            let mut w = lo >> off;
            if off > 0 {
                w |= (buf[8] as u64) << (64 - off);
            }
            w
        };
        // Zero any bits beyond the declared limit so padding can never
        // masquerade as valid in-stream bits.
        if avail < 64 {
            window & ((1u64 << avail) - 1)
        } else {
            window
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF_FFFF_FFFF_FFFF, 64);
        w.write_bits(0, 0);
        w.write_bit(true);
        w.write_bits(0x1234_5678, 31);
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(31).unwrap(), 0x1234_5678);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn masks_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits kept
        w.write_bits(0, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x0F]);
    }

    #[test]
    fn underflow_is_error() {
        let bytes = [0xAAu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xAA);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn bit_limit_enforced() {
        let bytes = [0xFFu8, 0xFF];
        let mut r = BitReader::with_bit_limit(&bytes, 10).unwrap();
        assert_eq!(r.read_bits(10).unwrap(), 0x3FF);
        assert!(r.read_bit().is_err());
        assert!(BitReader::with_bit_limit(&bytes, 17).is_err());
    }

    #[test]
    fn seek_and_reread() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.seek(16).unwrap();
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        r.seek(0).unwrap();
        assert_eq!(r.read_bits(16).unwrap(), 0xBEEF);
        assert!(r.seek(33).is_err());
    }

    #[test]
    fn word_boundary_crossing() {
        let mut w = BitWriter::new();
        w.write_bits(0x7, 3);
        w.write_bits(0xABCD_EF01_2345_6789, 64); // crosses a word boundary
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        assert_eq!(r.read_bits(3).unwrap(), 0x7);
        assert_eq!(r.read_bits(64).unwrap(), 0xABCD_EF01_2345_6789);
    }

    #[test]
    fn peek_padded_matches_read_bits() {
        let mut w = BitWriter::new();
        for i in 0..40u64 {
            w.write_bits(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), 37);
        }
        let total = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::with_bit_limit(&bytes, total).unwrap();
        // At every position the peeked window's low bits must equal an
        // actual read of min(64, remaining) bits.
        for pos in (0..total).step_by(13) {
            r.seek(pos).unwrap();
            let window = r.peek_padded();
            let take = (total - pos).min(64) as u32;
            let read = r.read_bits(take).unwrap();
            let masked = if take == 64 {
                window
            } else {
                window & ((1u64 << take) - 1)
            };
            assert_eq!(masked, read, "pos {pos}");
            // Bits beyond the limit are zero.
            if take < 64 {
                assert_eq!(window >> take, 0, "padding leaked at pos {pos}");
            }
        }
        // At the limit the window is all padding.
        r.seek(total).unwrap();
        assert_eq!(r.peek_padded(), 0);
    }

    #[test]
    fn clear_keeps_buffer_reusable() {
        let mut w = BitWriter::with_bit_capacity(128);
        w.write_bits(0xABCD, 16);
        assert_eq!(w.byte_len(), 2);
        w.clear();
        assert_eq!(w.bit_len(), 0);
        assert_eq!(w.byte_len(), 0);
        w.write_bits(0x12, 8);
        let mut dst = [0u8; 4];
        assert_eq!(w.copy_bytes_to(&mut dst), 1);
        assert_eq!(dst[0], 0x12);
        assert_eq!(w.into_bytes(), vec![0x12]);
    }

    #[test]
    fn copy_bytes_to_equals_into_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF_CAFE, 48);
        w.write_bits(0x3, 3);
        let mut dst = vec![0u8; w.byte_len()];
        let n = w.copy_bytes_to(&mut dst);
        assert_eq!(n, w.byte_len());
        assert_eq!(dst, w.into_bytes());
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.read_bit().is_err());
    }
}
