//! Prefix scans (exclusive / inclusive), serial and device-parallel.
//!
//! Parallel serialization in compression pipelines needs scans to turn
//! per-item bit lengths into write offsets (paper §IV-B). The parallel
//! variant is the classic three-phase chunk scan lowered onto DEM stages.

use hpdr_core::{DeviceAdapter, SharedSlice};

/// Serial exclusive prefix sum. Returns a vector of `input.len() + 1`
/// entries; the last entry is the total.
pub fn exclusive_scan_serial(input: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(input.len() + 1);
    let mut acc = 0u64;
    out.push(0);
    for &v in input {
        acc += v;
        out.push(acc);
    }
    out
}

/// Device-parallel exclusive prefix sum with the same output convention
/// as [`exclusive_scan_serial`].
#[allow(clippy::needless_range_loop)] // indexed writes into the shared slice
pub fn exclusive_scan(adapter: &dyn DeviceAdapter, input: &[u64]) -> Vec<u64> {
    let n = input.len();
    if n == 0 {
        return vec![0];
    }
    // Chunk adaptively: aim for a few chunks per hardware thread so the
    // dynamic scheduler can balance, but keep chunks large enough
    // (≥ 2^12 elements) that the two DEM passes stay bandwidth-bound
    // rather than dispatch-bound. The chunk size only partitions work —
    // the scanned values are identical for any chunking.
    let threads = adapter.info().threads.max(1);
    let chunk = n.div_ceil(threads * 4).next_power_of_two().max(1 << 12);
    let chunks = n.div_ceil(chunk);
    if chunks <= 1 {
        return exclusive_scan_serial(input);
    }

    // Phase 1 (DEM): per-chunk sums.
    let mut sums = vec![0u64; chunks];
    {
        let sums_sh = SharedSlice::new(&mut sums);
        adapter.dem(chunks, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let s: u64 = input[lo..hi].iter().sum();
            // Safety: each chunk id writes only its own slot.
            unsafe { sums_sh.write(c, s) };
        });
    }

    // Phase 2 (host): scan of chunk sums (tiny).
    let offsets = exclusive_scan_serial(&sums);

    // Phase 3 (DEM): per-chunk local scan + offset.
    let mut out = vec![0u64; n + 1];
    {
        let out_sh = SharedSlice::new(&mut out);
        adapter.dem(chunks, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let mut acc = offsets[c];
            for i in lo..hi {
                // Safety: chunks write disjoint ranges [lo, hi).
                unsafe { out_sh.write(i, acc) };
                acc += input[i];
            }
            if hi == n {
                // SAFETY: only the final chunk writes the tail slot.
                unsafe { out_sh.write(n, acc) };
            }
        });
    }
    out
}

/// Serial inclusive prefix sum (same length as input).
pub fn inclusive_scan_serial(input: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0u64;
    for &v in input {
        acc += v;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    #[test]
    fn serial_exclusive_basics() {
        assert_eq!(exclusive_scan_serial(&[]), vec![0]);
        assert_eq!(exclusive_scan_serial(&[5]), vec![0, 5]);
        assert_eq!(exclusive_scan_serial(&[1, 2, 3]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn serial_inclusive_basics() {
        assert_eq!(inclusive_scan_serial(&[1, 2, 3]), vec![1, 3, 6]);
        assert!(inclusive_scan_serial(&[]).is_empty());
    }

    #[test]
    fn parallel_matches_serial_large() {
        let adapter = CpuParallelAdapter::new(4);
        let input: Vec<u64> = (0..100_000u64).map(|i| (i * 31 + 7) % 97).collect();
        assert_eq!(
            exclusive_scan(&adapter, &input),
            exclusive_scan_serial(&input)
        );
    }

    #[test]
    fn parallel_matches_serial_small_and_edges() {
        let adapter = SerialAdapter::new();
        for n in [0usize, 1, 2, (1 << 14) - 1, 1 << 14, (1 << 14) + 1] {
            let input: Vec<u64> = (0..n as u64).collect();
            assert_eq!(
                exclusive_scan(&adapter, &input),
                exclusive_scan_serial(&input),
                "n={n}"
            );
        }
    }

    #[test]
    fn total_is_last_entry() {
        let adapter = CpuParallelAdapter::new(3);
        let input = vec![7u64; 50_000];
        let scan = exclusive_scan(&adapter, &input);
        assert_eq!(*scan.last().unwrap(), 350_000);
    }
}
