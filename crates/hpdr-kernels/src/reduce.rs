//! Device-parallel reductions (min/max/sum) over float slices.

use hpdr_core::{DeviceAdapter, Float, SharedSlice};

/// Per-chunk partial results combined on the host.
fn chunked_reduce<T: Float, R: Copy + Send + Sync>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    identity: R,
    local: impl Fn(&[T]) -> R + Sync,
    combine: impl Fn(R, R) -> R,
) -> R {
    let n = data.len();
    if n == 0 {
        return identity;
    }
    let chunks = adapter.info().threads.clamp(1, 64);
    let chunk = n.div_ceil(chunks);
    let mut partial = vec![identity; chunks];
    {
        let partial_sh = SharedSlice::new(&mut partial);
        adapter.dem(chunks, &|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            if lo < hi {
                // Safety: each chunk id writes only its own slot.
                unsafe { partial_sh.write(c, local(&data[lo..hi])) };
            }
        });
    }
    partial.into_iter().fold(identity, combine)
}

/// Minimum and maximum of a slice via the width-specific SIMD kernel.
/// Returns `(NaN, NaN)` if any element is NaN (infinities propagate), so
/// finiteness of the pair doubles as the input finiteness check; `(0, 0)`
/// if empty.
pub fn min_max<T: Float>(adapter: &dyn DeviceAdapter, data: &[T]) -> (T, T) {
    if data.is_empty() {
        return (T::ZERO, T::ZERO);
    }
    let identity = (T::from_f64(f64::INFINITY), T::from_f64(f64::NEG_INFINITY));
    chunked_reduce(
        adapter,
        data,
        identity,
        |chunk| {
            let k = crate::simd::kernels();
            if let Some(v) = T::as_f32_slice(chunk) {
                let (mn, mx) = (k.min_max_f32)(v);
                (T::from_f64(mn as f64), T::from_f64(mx as f64))
            } else if let Some(v) = T::as_f64_slice(chunk) {
                let (mn, mx) = (k.min_max_f64)(v);
                (T::from_f64(mn), T::from_f64(mx))
            } else {
                let mut mn = identity.0;
                let mut mx = identity.1;
                let mut nan = false;
                for &v in chunk {
                    nan |= v.partial_cmp(&v).is_none();
                    mn = if v < mn { v } else { mn };
                    mx = if v > mx { v } else { mx };
                }
                if nan {
                    (T::from_f64(f64::NAN), T::from_f64(f64::NAN))
                } else {
                    (mn, mx)
                }
            }
        },
        // NaN poison from any chunk must survive the combine, so the
        // comparison keeps the accumulator (first arg) on unordered.
        |(amn, amx), (bmn, bmx)| {
            if bmn.partial_cmp(&bmn).is_none() {
                (bmn, bmx)
            } else {
                (
                    if bmn < amn { bmn } else { amn },
                    if bmx > amx { bmx } else { amx },
                )
            }
        },
    )
}

/// Maximum absolute value.
pub fn max_abs<T: Float>(adapter: &dyn DeviceAdapter, data: &[T]) -> T {
    chunked_reduce(
        adapter,
        data,
        T::ZERO,
        |chunk| {
            let mut m = T::ZERO;
            for &v in chunk {
                m = m.maxf(v.abs());
            }
            m
        },
        |a, b| a.maxf(b),
    )
}

/// Sum in f64 accumulation.
pub fn sum_f64<T: Float>(adapter: &dyn DeviceAdapter, data: &[T]) -> f64 {
    chunked_reduce(
        adapter,
        data,
        0.0f64,
        |chunk| chunk.iter().map(|v| v.to_f64()).sum::<f64>(),
        |a, b| a + b,
    )
}

/// Maximum absolute pointwise difference between two equal-length slices —
/// the error-bound verification primitive used across the test suite.
pub fn max_abs_diff<T: Float>(adapter: &dyn DeviceAdapter, a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch in max_abs_diff");
    if a.is_empty() {
        return 0.0;
    }
    let chunks = adapter.info().threads.clamp(1, 64);
    let chunk = a.len().div_ceil(chunks);
    let mut partial = vec![0.0f64; chunks];
    {
        let partial_sh = SharedSlice::new(&mut partial);
        adapter.dem(chunks, &|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(a.len());
            let mut m = 0.0f64;
            for i in lo..hi {
                m = m.max((a[i].to_f64() - b[i].to_f64()).abs());
            }
            // Safety: each chunk id writes only its own slot.
            unsafe { partial_sh.write(c, m) };
        });
    }
    partial.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    #[test]
    fn min_max_matches_reference() {
        let adapter = CpuParallelAdapter::new(4);
        let data: Vec<f64> = (0..10_001)
            .map(|i| ((i * 37) % 1000) as f64 - 500.0)
            .collect();
        let (mn, mx) = min_max(&adapter, &data);
        assert_eq!(mn, data.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(mx, data.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn min_max_empty_and_single() {
        let adapter = SerialAdapter::new();
        assert_eq!(min_max::<f32>(&adapter, &[]), (0.0, 0.0));
        assert_eq!(min_max(&adapter, &[42.0f32]), (42.0, 42.0));
    }

    #[test]
    fn max_abs_works() {
        let adapter = SerialAdapter::new();
        assert_eq!(max_abs(&adapter, &[1.0f32, -7.5, 3.0]), 7.5);
        assert_eq!(max_abs::<f64>(&adapter, &[]), 0.0);
    }

    #[test]
    fn sum_matches() {
        let adapter = CpuParallelAdapter::new(4);
        let data = vec![0.5f32; 10_000];
        assert!((sum_f64(&adapter, &data) - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn max_abs_diff_detects_worst_case() {
        let adapter = CpuParallelAdapter::new(4);
        let a: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let mut b = a.clone();
        b[4321] += 0.75;
        assert!((max_abs_diff(&adapter, &a, &b) - 0.75).abs() < 1e-12);
        assert_eq!(max_abs_diff::<f64>(&adapter, &[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn max_abs_diff_length_mismatch_panics() {
        let adapter = SerialAdapter::new();
        max_abs_diff(&adapter, &[1.0f32], &[1.0, 2.0]);
    }
}
