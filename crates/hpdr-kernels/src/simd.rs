//! Runtime-dispatched SIMD kernel tiers (DESIGN.md §16).
//!
//! The codec hot loops — ZFP's lifting transform and bit-plane
//! transpose, negabinary conversion, histogram filling, Huffman bit
//! counting, quantization — are expressed as function pointers in a
//! [`KernelDispatch`] table. The table is chosen **once** per process
//! (`is_x86_feature_detected!` cached in a `OnceLock`), so every call
//! site stays branch-free; the scalar tier is always available and the
//! vectorized tiers are required to be **byte-identical** to it
//! (`tests/simd_identity.rs` proptests every kernel across tiers).
//!
//! Tiers:
//! * `Scalar` — portable reference implementation, the only tier on
//!   non-x86-64 targets, under Miri, and when `HPDR_FORCE_SCALAR=1`.
//! * `Sse2` — baseline x86-64: 2×i64 lanes for negabinary/slice
//!   arithmetic, 4-way bank-interleaved histograms (store-to-load
//!   dependency breaking); gather-based kernels stay scalar.
//! * `Avx2` — 4×i64 / 4×f64 lanes for the ZFP transform, the 64×64
//!   bit-plane transpose, negabinary, quantization (with
//!   `_mm256_i32gather_*` table lookups), prefix scans, and Huffman
//!   bit counting.
//!
//! Every `unsafe` block carries a SAFETY argument per the workspace
//! `undocumented_unsafe_blocks` lint; the overarching invariant is that
//! a tier's function pointers are only ever installed in a table whose
//! construction verified the matching CPU feature.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Negabinary conversion mask: `nb = (x + M) ^ M`.
pub const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Which instruction tier a dispatch table implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    Scalar,
    Sse2,
    Avx2,
}

impl SimdTier {
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }
}

/// `(coeffs, levels, bins, out)` — see [`KernelDispatch::quantize_quotients`].
pub type QuantizeFn = fn(&[f64], &[u8], &[f64], &mut [f64]);
/// `(syms, levels, bins, radius, escape, out)` — see
/// [`KernelDispatch::dequantize_vals`].
pub type DequantizeFn = fn(&[u32], &[u8], &[f64], i64, u32, &mut [f64]);

/// The branch-free kernel dispatch table. One per tier, selected once at
/// startup; all pointers of a table belong to the same tier.
pub struct KernelDispatch {
    pub tier: SimdTier,
    /// `dst[i] = negabinary(src[i])`.
    pub negabinary_fwd: fn(&[i64], &mut [u64]),
    /// `dst[i] = negabinary⁻¹(src[i])`.
    pub negabinary_inv: fn(&[u64], &mut [i64]),
    /// In-place 64×64 bit-matrix transpose (involution):
    /// `out[r] bit c == in[c] bit r`.
    pub bit_transpose64: fn(&mut [u64; 64]),
    /// ZFP forward decorrelating transform of a 4^d block, d ∈ 1..=3.
    pub zfp_fwd_transform: fn(&mut [i64], usize),
    /// Inverse of `zfp_fwd_transform`.
    pub zfp_inv_transform: fn(&mut [i64], usize),
    /// Accumulate key counts into `row` (`bins + 1` slots; keys ≥ `bins`
    /// clamp into the final overflow slot).
    pub histogram_fill: fn(&[u32], usize, &mut [u64]),
    /// Accumulate byte counts into `row` (exactly 256 slots).
    pub byte_histogram_fill: fn(&[u8], &mut [u64]),
    /// `Σ lens[min(keys[i], lens.len()-1)]` (Huffman stage-A bit count).
    pub code_bits_sum: fn(&[u32], &[u32]) -> u64,
    /// Byte-keyed variant of `code_bits_sum`.
    pub byte_bits_sum: fn(&[u8], &[u32]) -> u64,
    /// `out[i] = round_ties_even(coeffs[i] / bins[levels[i]])` with the
    /// level index clamped to `bins.len() - 1`.
    pub quantize_quotients: QuantizeFn,
    /// `out[i] = (syms[i] - radius) * bins[levels[i]]`, escape → `0.0`.
    /// Signature: `(syms, levels, bins, radius, escape, out)`.
    pub dequantize_vals: DequantizeFn,
    /// `out[i] = round_ties_even(src[i] / divisor)`.
    pub div_round: fn(&[f64], f64, &mut [f64]),
    /// Max |v| over the slice; NaN if any element is NaN (infinities
    /// propagate through the max), so `result.is_finite()` doubles as the
    /// block's finiteness check.
    pub zfp_amax_f32: fn(&[f32]) -> f64,
    /// `f64` variant of `zfp_amax_f32`.
    pub zfp_amax_f64: fn(&[f64]) -> f64,
    /// `out[i] = round_ties_even(src[i] as f64 * scale) as i64`. Caller
    /// guarantees `|src[i] * scale| < 2^62` (ZFP's fixed-point headroom).
    pub zfp_fixedpoint_f32: fn(&[f32], f64, &mut [i64]),
    /// `f64` variant of `zfp_fixedpoint_f32`.
    pub zfp_fixedpoint_f64: fn(&[f64], f64, &mut [i64]),
    /// `(min, max)` over the slice; `(NaN, NaN)` if any element is NaN
    /// (infinities propagate), so finiteness of the pair doubles as the
    /// input finiteness check. Empty input yields `(+inf, -inf)`.
    pub min_max_f32: fn(&[f32]) -> (f32, f32),
    /// `f64` variant of `min_max_f32`.
    pub min_max_f64: fn(&[f64]) -> (f64, f64),
    /// SZ pre-quantizer: `out[i] = round_ties_even(src[i] as f64 / divisor)
    /// as i64`, fused widen + divide + round + integer convert. Caller
    /// guarantees `|src[i] / divisor| < 2^62`.
    pub sz_quantize_f32: fn(&[f32], f64, &mut [i64]),
    /// `f64` variant of `sz_quantize_f32`.
    pub sz_quantize_f64: fn(&[f64], f64, &mut [i64]),
    /// SZ dual-quant symbolizer: `out[i] = q[i] + radius` when that sum
    /// lies in `[0, escape)`, else `escape` with the position appended to
    /// `outliers` (escape-coded residual). Equal lengths.
    pub sz_symbolize: fn(&[i64], i64, u32, &mut [u32], &mut Vec<u64>),
    /// `cur[i] = cur[i].wrapping_sub(prev[i])` (equal lengths).
    pub slice_sub: fn(&mut [i64], &[i64]),
    /// `cur[i] = cur[i].wrapping_add(prev[i])` (equal lengths).
    pub slice_add: fn(&mut [i64], &[i64]),
    /// In-place backward difference: `p[i] -= p[i-1]` for i = n-1..1.
    pub line_backward_diff: fn(&mut [i64]),
    /// In-place inclusive prefix sum (wrapping): `p[i] += p[i-1]`.
    pub line_prefix_sum: fn(&mut [i64]),
}

/// The table selected for this process: `HPDR_FORCE_SCALAR=1` (or any
/// non-`0` value) forces the scalar tier; Miri always gets scalar;
/// otherwise the best tier the CPU supports.
pub fn kernels() -> &'static KernelDispatch {
    static CHOICE: OnceLock<&'static KernelDispatch> = OnceLock::new();
    CHOICE.get_or_init(detect)
}

fn force_scalar() -> bool {
    matches!(std::env::var("HPDR_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0")
}

#[allow(unreachable_code)] // the non-x86 / Miri tail is the x86 fallthrough
fn detect() -> &'static KernelDispatch {
    if force_scalar() {
        return &SCALAR_TABLE;
    }
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return &AVX2_TABLE;
        }
        return &SSE2_TABLE;
    }
    &SCALAR_TABLE
}

/// The always-available scalar reference table (tests compare the other
/// tiers against it).
pub fn scalar_kernels() -> &'static KernelDispatch {
    &SCALAR_TABLE
}

/// A specific tier's table, if this machine can run it (`None` on
/// non-x86-64, under Miri, or when AVX2 is not detected).
pub fn kernels_for_tier(tier: SimdTier) -> Option<&'static KernelDispatch> {
    match tier {
        SimdTier::Scalar => Some(&SCALAR_TABLE),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdTier::Sse2 => Some(&SSE2_TABLE),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        SimdTier::Avx2 => {
            if std::arch::is_x86_feature_detected!("avx2") {
                Some(&AVX2_TABLE)
            } else {
                None
            }
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        _ => None,
    }
}

/// The table for a DEM launch that fans out over `threads` pool
/// workers. When the launch oversubscribes the host (more workers than
/// cores), each worker's µs-scale chunk is bracketed by forced context
/// switches, and any 256-bit register state a kernel dirties is
/// saved and restored on every one of them — the XSAVE init-state
/// optimization that makes scalar-thread switches cheap no longer
/// applies. Measured on a 1-core host, AVX2 kernels under a 4-thread
/// launch run the MGARD quantize path 25% *slower* end to end than
/// scalar, while the same kernels win at ≤ 1 worker per core. So
/// oversubscribed launches take the scalar table; properly-sized
/// launches get the full dispatch.
pub fn kernels_for_par(threads: usize) -> &'static KernelDispatch {
    if threads > host_parallelism() {
        scalar_kernels()
    } else {
        kernels()
    }
}

fn host_parallelism() -> usize {
    static P: OnceLock<usize> = OnceLock::new();
    *P.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Every tier runnable on this machine (scalar first).
pub fn available_tiers() -> Vec<&'static KernelDispatch> {
    [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2]
        .into_iter()
        .filter_map(kernels_for_tier)
        .collect()
}

// ---------------------------------------------------------------------------
// Scalar tier
// ---------------------------------------------------------------------------

static SCALAR_TABLE: KernelDispatch = KernelDispatch {
    tier: SimdTier::Scalar,
    negabinary_fwd: negabinary_fwd_scalar,
    negabinary_inv: negabinary_inv_scalar,
    bit_transpose64: bit_transpose64_scalar,
    zfp_fwd_transform: zfp_fwd_transform_scalar,
    zfp_inv_transform: zfp_inv_transform_scalar,
    histogram_fill: histogram_fill_scalar,
    byte_histogram_fill: byte_histogram_fill_scalar,
    code_bits_sum: code_bits_sum_scalar,
    byte_bits_sum: byte_bits_sum_scalar,
    quantize_quotients: quantize_quotients_scalar,
    dequantize_vals: dequantize_vals_scalar,
    div_round: div_round_scalar,
    zfp_amax_f32: zfp_amax_f32_scalar,
    zfp_amax_f64: zfp_amax_f64_scalar,
    zfp_fixedpoint_f32: zfp_fixedpoint_f32_scalar,
    zfp_fixedpoint_f64: zfp_fixedpoint_f64_scalar,
    min_max_f32: min_max_f32_scalar,
    min_max_f64: min_max_f64_scalar,
    sz_quantize_f32: sz_quantize_f32_scalar,
    sz_quantize_f64: sz_quantize_f64_scalar,
    sz_symbolize: sz_symbolize_scalar,
    slice_sub: slice_sub_scalar,
    slice_add: slice_add_scalar,
    line_backward_diff: line_backward_diff_scalar,
    line_prefix_sum: line_prefix_sum_scalar,
};

/// Single-value negabinary forward (shared with `hpdr-zfp`).
#[inline]
pub fn int_to_negabinary(x: i64) -> u64 {
    ((x as u64).wrapping_add(NBMASK)) ^ NBMASK
}

/// Single-value negabinary inverse (shared with `hpdr-zfp`).
#[inline]
pub fn negabinary_to_int(u: u64) -> i64 {
    (u ^ NBMASK).wrapping_sub(NBMASK) as i64
}

fn negabinary_fwd_scalar(src: &[i64], dst: &mut [u64]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = int_to_negabinary(s);
    }
}

fn negabinary_inv_scalar(src: &[u64], dst: &mut [i64]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = negabinary_to_int(s);
    }
}

/// Hacker's Delight §7-3 recursive 64×64 bit-matrix transpose, in
/// LSB-column orientation: on return `a[r]` bit `c` equals the input's
/// `a[c]` bit `r`. Pure bitwise swaps, so it is its own inverse and
/// trivially byte-identical across tiers.
fn bit_transpose64_scalar(a: &mut [u64; 64]) {
    let mut j = 32u32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j as usize]) & m;
            a[k] ^= t << j;
            a[k + j as usize] ^= t;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// ZFP forward lift of one 4-vector at stride `s` (wrapping pair
/// average/difference ladder).
#[inline]
fn fwd_lift_scalar(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// ZFP inverse lift of one 4-vector at stride `s`.
#[inline]
fn inv_lift_scalar(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w = w.wrapping_shl(1);
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z = z.wrapping_shl(1);
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(w);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

fn zfp_fwd_transform_scalar(block: &mut [i64], d: usize) {
    match d {
        1 => fwd_lift_scalar(block, 0, 1),
        2 => {
            for r in 0..4 {
                fwd_lift_scalar(block, 4 * r, 1);
            }
            for c in 0..4 {
                fwd_lift_scalar(block, c, 4);
            }
        }
        3 => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift_scalar(block, 16 * z + 4 * y, 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift_scalar(block, 16 * z + x, 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift_scalar(block, 4 * y + x, 16);
                }
            }
        }
        _ => panic!("ZFP blocks are 1–3 dimensional"),
    }
}

fn zfp_inv_transform_scalar(block: &mut [i64], d: usize) {
    match d {
        1 => inv_lift_scalar(block, 0, 1),
        2 => {
            for c in 0..4 {
                inv_lift_scalar(block, c, 4);
            }
            for r in 0..4 {
                inv_lift_scalar(block, 4 * r, 1);
            }
        }
        3 => {
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift_scalar(block, 4 * y + x, 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift_scalar(block, 16 * z + x, 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift_scalar(block, 16 * z + 4 * y, 1);
                }
            }
        }
        _ => panic!("ZFP blocks are 1–3 dimensional"),
    }
}

fn histogram_fill_scalar(keys: &[u32], bins: usize, row: &mut [u64]) {
    assert_eq!(row.len(), bins + 1);
    for &k in keys {
        row[(k as usize).min(bins)] += 1;
    }
}

fn byte_histogram_fill_scalar(bytes: &[u8], row: &mut [u64]) {
    assert_eq!(row.len(), 256);
    for &b in bytes {
        row[b as usize] += 1;
    }
}

fn code_bits_sum_scalar(keys: &[u32], lens: &[u32]) -> u64 {
    assert!(!lens.is_empty());
    let top = lens.len() - 1;
    keys.iter()
        .map(|&k| lens[(k as usize).min(top)] as u64)
        .sum()
}

fn byte_bits_sum_scalar(bytes: &[u8], lens: &[u32]) -> u64 {
    assert!(!lens.is_empty());
    let top = lens.len() - 1;
    bytes
        .iter()
        .map(|&b| lens[(b as usize).min(top)] as u64)
        .sum()
}

fn quantize_quotients_scalar(coeffs: &[f64], levels: &[u8], bins: &[f64], out: &mut [f64]) {
    assert_eq!(coeffs.len(), levels.len());
    assert_eq!(coeffs.len(), out.len());
    assert!(!bins.is_empty());
    let top = bins.len() - 1;
    for i in 0..coeffs.len() {
        out[i] = (coeffs[i] / bins[(levels[i] as usize).min(top)]).round_ties_even();
    }
}

fn dequantize_vals_scalar(
    syms: &[u32],
    levels: &[u8],
    bins: &[f64],
    radius: i64,
    escape: u32,
    out: &mut [f64],
) {
    assert_eq!(syms.len(), levels.len());
    assert_eq!(syms.len(), out.len());
    assert!(!bins.is_empty());
    let top = bins.len() - 1;
    for i in 0..syms.len() {
        out[i] = if syms[i] == escape {
            0.0 // the caller patches escapes from its outlier table
        } else {
            (syms[i] as i64 - radius) as f64 * bins[(levels[i] as usize).min(top)]
        };
    }
}

fn div_round_scalar(src: &[f64], divisor: f64, out: &mut [f64]) {
    assert_eq!(src.len(), out.len());
    for (o, &s) in out.iter_mut().zip(src) {
        *o = (s / divisor).round_ties_even();
    }
}

fn zfp_amax_f32_scalar(vals: &[f32]) -> f64 {
    let mut amax = 0.0f32;
    let mut nan = false;
    for &v in vals {
        nan |= v.is_nan();
        amax = amax.max(v.abs());
    }
    if nan {
        f64::NAN
    } else {
        amax as f64
    }
}

fn zfp_amax_f64_scalar(vals: &[f64]) -> f64 {
    let mut amax = 0.0f64;
    let mut nan = false;
    for &v in vals {
        nan |= v.is_nan();
        amax = amax.max(v.abs());
    }
    if nan {
        f64::NAN
    } else {
        amax
    }
}

fn zfp_fixedpoint_f32_scalar(src: &[f32], scale: f64, out: &mut [i64]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = (v as f64 * scale).round_ties_even() as i64;
    }
}

fn zfp_fixedpoint_f64_scalar(src: &[f64], scale: f64, out: &mut [i64]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = (v * scale).round_ties_even() as i64;
    }
}

// The explicit `if v < mn` form (not f32::min) pins the -0.0/+0.0 choice
// to the one `vminps` makes, keeping scalar and AVX2 bit-identical.
fn min_max_f32_scalar(vals: &[f32]) -> (f32, f32) {
    let mut mn = f32::INFINITY;
    let mut mx = f32::NEG_INFINITY;
    let mut nan = false;
    for &v in vals {
        nan |= v.is_nan();
        mn = if v < mn { v } else { mn };
        mx = if v > mx { v } else { mx };
    }
    if nan {
        (f32::NAN, f32::NAN)
    } else {
        (mn, mx)
    }
}

fn min_max_f64_scalar(vals: &[f64]) -> (f64, f64) {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut nan = false;
    for &v in vals {
        nan |= v.is_nan();
        mn = if v < mn { v } else { mn };
        mx = if v > mx { v } else { mx };
    }
    if nan {
        (f64::NAN, f64::NAN)
    } else {
        (mn, mx)
    }
}

fn sz_quantize_f32_scalar(src: &[f32], divisor: f64, out: &mut [i64]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = (v as f64 / divisor).round_ties_even() as i64;
    }
}

fn sz_quantize_f64_scalar(src: &[f64], divisor: f64, out: &mut [i64]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = (v / divisor).round_ties_even() as i64;
    }
}

fn sz_symbolize_scalar(
    q: &[i64],
    radius: i64,
    escape: u32,
    out: &mut [u32],
    outliers: &mut Vec<u64>,
) {
    assert_eq!(q.len(), out.len());
    for (i, (&d, o)) in q.iter().zip(out.iter_mut()).enumerate() {
        // Wrapping mirrors the vector add; a wrapped sum is always
        // negative (radius < 2^32), so it lands in the outlier class.
        let s = d.wrapping_add(radius);
        if s >= 0 && s < escape as i64 {
            *o = s as u32;
        } else {
            *o = escape;
            outliers.push(i as u64);
        }
    }
}

fn slice_sub_scalar(cur: &mut [i64], prev: &[i64]) {
    assert_eq!(cur.len(), prev.len());
    for (c, &p) in cur.iter_mut().zip(prev) {
        *c = c.wrapping_sub(p);
    }
}

fn slice_add_scalar(cur: &mut [i64], prev: &[i64]) {
    assert_eq!(cur.len(), prev.len());
    for (c, &p) in cur.iter_mut().zip(prev) {
        *c = c.wrapping_add(p);
    }
}

fn line_backward_diff_scalar(p: &mut [i64]) {
    for i in (1..p.len()).rev() {
        p[i] = p[i].wrapping_sub(p[i - 1]);
    }
}

fn line_prefix_sum_scalar(p: &mut [i64]) {
    for i in 1..p.len() {
        p[i] = p[i].wrapping_add(p[i - 1]);
    }
}

// ---------------------------------------------------------------------------
// Banked histograms (shared by the SSE2 and AVX2 tiers)
// ---------------------------------------------------------------------------
//
// A serial histogram's `row[slot] += 1` chain stalls on store-to-load
// forwarding whenever consecutive keys hash to the same slot. Four
// interleaved private banks break the dependency chain; u64 addition is
// commutative and never overflows here, so the bank merge reproduces
// the scalar counts exactly.

#[cfg(target_arch = "x86_64")]
fn histogram_fill_banked(keys: &[u32], bins: usize, row: &mut [u64]) {
    assert_eq!(row.len(), bins + 1);
    let width = bins + 1;
    let mut banks = vec![0u64; 4 * width];
    let mut it = keys.chunks_exact(4);
    for c in it.by_ref() {
        banks[(c[0] as usize).min(bins)] += 1;
        banks[width + (c[1] as usize).min(bins)] += 1;
        banks[2 * width + (c[2] as usize).min(bins)] += 1;
        banks[3 * width + (c[3] as usize).min(bins)] += 1;
    }
    for &k in it.remainder() {
        banks[(k as usize).min(bins)] += 1;
    }
    for b in 0..width {
        row[b] += banks[b] + banks[width + b] + banks[2 * width + b] + banks[3 * width + b];
    }
}

#[cfg(target_arch = "x86_64")]
fn byte_histogram_fill_banked(bytes: &[u8], row: &mut [u64]) {
    assert_eq!(row.len(), 256);
    let mut banks = vec![0u64; 4 * 256];
    let mut it = bytes.chunks_exact(4);
    for c in it.by_ref() {
        banks[c[0] as usize] += 1;
        banks[256 + c[1] as usize] += 1;
        banks[512 + c[2] as usize] += 1;
        banks[768 + c[3] as usize] += 1;
    }
    for &b in it.remainder() {
        banks[b as usize] += 1;
    }
    for b in 0..256 {
        row[b] += banks[b] + banks[256 + b] + banks[512 + b] + banks[768 + b];
    }
}

// ---------------------------------------------------------------------------
// SSE2 tier (x86-64 baseline: no runtime detection needed)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
static SSE2_TABLE: KernelDispatch = KernelDispatch {
    tier: SimdTier::Sse2,
    negabinary_fwd: negabinary_fwd_sse2,
    negabinary_inv: negabinary_inv_sse2,
    // Gather-style and shift-heavy kernels fall back to scalar on the
    // SSE2 tier — SSE2 lacks 64-bit arithmetic shifts and gathers.
    bit_transpose64: bit_transpose64_scalar,
    zfp_fwd_transform: zfp_fwd_transform_scalar,
    zfp_inv_transform: zfp_inv_transform_scalar,
    histogram_fill: histogram_fill_banked,
    byte_histogram_fill: byte_histogram_fill_banked,
    code_bits_sum: code_bits_sum_scalar,
    byte_bits_sum: byte_bits_sum_scalar,
    quantize_quotients: quantize_quotients_scalar,
    dequantize_vals: dequantize_vals_scalar,
    div_round: div_round_scalar,
    zfp_amax_f32: zfp_amax_f32_scalar,
    zfp_amax_f64: zfp_amax_f64_scalar,
    zfp_fixedpoint_f32: zfp_fixedpoint_f32_scalar,
    zfp_fixedpoint_f64: zfp_fixedpoint_f64_scalar,
    min_max_f32: min_max_f32_scalar,
    min_max_f64: min_max_f64_scalar,
    sz_quantize_f32: sz_quantize_f32_scalar,
    sz_quantize_f64: sz_quantize_f64_scalar,
    sz_symbolize: sz_symbolize_scalar,
    slice_sub: slice_sub_sse2,
    slice_add: slice_add_sse2,
    line_backward_diff: line_backward_diff_sse2,
    line_prefix_sum: line_prefix_sum_scalar,
};

#[cfg(target_arch = "x86_64")]
fn negabinary_fwd_sse2(src: &[i64], dst: &mut [u64]) {
    // SAFETY: SSE2 is part of the x86-64 baseline, so the target feature
    // is always present on this architecture.
    unsafe { negabinary_fwd_sse2_impl(src, dst) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn negabinary_fwd_sse2_impl(src: &[i64], dst: &mut [u64]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    let mask = _mm_set1_epi64x(NBMASK as i64);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n bounds both the 16-byte load and store;
        // loadu/storeu have no alignment requirement.
        unsafe {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let nb = _mm_xor_si128(_mm_add_epi64(v, mask), mask);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, nb);
        }
        i += 2;
    }
    while i < n {
        dst[i] = int_to_negabinary(src[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn negabinary_inv_sse2(src: &[u64], dst: &mut [i64]) {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { negabinary_inv_sse2_impl(src, dst) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn negabinary_inv_sse2_impl(src: &[u64], dst: &mut [i64]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    let mask = _mm_set1_epi64x(NBMASK as i64);
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n bounds the unaligned 16-byte load and store.
        unsafe {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let x = _mm_sub_epi64(_mm_xor_si128(v, mask), mask);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, x);
        }
        i += 2;
    }
    while i < n {
        dst[i] = negabinary_to_int(src[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn slice_sub_sse2(cur: &mut [i64], prev: &[i64]) {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { slice_sub_sse2_impl(cur, prev) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn slice_sub_sse2_impl(cur: &mut [i64], prev: &[i64]) {
    assert_eq!(cur.len(), prev.len());
    let n = cur.len();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n bounds both unaligned accesses; `cur` and
        // `prev` are distinct slices (&mut aliasing rules).
        unsafe {
            let c = _mm_loadu_si128(cur.as_ptr().add(i) as *const __m128i);
            let p = _mm_loadu_si128(prev.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(cur.as_mut_ptr().add(i) as *mut __m128i, _mm_sub_epi64(c, p));
        }
        i += 2;
    }
    while i < n {
        cur[i] = cur[i].wrapping_sub(prev[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn slice_add_sse2(cur: &mut [i64], prev: &[i64]) {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { slice_add_sse2_impl(cur, prev) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn slice_add_sse2_impl(cur: &mut [i64], prev: &[i64]) {
    assert_eq!(cur.len(), prev.len());
    let n = cur.len();
    let mut i = 0;
    while i + 2 <= n {
        // SAFETY: i + 2 <= n bounds both unaligned accesses.
        unsafe {
            let c = _mm_loadu_si128(cur.as_ptr().add(i) as *const __m128i);
            let p = _mm_loadu_si128(prev.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(cur.as_mut_ptr().add(i) as *mut __m128i, _mm_add_epi64(c, p));
        }
        i += 2;
    }
    while i < n {
        cur[i] = cur[i].wrapping_add(prev[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn line_backward_diff_sse2(p: &mut [i64]) {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { line_backward_diff_sse2_impl(p) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn line_backward_diff_sse2_impl(p: &mut [i64]) {
    // Walk high→low so every load of p[i-1] sees the original value; the
    // chunk at [i-2, i) reads [i-3, i-1), which is stored only by later
    // (lower) iterations.
    let n = p.len();
    let mut i = n;
    while i >= 3 {
        // SAFETY: i >= 3 keeps both windows [i-2, i) and [i-3, i-1)
        // inside the slice; loads happen before the store of this chunk.
        unsafe {
            let cur = _mm_loadu_si128(p.as_ptr().add(i - 2) as *const __m128i);
            let prev = _mm_loadu_si128(p.as_ptr().add(i - 3) as *const __m128i);
            _mm_storeu_si128(
                p.as_mut_ptr().add(i - 2) as *mut __m128i,
                _mm_sub_epi64(cur, prev),
            );
        }
        i -= 2;
    }
    for j in (1..i).rev() {
        p[j] = p[j].wrapping_sub(p[j - 1]);
    }
}

// ---------------------------------------------------------------------------
// AVX2 tier
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelDispatch = KernelDispatch {
    tier: SimdTier::Avx2,
    negabinary_fwd: negabinary_fwd_avx2,
    negabinary_inv: negabinary_inv_avx2,
    bit_transpose64: bit_transpose64_avx2,
    zfp_fwd_transform: zfp_fwd_transform_avx2,
    zfp_inv_transform: zfp_inv_transform_avx2,
    histogram_fill: histogram_fill_banked,
    byte_histogram_fill: byte_histogram_fill_banked,
    code_bits_sum: code_bits_sum_avx2,
    byte_bits_sum: byte_bits_sum_avx2,
    quantize_quotients: quantize_quotients_avx2,
    dequantize_vals: dequantize_vals_avx2,
    div_round: div_round_avx2,
    zfp_amax_f32: zfp_amax_f32_avx2,
    zfp_amax_f64: zfp_amax_f64_avx2,
    zfp_fixedpoint_f32: zfp_fixedpoint_f32_avx2,
    zfp_fixedpoint_f64: zfp_fixedpoint_f64_avx2,
    min_max_f32: min_max_f32_avx2,
    min_max_f64: min_max_f64_avx2,
    sz_quantize_f32: sz_quantize_f32_avx2,
    sz_quantize_f64: sz_quantize_f64_avx2,
    sz_symbolize: sz_symbolize_avx2,
    slice_sub: slice_sub_avx2,
    slice_add: slice_add_avx2,
    line_backward_diff: line_backward_diff_avx2,
    line_prefix_sum: line_prefix_sum_avx2,
};

/// Arithmetic shift right by one of 4×i64 lanes. AVX2 has no
/// `_mm256_srai_epi64`; `((x >>ᵘ 1) ^ m) - m` with `m = 1 << 62`
/// restores the sign bit (standard sign-extension identity).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sra1_epi64(v: __m256i) -> __m256i {
    let m = _mm256_set1_epi64x(1 << 62);
    _mm256_sub_epi64(_mm256_xor_si256(_mm256_srli_epi64(v, 1), m), m)
}

/// Wrapping `<< 1` of 4×i64 lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn shl1_epi64(v: __m256i) -> __m256i {
    _mm256_add_epi64(v, v)
}

#[cfg(target_arch = "x86_64")]
fn negabinary_fwd_avx2(src: &[i64], dst: &mut [u64]) {
    // SAFETY: this pointer is only installed in AVX2_TABLE, which is
    // selected after `is_x86_feature_detected!("avx2")` succeeds.
    unsafe { negabinary_fwd_avx2_impl(src, dst) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn negabinary_fwd_avx2_impl(src: &[i64], dst: &mut [u64]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    let mask = _mm256_set1_epi64x(NBMASK as i64);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the unaligned 32-byte load and store.
        unsafe {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let nb = _mm256_xor_si256(_mm256_add_epi64(v, mask), mask);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, nb);
        }
        i += 4;
    }
    while i < n {
        dst[i] = int_to_negabinary(src[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn negabinary_inv_avx2(src: &[u64], dst: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { negabinary_inv_avx2_impl(src, dst) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn negabinary_inv_avx2_impl(src: &[u64], dst: &mut [i64]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    let mask = _mm256_set1_epi64x(NBMASK as i64);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the unaligned 32-byte load and store.
        unsafe {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let x = _mm256_sub_epi64(_mm256_xor_si256(v, mask), mask);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, x);
        }
        i += 4;
    }
    while i < n {
        dst[i] = negabinary_to_int(src[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn bit_transpose64_avx2(a: &mut [u64; 64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { bit_transpose64_avx2_impl(a) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bit_transpose64_avx2_impl(a: &mut [u64; 64]) {
    // Hacker's Delight transpose; stages j ∈ {32,16,8,4} swap groups of
    // ≥4 consecutive words, so their inner loops vectorize 4-wide. The
    // j ∈ {2,1} stages mix words closer than a vector and stay scalar.
    let mut j = 32u32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j >= 4 {
        let mv = _mm256_set1_epi64x(m as i64);
        let shift = _mm_cvtsi32_si128(j as i32);
        let mut k = 0usize;
        while k < 64 {
            let mut kk = k;
            while kk < k + j as usize {
                // SAFETY: kk + j + 4 <= 64 — k iterates blocks of j with
                // bit j clear, so kk ∈ [k, k+j) and kk + j stays < 64;
                // j ≥ 4 keeps every 4-word window inside its block.
                unsafe {
                    let lo = _mm256_loadu_si256(a.as_ptr().add(kk) as *const __m256i);
                    let hi = _mm256_loadu_si256(a.as_ptr().add(kk + j as usize) as *const __m256i);
                    let t = _mm256_and_si256(_mm256_xor_si256(_mm256_srl_epi64(lo, shift), hi), mv);
                    _mm256_storeu_si256(
                        a.as_mut_ptr().add(kk) as *mut __m256i,
                        _mm256_xor_si256(lo, _mm256_sll_epi64(t, shift)),
                    );
                    _mm256_storeu_si256(
                        a.as_mut_ptr().add(kk + j as usize) as *mut __m256i,
                        _mm256_xor_si256(hi, t),
                    );
                }
                kk += 4;
            }
            k += 2 * j as usize;
        }
        j >>= 1;
        m ^= m << j;
    }
    // Remaining stages j = 2, 1 (scalar; identical to the reference loop).
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j as usize]) & m;
            a[k] ^= t << j;
            a[k + j as usize] ^= t;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// 4×4 transpose of i64 lanes across four AVX2 registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose4x4_epi64(
    r0: __m256i,
    r1: __m256i,
    r2: __m256i,
    r3: __m256i,
) -> (__m256i, __m256i, __m256i, __m256i) {
    let t0 = _mm256_unpacklo_epi64(r0, r1); // [a0 b0 a2 b2]
    let t1 = _mm256_unpackhi_epi64(r0, r1); // [a1 b1 a3 b3]
    let t2 = _mm256_unpacklo_epi64(r2, r3); // [c0 d0 c2 d2]
    let t3 = _mm256_unpackhi_epi64(r2, r3); // [c1 d1 c3 d3]
    (
        _mm256_permute2x128_si256(t0, t2, 0x20), // [a0 b0 c0 d0]
        _mm256_permute2x128_si256(t1, t3, 0x20), // [a1 b1 c1 d1]
        _mm256_permute2x128_si256(t0, t2, 0x31), // [a2 b2 c2 d2]
        _mm256_permute2x128_si256(t1, t3, 0x31), // [a3 b3 c3 d3]
    )
}

/// ZFP forward lift of four independent 4-vectors held column-wise in
/// lanes. Mirrors `fwd_lift_scalar` exactly (wrapping adds, emulated
/// arithmetic shifts), so results are byte-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fwd_lift_v(
    mut x: __m256i,
    mut y: __m256i,
    mut z: __m256i,
    mut w: __m256i,
) -> (__m256i, __m256i, __m256i, __m256i) {
    x = sra1_epi64(_mm256_add_epi64(x, w));
    w = _mm256_sub_epi64(w, x);
    z = sra1_epi64(_mm256_add_epi64(z, y));
    y = _mm256_sub_epi64(y, z);
    x = sra1_epi64(_mm256_add_epi64(x, z));
    z = _mm256_sub_epi64(z, x);
    w = sra1_epi64(_mm256_add_epi64(w, y));
    y = _mm256_sub_epi64(y, w);
    w = _mm256_add_epi64(w, sra1_epi64(y));
    y = _mm256_sub_epi64(y, sra1_epi64(w));
    (x, y, z, w)
}

/// Inverse of [`fwd_lift_v`]; mirrors `inv_lift_scalar`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn inv_lift_v(
    mut x: __m256i,
    mut y: __m256i,
    mut z: __m256i,
    mut w: __m256i,
) -> (__m256i, __m256i, __m256i, __m256i) {
    y = _mm256_add_epi64(y, sra1_epi64(w));
    w = _mm256_sub_epi64(w, sra1_epi64(y));
    y = _mm256_add_epi64(y, w);
    w = shl1_epi64(w);
    w = _mm256_sub_epi64(w, y);
    z = _mm256_add_epi64(z, x);
    x = shl1_epi64(x);
    x = _mm256_sub_epi64(x, z);
    y = _mm256_add_epi64(y, z);
    z = shl1_epi64(z);
    z = _mm256_sub_epi64(z, y);
    w = _mm256_add_epi64(w, x);
    x = shl1_epi64(x);
    x = _mm256_sub_epi64(x, w);
    (x, y, z, w)
}

/// Load 4 consecutive i64 starting at `p[off]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn load4(p: &[i64], off: usize) -> __m256i {
    debug_assert!(off + 4 <= p.len());
    // SAFETY: caller guarantees off + 4 <= p.len(); unaligned load.
    unsafe { _mm256_loadu_si256(p.as_ptr().add(off) as *const __m256i) }
}

/// Store 4 consecutive i64 starting at `p[off]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn store4(p: &mut [i64], off: usize, v: __m256i) {
    debug_assert!(off + 4 <= p.len());
    // SAFETY: caller guarantees off + 4 <= p.len(); unaligned store.
    unsafe { _mm256_storeu_si256(p.as_mut_ptr().add(off) as *mut __m256i, v) }
}

/// Row pass (stride 1) over a 16-element plane starting at `base`: the
/// four rows are loaded, transposed so each register holds one column,
/// lifted, transposed back, and stored.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lift_rows_fwd(block: &mut [i64], base: usize) {
    // SAFETY: callers pass base with base + 16 <= block.len().
    unsafe {
        let r0 = load4(block, base);
        let r1 = load4(block, base + 4);
        let r2 = load4(block, base + 8);
        let r3 = load4(block, base + 12);
        let (x, y, z, w) = transpose4x4_epi64(r0, r1, r2, r3);
        let (x, y, z, w) = fwd_lift_v(x, y, z, w);
        let (r0, r1, r2, r3) = transpose4x4_epi64(x, y, z, w);
        store4(block, base, r0);
        store4(block, base + 4, r1);
        store4(block, base + 8, r2);
        store4(block, base + 12, r3);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lift_rows_inv(block: &mut [i64], base: usize) {
    // SAFETY: callers pass base with base + 16 <= block.len().
    unsafe {
        let r0 = load4(block, base);
        let r1 = load4(block, base + 4);
        let r2 = load4(block, base + 8);
        let r3 = load4(block, base + 12);
        let (x, y, z, w) = transpose4x4_epi64(r0, r1, r2, r3);
        let (x, y, z, w) = inv_lift_v(x, y, z, w);
        let (r0, r1, r2, r3) = transpose4x4_epi64(x, y, z, w);
        store4(block, base, r0);
        store4(block, base + 4, r1);
        store4(block, base + 8, r2);
        store4(block, base + 12, r3);
    }
}

/// Strided pass: the four 4-vectors at `base + lane + j*s` (lane = 0..4,
/// s = 4 within a plane or 16 across planes) line up naturally when
/// loading 4 consecutive elements — no transpose needed.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lift_strided_fwd(block: &mut [i64], base: usize, s: usize) {
    // SAFETY: callers pass base/s with base + 3*s + 4 <= block.len().
    unsafe {
        let x = load4(block, base);
        let y = load4(block, base + s);
        let z = load4(block, base + 2 * s);
        let w = load4(block, base + 3 * s);
        let (x, y, z, w) = fwd_lift_v(x, y, z, w);
        store4(block, base, x);
        store4(block, base + s, y);
        store4(block, base + 2 * s, z);
        store4(block, base + 3 * s, w);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lift_strided_inv(block: &mut [i64], base: usize, s: usize) {
    // SAFETY: callers pass base/s with base + 3*s + 4 <= block.len().
    unsafe {
        let x = load4(block, base);
        let y = load4(block, base + s);
        let z = load4(block, base + 2 * s);
        let w = load4(block, base + 3 * s);
        let (x, y, z, w) = inv_lift_v(x, y, z, w);
        store4(block, base, x);
        store4(block, base + s, y);
        store4(block, base + 2 * s, z);
        store4(block, base + 3 * s, w);
    }
}

#[cfg(target_arch = "x86_64")]
fn zfp_fwd_transform_avx2(block: &mut [i64], d: usize) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { zfp_fwd_transform_avx2_impl(block, d) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zfp_fwd_transform_avx2_impl(block: &mut [i64], d: usize) {
    match d {
        1 => fwd_lift_scalar(block, 0, 1),
        2 => {
            assert!(block.len() >= 16);
            // SAFETY: length asserted ≥ 16 covers every window below.
            unsafe {
                lift_rows_fwd(block, 0); // rows (stride 1)
                lift_strided_fwd(block, 0, 4); // columns
            }
        }
        3 => {
            assert!(block.len() >= 64);
            // SAFETY: length asserted ≥ 64 covers every window below
            // (max offset 48 + 3·4 + 4 = 64).
            unsafe {
                for z in 0..4 {
                    lift_rows_fwd(block, 16 * z); // x-axis (stride 1)
                }
                for z in 0..4 {
                    lift_strided_fwd(block, 16 * z, 4); // y-axis
                }
                for y in 0..4 {
                    lift_strided_fwd(block, 4 * y, 16); // z-axis
                }
            }
        }
        _ => panic!("ZFP blocks are 1–3 dimensional"),
    }
}

#[cfg(target_arch = "x86_64")]
fn zfp_inv_transform_avx2(block: &mut [i64], d: usize) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { zfp_inv_transform_avx2_impl(block, d) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zfp_inv_transform_avx2_impl(block: &mut [i64], d: usize) {
    match d {
        1 => inv_lift_scalar(block, 0, 1),
        2 => {
            assert!(block.len() >= 16);
            // SAFETY: length asserted ≥ 16 covers every window below.
            unsafe {
                lift_strided_inv(block, 0, 4); // columns first (reverse order)
                lift_rows_inv(block, 0);
            }
        }
        3 => {
            assert!(block.len() >= 64);
            // SAFETY: length asserted ≥ 64 covers every window below.
            unsafe {
                for y in 0..4 {
                    lift_strided_inv(block, 4 * y, 16); // z-axis first
                }
                for z in 0..4 {
                    lift_strided_inv(block, 16 * z, 4); // y-axis
                }
                for z in 0..4 {
                    lift_rows_inv(block, 16 * z); // x-axis
                }
            }
        }
        _ => panic!("ZFP blocks are 1–3 dimensional"),
    }
}

#[cfg(target_arch = "x86_64")]
fn code_bits_sum_avx2(keys: &[u32], lens: &[u32]) -> u64 {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { code_bits_sum_avx2_impl(keys, lens) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn code_bits_sum_avx2_impl(keys: &[u32], lens: &[u32]) -> u64 {
    assert!(!lens.is_empty());
    let top = _mm256_set1_epi32((lens.len() - 1) as i32);
    let mut total = 0u64;
    // Blocks of ≤ 2^24 keys keep the 8 u32 lane accumulators below
    // 2^24/8 · 64 < 2^28, far from overflow.
    for block in keys.chunks(1 << 24) {
        let mut acc = _mm256_setzero_si256();
        let mut it = block.chunks_exact(8);
        for c in it.by_ref() {
            // SAFETY: chunks_exact(8) guarantees 8 readable u32s; the
            // gather indices are clamped below lens.len() by min_epu32,
            // so every lane reads inside `lens`.
            unsafe {
                let k = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                let idx = _mm256_min_epu32(k, top);
                let v = _mm256_i32gather_epi32(lens.as_ptr() as *const i32, idx, 4);
                acc = _mm256_add_epi32(acc, v);
            }
        }
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is exactly 32 bytes, matching the store width.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
        total += lanes.iter().map(|&v| v as u64).sum::<u64>();
        total += code_bits_sum_scalar(it.remainder(), lens);
    }
    total
}

#[cfg(target_arch = "x86_64")]
fn byte_bits_sum_avx2(bytes: &[u8], lens: &[u32]) -> u64 {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { byte_bits_sum_avx2_impl(bytes, lens) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn byte_bits_sum_avx2_impl(bytes: &[u8], lens: &[u32]) -> u64 {
    assert!(!lens.is_empty());
    let top = _mm256_set1_epi32((lens.len() - 1) as i32);
    let mut total = 0u64;
    for block in bytes.chunks(1 << 24) {
        let mut acc = _mm256_setzero_si256();
        let mut it = block.chunks_exact(8);
        for c in it.by_ref() {
            // SAFETY: chunks_exact(8) guarantees 8 readable bytes (one
            // 64-bit load); gather indices are clamped below lens.len().
            unsafe {
                let b = _mm_loadl_epi64(c.as_ptr() as *const __m128i);
                let k = _mm256_cvtepu8_epi32(b);
                let idx = _mm256_min_epu32(k, top);
                let v = _mm256_i32gather_epi32(lens.as_ptr() as *const i32, idx, 4);
                acc = _mm256_add_epi32(acc, v);
            }
        }
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is exactly 32 bytes, matching the store width.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
        total += lanes.iter().map(|&v| v as u64).sum::<u64>();
        total += byte_bits_sum_scalar(it.remainder(), lens);
    }
    total
}

#[cfg(target_arch = "x86_64")]
fn quantize_quotients_avx2(coeffs: &[f64], levels: &[u8], bins: &[f64], out: &mut [f64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { quantize_quotients_avx2_impl(coeffs, levels, bins, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_quotients_avx2_impl(
    coeffs: &[f64],
    levels: &[u8],
    bins: &[f64],
    out: &mut [f64],
) {
    assert_eq!(coeffs.len(), levels.len());
    assert_eq!(coeffs.len(), out.len());
    assert!(!bins.is_empty());
    let n = coeffs.len();
    let top = bins.len() - 1;
    let mut i = 0;
    while i + 4 <= n {
        // Level indices are clamped scalar-side, so the gather below
        // stays inside `bins` unconditionally.
        let idx = _mm_setr_epi32(
            (levels[i] as usize).min(top) as i32,
            (levels[i + 1] as usize).min(top) as i32,
            (levels[i + 2] as usize).min(top) as i32,
            (levels[i + 3] as usize).min(top) as i32,
        );
        // SAFETY: i + 4 <= n bounds the load/store; gather indices are
        // clamped to bins.len() - 1.
        unsafe {
            let b = _mm256_i32gather_pd(bins.as_ptr(), idx, 8);
            let c = _mm256_loadu_pd(coeffs.as_ptr().add(i));
            let q = _mm256_div_pd(c, b);
            // Round-to-nearest-even matches `f64::round_ties_even`.
            let r = _mm256_round_pd(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
        }
        i += 4;
    }
    while i < n {
        out[i] = (coeffs[i] / bins[(levels[i] as usize).min(top)]).round_ties_even();
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn dequantize_vals_avx2(
    syms: &[u32],
    levels: &[u8],
    bins: &[f64],
    radius: i64,
    escape: u32,
    out: &mut [f64],
) {
    // The magic-constant i64→f64 conversion below is exact only for
    // |sym - radius| < 2^51; syms are u32 (< 2^32), so any |radius|
    // below 2^50 keeps the difference in range. Larger radii (never
    // produced by real quantizers) take the scalar path.
    if radius.unsigned_abs() >= (1 << 50) {
        dequantize_vals_scalar(syms, levels, bins, radius, escape, out);
        return;
    }
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { dequantize_vals_avx2_impl(syms, levels, bins, radius, escape, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequantize_vals_avx2_impl(
    syms: &[u32],
    levels: &[u8],
    bins: &[f64],
    radius: i64,
    escape: u32,
    out: &mut [f64],
) {
    assert_eq!(syms.len(), levels.len());
    assert_eq!(syms.len(), out.len());
    assert!(!bins.is_empty());
    let n = syms.len();
    let top = bins.len() - 1;
    // f64 bit pattern of 2^52 + 2^51: adding an i64 x with |x| < 2^51 to
    // these bits yields the bits of (2^52 + 2^51) + x, so subtracting the
    // constant back recovers an exact f64(x) — same value as `x as f64`.
    const MAGIC_BITS: i64 = 0x4338_0000_0000_0000;
    let esc = _mm256_set1_epi64x(escape as i64);
    let rad = _mm256_set1_epi64x(radius);
    let magic_i = _mm256_set1_epi64x(MAGIC_BITS);
    let magic_d = _mm256_castsi256_pd(magic_i);
    let mut i = 0;
    while i + 4 <= n {
        let idx = _mm_setr_epi32(
            (levels[i] as usize).min(top) as i32,
            (levels[i + 1] as usize).min(top) as i32,
            (levels[i + 2] as usize).min(top) as i32,
            (levels[i + 3] as usize).min(top) as i32,
        );
        // SAFETY: i + 4 <= n bounds the loads/stores; gather indices are
        // clamped to bins.len() - 1. Arithmetic is 64-bit: syms zero-
        // extend to i64, and |sym - radius| < 2^51 (wrapper guards
        // |radius| < 2^50), keeping the magic conversion exact.
        unsafe {
            let s = _mm_loadu_si128(syms.as_ptr().add(i) as *const __m128i);
            let s64 = _mm256_cvtepu32_epi64(s);
            let is_esc = _mm256_cmpeq_epi64(s64, esc);
            let qi = _mm256_sub_epi64(s64, rad);
            let qd = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(qi, magic_i)), magic_d);
            let b = _mm256_i32gather_pd(bins.as_ptr(), idx, 8);
            let v = _mm256_mul_pd(qd, b);
            let v = _mm256_andnot_pd(_mm256_castsi256_pd(is_esc), v);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), v);
        }
        i += 4;
    }
    while i < n {
        out[i] = if syms[i] == escape {
            0.0
        } else {
            (syms[i] as i64 - radius) as f64 * bins[(levels[i] as usize).min(top)]
        };
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn div_round_avx2(src: &[f64], divisor: f64, out: &mut [f64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { div_round_avx2_impl(src, divisor, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn div_round_avx2_impl(src: &[f64], divisor: f64, out: &mut [f64]) {
    assert_eq!(src.len(), out.len());
    let n = src.len();
    let d = _mm256_set1_pd(divisor);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the unaligned load and store.
        unsafe {
            let v = _mm256_loadu_pd(src.as_ptr().add(i));
            let q = _mm256_div_pd(v, d);
            let r = _mm256_round_pd(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
        }
        i += 4;
    }
    while i < n {
        out[i] = (src[i] / divisor).round_ties_even();
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn zfp_amax_f32_avx2(vals: &[f32]) -> f64 {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { zfp_amax_f32_avx2_impl(vals) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zfp_amax_f32_avx2_impl(vals: &[f32]) -> f64 {
    let n = vals.len();
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let mut acc = _mm256_setzero_ps();
    let mut unord = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the unaligned load.
        unsafe {
            let v = _mm256_loadu_ps(vals.as_ptr().add(i));
            // NaN tracked separately: maxps silently passes NaN through
            // (or drops it, depending on operand order), so the unordered
            // compare is the reliable detector.
            unord = _mm256_or_ps(unord, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
            acc = _mm256_max_ps(acc, _mm256_and_ps(v, absmask));
        }
        i += 8;
    }
    let mut nan = _mm256_movemask_ps(unord) != 0;
    let hi = _mm256_extractf128_ps(acc, 1);
    let mut q = _mm_max_ps(_mm256_castps256_ps128(acc), hi);
    q = _mm_max_ps(q, _mm_movehl_ps(q, q));
    q = _mm_max_ss(q, _mm_shuffle_ps(q, q, 1));
    let mut amax = _mm_cvtss_f32(q);
    for &v in &vals[i..] {
        nan |= v.is_nan();
        amax = amax.max(v.abs());
    }
    if nan {
        f64::NAN
    } else {
        amax as f64
    }
}

#[cfg(target_arch = "x86_64")]
fn zfp_amax_f64_avx2(vals: &[f64]) -> f64 {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { zfp_amax_f64_avx2_impl(vals) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zfp_amax_f64_avx2_impl(vals: &[f64]) -> f64 {
    let n = vals.len();
    let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF));
    let mut acc = _mm256_setzero_pd();
    let mut unord = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the unaligned load.
        unsafe {
            let v = _mm256_loadu_pd(vals.as_ptr().add(i));
            unord = _mm256_or_pd(unord, _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
            acc = _mm256_max_pd(acc, _mm256_and_pd(v, absmask));
        }
        i += 4;
    }
    let mut nan = _mm256_movemask_pd(unord) != 0;
    let hi = _mm256_extractf128_pd(acc, 1);
    let mut q = _mm_max_pd(_mm256_castpd256_pd128(acc), hi);
    q = _mm_max_sd(q, _mm_unpackhi_pd(q, q));
    let mut amax = _mm_cvtsd_f64(q);
    for &v in &vals[i..] {
        nan |= v.is_nan();
        amax = amax.max(v.abs());
    }
    if nan {
        f64::NAN
    } else {
        amax
    }
}

/// Exact f64 → i64 for *integral* doubles with |x| < 2^63 (AVX2 has no
/// `vcvtpd2qq`): decode exponent and mantissa and shift the 53-bit
/// significand into place with per-lane variable shifts — counts ≥ 64
/// conveniently yield 0, which handles both ±0 (tiny exponent) and the
/// dead half of the left/right pair.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cvt_integral_pd_epi64(x: __m256d) -> __m256i {
    let bits = _mm256_castpd_si256(x);
    let zero = _mm256_setzero_si256();
    let neg = _mm256_cmpgt_epi64(zero, bits);
    let exp = _mm256_and_si256(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7FF));
    // Shift distance from the 52-bit-aligned significand: e = exp - 1075.
    let e = _mm256_sub_epi64(exp, _mm256_set1_epi64x(1075));
    let mant = _mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x((1i64 << 52) - 1)),
        _mm256_set1_epi64x(1i64 << 52),
    );
    let left = _mm256_sllv_epi64(mant, e);
    let right = _mm256_srlv_epi64(mant, _mm256_sub_epi64(zero, e));
    // Exactly one side is live (the other's count is ≥ 64 → 0); at e == 0
    // both equal `mant`, so OR is still exact.
    let mag = _mm256_or_si256(left, right);
    // Two's-complement negate where the sign bit was set.
    _mm256_sub_epi64(_mm256_xor_si256(mag, neg), neg)
}

#[cfg(target_arch = "x86_64")]
fn zfp_fixedpoint_f32_avx2(src: &[f32], scale: f64, out: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { zfp_fixedpoint_f32_avx2_impl(src, scale, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zfp_fixedpoint_f32_avx2_impl(src: &[f32], scale: f64, out: &mut [i64]) {
    assert_eq!(src.len(), out.len());
    let n = src.len();
    let s = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the load and store. The widen → mul →
        // round sequence is IEEE-exact, so it matches the scalar
        // `(v as f64 * scale).round_ties_even()` bit for bit; the caller
        // bounds |v·scale| < 2^62, keeping the integral conversion exact.
        unsafe {
            let v = _mm_loadu_ps(src.as_ptr().add(i));
            let d = _mm256_mul_pd(_mm256_cvtps_pd(v), s);
            let r = _mm256_round_pd(d, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                cvt_integral_pd_epi64(r),
            );
        }
        i += 4;
    }
    while i < n {
        out[i] = (src[i] as f64 * scale).round_ties_even() as i64;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn zfp_fixedpoint_f64_avx2(src: &[f64], scale: f64, out: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { zfp_fixedpoint_f64_avx2_impl(src, scale, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn zfp_fixedpoint_f64_avx2_impl(src: &[f64], scale: f64, out: &mut [i64]) {
    assert_eq!(src.len(), out.len());
    let n = src.len();
    let s = _mm256_set1_pd(scale);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the load and store; see the f32
        // variant for the exactness argument.
        unsafe {
            let v = _mm256_loadu_pd(src.as_ptr().add(i));
            let d = _mm256_mul_pd(v, s);
            let r = _mm256_round_pd(d, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                cvt_integral_pd_epi64(r),
            );
        }
        i += 4;
    }
    while i < n {
        out[i] = (src[i] * scale).round_ties_even() as i64;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn min_max_f32_avx2(vals: &[f32]) -> (f32, f32) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { min_max_f32_avx2_impl(vals) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_max_f32_avx2_impl(vals: &[f32]) -> (f32, f32) {
    let n = vals.len();
    // Accumulators start at ±inf and the data rides in the *first*
    // min/max operand, so NaN lanes fall through to the accumulator
    // (min/max return the second operand on unordered) — NaN is tracked
    // by the separate unordered compare, exactly like the amax kernels.
    let mut vmn = _mm256_set1_ps(f32::INFINITY);
    let mut vmx = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut unord = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the unaligned load.
        unsafe {
            let v = _mm256_loadu_ps(vals.as_ptr().add(i));
            unord = _mm256_or_ps(unord, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
            vmn = _mm256_min_ps(v, vmn);
            vmx = _mm256_max_ps(v, vmx);
        }
        i += 8;
    }
    let mut nan = _mm256_movemask_ps(unord) != 0;
    let mut q = _mm_min_ps(_mm256_castps256_ps128(vmn), _mm256_extractf128_ps(vmn, 1));
    q = _mm_min_ps(q, _mm_movehl_ps(q, q));
    q = _mm_min_ss(q, _mm_shuffle_ps(q, q, 1));
    let mut mn = _mm_cvtss_f32(q);
    let mut q = _mm_max_ps(_mm256_castps256_ps128(vmx), _mm256_extractf128_ps(vmx, 1));
    q = _mm_max_ps(q, _mm_movehl_ps(q, q));
    q = _mm_max_ss(q, _mm_shuffle_ps(q, q, 1));
    let mut mx = _mm_cvtss_f32(q);
    for &v in &vals[i..] {
        nan |= v.is_nan();
        mn = if v < mn { v } else { mn };
        mx = if v > mx { v } else { mx };
    }
    if nan {
        (f32::NAN, f32::NAN)
    } else {
        (mn, mx)
    }
}

#[cfg(target_arch = "x86_64")]
fn min_max_f64_avx2(vals: &[f64]) -> (f64, f64) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { min_max_f64_avx2_impl(vals) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_max_f64_avx2_impl(vals: &[f64]) -> (f64, f64) {
    let n = vals.len();
    let mut vmn = _mm256_set1_pd(f64::INFINITY);
    let mut vmx = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut unord = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the unaligned load.
        unsafe {
            let v = _mm256_loadu_pd(vals.as_ptr().add(i));
            unord = _mm256_or_pd(unord, _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
            vmn = _mm256_min_pd(v, vmn);
            vmx = _mm256_max_pd(v, vmx);
        }
        i += 4;
    }
    let mut nan = _mm256_movemask_pd(unord) != 0;
    let mut q = _mm_min_pd(_mm256_castpd256_pd128(vmn), _mm256_extractf128_pd(vmn, 1));
    q = _mm_min_sd(q, _mm_unpackhi_pd(q, q));
    let mut mn = _mm_cvtsd_f64(q);
    let mut q = _mm_max_pd(_mm256_castpd256_pd128(vmx), _mm256_extractf128_pd(vmx, 1));
    q = _mm_max_sd(q, _mm_unpackhi_pd(q, q));
    let mut mx = _mm_cvtsd_f64(q);
    for &v in &vals[i..] {
        nan |= v.is_nan();
        mn = if v < mn { v } else { mn };
        mx = if v > mx { v } else { mx };
    }
    if nan {
        (f64::NAN, f64::NAN)
    } else {
        (mn, mx)
    }
}

#[cfg(target_arch = "x86_64")]
fn sz_quantize_f32_avx2(src: &[f32], divisor: f64, out: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { sz_quantize_f32_avx2_impl(src, divisor, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sz_quantize_f32_avx2_impl(src: &[f32], divisor: f64, out: &mut [i64]) {
    assert_eq!(src.len(), out.len());
    let n = src.len();
    let d = _mm256_set1_pd(divisor);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the load and store. Widen → divide →
        // round is IEEE-exact, matching the scalar form bit for bit; the
        // caller bounds |v / divisor| < 2^62 for the integral conversion.
        unsafe {
            let v = _mm_loadu_ps(src.as_ptr().add(i));
            let q = _mm256_div_pd(_mm256_cvtps_pd(v), d);
            let r = _mm256_round_pd(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                cvt_integral_pd_epi64(r),
            );
        }
        i += 4;
    }
    while i < n {
        out[i] = (src[i] as f64 / divisor).round_ties_even() as i64;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn sz_quantize_f64_avx2(src: &[f64], divisor: f64, out: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { sz_quantize_f64_avx2_impl(src, divisor, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sz_quantize_f64_avx2_impl(src: &[f64], divisor: f64, out: &mut [i64]) {
    assert_eq!(src.len(), out.len());
    let n = src.len();
    let d = _mm256_set1_pd(divisor);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the load and store; see the f32
        // variant for the exactness argument.
        unsafe {
            let v = _mm256_loadu_pd(src.as_ptr().add(i));
            let q = _mm256_div_pd(v, d);
            let r = _mm256_round_pd(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                cvt_integral_pd_epi64(r),
            );
        }
        i += 4;
    }
    while i < n {
        out[i] = (src[i] / divisor).round_ties_even() as i64;
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn sz_symbolize_avx2(
    q: &[i64],
    radius: i64,
    escape: u32,
    out: &mut [u32],
    outliers: &mut Vec<u64>,
) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { sz_symbolize_avx2_impl(q, radius, escape, out, outliers) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sz_symbolize_avx2_impl(
    q: &[i64],
    radius: i64,
    escape: u32,
    out: &mut [u32],
    outliers: &mut Vec<u64>,
) {
    assert_eq!(q.len(), out.len());
    let n = q.len();
    let rad = _mm256_set1_epi64x(radius);
    let esc = _mm256_set1_epi64x(escape as i64);
    let neg1 = _mm256_set1_epi64x(-1);
    // Low dword of each qword, compacted into the low 128 bits.
    let pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the load and the 4-dword store.
        unsafe {
            let d = _mm256_loadu_si256(q.as_ptr().add(i) as *const __m256i);
            let s = _mm256_add_epi64(d, rad);
            let ok = _mm256_and_si256(_mm256_cmpgt_epi64(s, neg1), _mm256_cmpgt_epi64(esc, s));
            // In-range sums fit in 32 bits (escape < 2^32), so the low
            // dword of each blended qword is the symbol.
            let sym = _mm256_blendv_epi8(esc, s, ok);
            let packed = _mm256_permutevar8x32_epi32(sym, pick);
            _mm_storeu_si128(
                out.as_mut_ptr().add(i) as *mut __m128i,
                _mm256_castsi256_si128(packed),
            );
            let mask = _mm256_movemask_pd(_mm256_castsi256_pd(ok)) as u32;
            if mask != 0xF {
                for lane in 0..4 {
                    if mask & (1 << lane) == 0 {
                        outliers.push((i + lane) as u64);
                    }
                }
            }
        }
        i += 4;
    }
    for (j, &d) in q[i..].iter().enumerate() {
        let s = d.wrapping_add(radius);
        if s >= 0 && s < escape as i64 {
            out[i + j] = s as u32;
        } else {
            out[i + j] = escape;
            outliers.push((i + j) as u64);
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn slice_sub_avx2(cur: &mut [i64], prev: &[i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { slice_sub_avx2_impl(cur, prev) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn slice_sub_avx2_impl(cur: &mut [i64], prev: &[i64]) {
    assert_eq!(cur.len(), prev.len());
    let n = cur.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds both unaligned accesses.
        unsafe {
            let c = _mm256_loadu_si256(cur.as_ptr().add(i) as *const __m256i);
            let p = _mm256_loadu_si256(prev.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                cur.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_sub_epi64(c, p),
            );
        }
        i += 4;
    }
    while i < n {
        cur[i] = cur[i].wrapping_sub(prev[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn slice_add_avx2(cur: &mut [i64], prev: &[i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { slice_add_avx2_impl(cur, prev) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn slice_add_avx2_impl(cur: &mut [i64], prev: &[i64]) {
    assert_eq!(cur.len(), prev.len());
    let n = cur.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds both unaligned accesses.
        unsafe {
            let c = _mm256_loadu_si256(cur.as_ptr().add(i) as *const __m256i);
            let p = _mm256_loadu_si256(prev.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                cur.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_add_epi64(c, p),
            );
        }
        i += 4;
    }
    while i < n {
        cur[i] = cur[i].wrapping_add(prev[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn line_backward_diff_avx2(p: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { line_backward_diff_avx2_impl(p) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn line_backward_diff_avx2_impl(p: &mut [i64]) {
    // High→low chunks: the window [i-4, i) reads [i-5, i-1), whose
    // values are only stored by this same chunk *after* both loads.
    let n = p.len();
    let mut i = n;
    while i >= 5 {
        // SAFETY: i >= 5 keeps both windows [i-4, i) and [i-5, i-1)
        // inside the slice; loads precede the store.
        unsafe {
            let cur = _mm256_loadu_si256(p.as_ptr().add(i - 4) as *const __m256i);
            let prev = _mm256_loadu_si256(p.as_ptr().add(i - 5) as *const __m256i);
            _mm256_storeu_si256(
                p.as_mut_ptr().add(i - 4) as *mut __m256i,
                _mm256_sub_epi64(cur, prev),
            );
        }
        i -= 4;
    }
    for j in (1..i).rev() {
        p[j] = p[j].wrapping_sub(p[j - 1]);
    }
}

#[cfg(target_arch = "x86_64")]
fn line_prefix_sum_avx2(p: &mut [i64]) {
    // SAFETY: only reachable through AVX2_TABLE (feature verified).
    unsafe { line_prefix_sum_avx2_impl(p) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn line_prefix_sum_avx2_impl(p: &mut [i64]) {
    // In-register inclusive scan: two log-steps of lane-shifted adds,
    // plus a broadcast carry from the previous chunk. Wrapping i64
    // addition is associative, so any association is byte-identical to
    // the scalar left fold.
    let n = p.len();
    let zero = _mm256_setzero_si256();
    let mut carry = zero;
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the unaligned load and store.
        unsafe {
            let v = _mm256_loadu_si256(p.as_ptr().add(i) as *const __m256i);
            // Shift lanes up by one (zero fill): [0, v0, v1, v2].
            let t1 = _mm256_blend_epi32(_mm256_permute4x64_epi64(v, 0x90), zero, 0x03);
            let v1 = _mm256_add_epi64(v, t1);
            // Shift lanes up by two: [0, 0, v1_0, v1_1].
            let t2 = _mm256_blend_epi32(_mm256_permute4x64_epi64(v1, 0x40), zero, 0x0F);
            let v2 = _mm256_add_epi64(v1, t2);
            let out = _mm256_add_epi64(v2, carry);
            _mm256_storeu_si256(p.as_mut_ptr().add(i) as *mut __m256i, out);
            carry = _mm256_permute4x64_epi64(out, 0xFF); // broadcast lane 3
        }
        i += 4;
    }
    for j in i.max(1)..n {
        p[j] = p[j].wrapping_add(p[j - 1]);
    }
}

// ---------------------------------------------------------------------------
// Tests (tier cross-checks live in tests/simd_identity.rs; these cover
// the scalar reference semantics and the dispatch plumbing).
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_cached_and_consistent() {
        let a = kernels();
        let b = kernels();
        assert!(std::ptr::eq(a, b));
        assert!(available_tiers().iter().any(|t| t.tier == SimdTier::Scalar));
    }

    #[test]
    fn scalar_table_is_always_available() {
        assert_eq!(scalar_kernels().tier, SimdTier::Scalar);
        assert!(kernels_for_tier(SimdTier::Scalar).is_some());
    }

    #[test]
    fn negabinary_roundtrip_all_tiers() {
        let vals: Vec<i64> = (-100..100)
            .map(|i| i * 0x1234_5679)
            .chain([i64::MIN / 4, i64::MAX / 4, 0, 1, -1])
            .collect();
        for k in available_tiers() {
            let mut nb = vec![0u64; vals.len()];
            let mut back = vec![0i64; vals.len()];
            (k.negabinary_fwd)(&vals, &mut nb);
            (k.negabinary_inv)(&nb, &mut back);
            assert_eq!(back, vals, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn bit_transpose_matches_naive_extraction() {
        let mut a = [0u64; 64];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(9);
        }
        let orig = a;
        for k in available_tiers() {
            let mut t = orig;
            (k.bit_transpose64)(&mut t);
            for (r, row) in t.iter().enumerate() {
                for (c, col) in orig.iter().enumerate() {
                    assert_eq!(
                        (row >> c) & 1,
                        (col >> r) & 1,
                        "tier {:?} bit ({r},{c})",
                        k.tier
                    );
                }
            }
            // Involution.
            (k.bit_transpose64)(&mut t);
            assert_eq!(t, orig, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn zfp_transform_tiers_match_scalar() {
        for d in 1..=3usize {
            let n = 4usize.pow(d as u32);
            let block: Vec<i64> = (0..n)
                .map(|i| ((i as i64 * 977) % 4001 - 2000) << 20)
                .collect();
            let mut reference = block.clone();
            zfp_fwd_transform_scalar(&mut reference, d);
            for k in available_tiers() {
                let mut b = block.clone();
                (k.zfp_fwd_transform)(&mut b, d);
                assert_eq!(b, reference, "fwd tier {:?} d={d}", k.tier);
                (k.zfp_inv_transform)(&mut b, d);
                let mut roundtrip = reference.clone();
                zfp_inv_transform_scalar(&mut roundtrip, d);
                assert_eq!(b, roundtrip, "inv tier {:?} d={d}", k.tier);
            }
        }
    }

    #[test]
    fn histogram_fill_tiers_match() {
        let keys: Vec<u32> = (0..10_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 300)
            .collect();
        let mut reference = vec![0u64; 257];
        histogram_fill_scalar(&keys, 256, &mut reference);
        for k in available_tiers() {
            let mut row = vec![0u64; 257];
            (k.histogram_fill)(&keys, 256, &mut row);
            assert_eq!(row, reference, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn quantize_and_dequantize_tiers_match() {
        let n = 1003;
        let coeffs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() * 5.0).collect();
        let levels: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let bins = [0.01, 0.005, 0.0025];
        let mut reference = vec![0.0f64; n];
        quantize_quotients_scalar(&coeffs, &levels, &bins, &mut reference);
        for k in available_tiers() {
            let mut out = vec![0.0f64; n];
            (k.quantize_quotients)(&coeffs, &levels, &bins, &mut out);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tier {:?}",
                k.tier
            );
        }
        let syms: Vec<u32> = reference
            .iter()
            .map(|&q| (q as i64 + 2048).clamp(0, 4095) as u32)
            .collect();
        let mut dref = vec![0.0f64; n];
        dequantize_vals_scalar(&syms, &levels, &bins, 2048, 4095, &mut dref);
        for k in available_tiers() {
            let mut out = vec![0.0f64; n];
            (k.dequantize_vals)(&syms, &levels, &bins, 2048, 4095, &mut out);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dref.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tier {:?}",
                k.tier
            );
        }
    }

    #[test]
    fn prefix_and_diff_are_inverse_on_all_tiers() {
        let data: Vec<i64> = (0..517).map(|i| (i * i) as i64 - 1000).collect();
        for k in available_tiers() {
            let mut p = data.clone();
            (k.line_backward_diff)(&mut p);
            (k.line_prefix_sum)(&mut p);
            assert_eq!(p, data, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn zfp_amax_tiers_match() {
        // Odd length exercises the scalar tail; values span signs and zero.
        let f64s: Vec<f64> = (0..1003)
            .map(|i| ((i as f64) * 0.7).sin() * 1e6 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f32s: Vec<f32> = f64s.iter().map(|&v| v as f32).collect();
        let ref64 = zfp_amax_f64_scalar(&f64s);
        let ref32 = zfp_amax_f32_scalar(&f32s);
        for k in available_tiers() {
            assert_eq!(
                (k.zfp_amax_f64)(&f64s).to_bits(),
                ref64.to_bits(),
                "tier {:?}",
                k.tier
            );
            assert_eq!(
                (k.zfp_amax_f32)(&f32s).to_bits(),
                ref32.to_bits(),
                "tier {:?}",
                k.tier
            );
        }
        // Non-finite classification: any NaN → NaN on every tier; inf propagates.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut v = f64s.clone();
            v[501] = bad;
            for k in available_tiers() {
                let got = (k.zfp_amax_f64)(&v);
                assert!(!got.is_finite(), "tier {:?} bad={bad}", k.tier);
                assert_eq!(got.is_nan(), bad.is_nan(), "tier {:?} bad={bad}", k.tier);
            }
            let mut v = f32s.clone();
            v[501] = bad as f32;
            for k in available_tiers() {
                let got = (k.zfp_amax_f32)(&v);
                assert!(!got.is_finite(), "tier {:?} bad={bad}", k.tier);
                assert_eq!(got.is_nan(), bad.is_nan(), "tier {:?} bad={bad}", k.tier);
            }
        }
        for k in available_tiers() {
            assert_eq!((k.zfp_amax_f64)(&[]), 0.0, "tier {:?}", k.tier);
            assert_eq!((k.zfp_amax_f32)(&[]), 0.0, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn zfp_fixedpoint_tiers_match() {
        // Magnitudes up to ~2^57 — the zfp fixed-point range (FRACBITS = 57) —
        // including exact halves to pin the ties-to-even behavior.
        let mut f64s: Vec<f64> = (0..1003)
            .map(|i| ((i as f64) * 0.37).sin() * (i as f64 % 97.0 + 0.25))
            .collect();
        f64s.extend([0.0, -0.0, 0.5, -0.5, 1.5, 2.5, -2.5]);
        let f32s: Vec<f32> = f64s.iter().map(|&v| v as f32).collect();
        for scale in [1.0, 1024.0, (1u64 << 50) as f64, (1u64 << 57) as f64 / 97.0] {
            let mut ref64 = vec![0i64; f64s.len()];
            zfp_fixedpoint_f64_scalar(&f64s, scale, &mut ref64);
            let mut ref32 = vec![0i64; f32s.len()];
            zfp_fixedpoint_f32_scalar(&f32s, scale, &mut ref32);
            for k in available_tiers() {
                let mut out = vec![0i64; f64s.len()];
                (k.zfp_fixedpoint_f64)(&f64s, scale, &mut out);
                assert_eq!(out, ref64, "tier {:?} scale {scale}", k.tier);
                let mut out = vec![0i64; f32s.len()];
                (k.zfp_fixedpoint_f32)(&f32s, scale, &mut out);
                assert_eq!(out, ref32, "tier {:?} scale {scale}", k.tier);
            }
        }
    }

    #[test]
    fn min_max_tiers_match() {
        let f64s: Vec<f64> = (0..1003)
            .map(|i| ((i as f64) * 0.61).sin() * 37.0 - 3.0)
            .collect();
        let f32s: Vec<f32> = f64s.iter().map(|&v| v as f32).collect();
        let ref64 = min_max_f64_scalar(&f64s);
        let ref32 = min_max_f32_scalar(&f32s);
        for k in available_tiers() {
            let got = (k.min_max_f64)(&f64s);
            assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (ref64.0.to_bits(), ref64.1.to_bits()),
                "tier {:?}",
                k.tier
            );
            let got = (k.min_max_f32)(&f32s);
            assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (ref32.0.to_bits(), ref32.1.to_bits()),
                "tier {:?}",
                k.tier
            );
        }
        // NaN anywhere poisons the pair; infinities propagate.
        let mut v = f64s.clone();
        v[77] = f64::NAN;
        for k in available_tiers() {
            let (mn, mx) = (k.min_max_f64)(&v);
            assert!(mn.is_nan() && mx.is_nan(), "tier {:?}", k.tier);
        }
        let mut v = f64s.clone();
        v[501] = f64::NEG_INFINITY;
        v[502] = f64::INFINITY;
        for k in available_tiers() {
            assert_eq!(
                (k.min_max_f64)(&v),
                (f64::NEG_INFINITY, f64::INFINITY),
                "tier {:?}",
                k.tier
            );
        }
        for k in available_tiers() {
            assert_eq!(
                (k.min_max_f32)(&[]),
                (f32::INFINITY, f32::NEG_INFINITY),
                "tier {:?}",
                k.tier
            );
        }
    }

    #[test]
    fn sz_quantize_tiers_match() {
        let mut f64s: Vec<f64> = (0..1003)
            .map(|i| ((i as f64) * 0.53).sin() * 1e8 - 40.0)
            .collect();
        f64s.extend([0.0, -0.0, 0.5, -0.5, 1.5, -2.5]);
        let f32s: Vec<f32> = f64s.iter().map(|&v| v as f32).collect();
        for divisor in [1.0, 0.001, 7.25e-10, 1e6] {
            let mut ref64 = vec![0i64; f64s.len()];
            sz_quantize_f64_scalar(&f64s, divisor, &mut ref64);
            let mut ref32 = vec![0i64; f32s.len()];
            sz_quantize_f32_scalar(&f32s, divisor, &mut ref32);
            for k in available_tiers() {
                let mut out = vec![0i64; f64s.len()];
                (k.sz_quantize_f64)(&f64s, divisor, &mut out);
                assert_eq!(out, ref64, "tier {:?} divisor {divisor}", k.tier);
                let mut out = vec![0i64; f32s.len()];
                (k.sz_quantize_f32)(&f32s, divisor, &mut out);
                assert_eq!(out, ref32, "tier {:?} divisor {divisor}", k.tier);
            }
        }
    }

    #[test]
    fn sz_symbolize_tiers_match() {
        // Mix of in-range values, outliers on both sides, and sums past
        // 2^32 (which must escape — truncating them to u32 would alias a
        // small symbol and break the error bound).
        let radius = 2048i64;
        let escape = 4095u32;
        let mut q: Vec<i64> = (0..1003).map(|i| ((i * 37) % 5000) as i64 - 2500).collect();
        q[13] = i64::MAX - 100;
        q[14] = i64::MIN + 100;
        q[15] = (1i64 << 32) + 5 - radius; // s = 2^32 + 5: truncation trap
        q[16] = escape as i64 - radius; // s == escape: boundary, must escape
        q[17] = -radius; // s == 0: in range
        let mut ref_sym = vec![0u32; q.len()];
        let mut ref_out = Vec::new();
        sz_symbolize_scalar(&q, radius, escape, &mut ref_sym, &mut ref_out);
        assert!(ref_out.contains(&15) && ref_out.contains(&16) && !ref_out.contains(&17));
        for k in available_tiers() {
            let mut sym = vec![0u32; q.len()];
            let mut out = Vec::new();
            (k.sz_symbolize)(&q, radius, escape, &mut sym, &mut out);
            assert_eq!(sym, ref_sym, "tier {:?}", k.tier);
            assert_eq!(out, ref_out, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn ties_round_to_even() {
        let src = [0.5, 1.5, 2.5, -0.5, -1.5, -2.5, 3.5];
        for k in available_tiers() {
            let mut out = vec![0.0f64; src.len()];
            (k.div_round)(&src, 1.0, &mut out);
            assert_eq!(
                out,
                vec![0.0, 2.0, 2.0, -0.0, -2.0, -2.0, 4.0],
                "tier {:?}",
                k.tier
            );
        }
    }
}
