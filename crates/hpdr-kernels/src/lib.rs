//! # hpdr-kernels — shared device primitives
//!
//! The reduction pipelines (Huffman-X, ZFP-X, MGARD-X) share a small set
//! of data-parallel building blocks, each expressed against the
//! [`hpdr_core::DeviceAdapter`] trait so they run unchanged on every
//! adapter:
//!
//! * [`scan`] — exclusive/inclusive prefix sums (serialization offsets);
//! * [`histogram`] — replicated-private-copy histograms;
//! * [`sort`] — radix and device-parallel sorts;
//! * [`reduce`] — min/max/sum/max-abs-diff reductions;
//! * [`bitstream`] — portable LSB-first bit streams;
//! * [`pack`] — parallel variable-length bit packing (atomic-OR scheme);
//! * [`blocks`] — n-dimensional block gather/scatter with edge padding;
//! * [`simd`] — runtime-dispatched SIMD kernel tiers (scalar/SSE2/AVX2)
//!   for the codec hot loops, byte-identical across tiers.
//
// Kernels write disjoint index sets of shared outputs through
// `hpdr_core::SharedSlice` (each call site documents its disjointness
// argument); together with `hpdr-core/src/shared.rs` this crate forms the
// workspace's sanctioned `unsafe` island under `unsafe_code = "deny"`.
#![allow(unsafe_code)]

pub mod bitstream;
pub mod blocks;
pub mod histogram;
pub mod pack;
pub mod reduce;
pub mod scan;
pub mod simd;
pub mod sort;

pub use bitstream::{BitReader, BitWriter};
pub use blocks::BlockGrid;
pub use histogram::{histogram_u32, histogram_u8};
pub use pack::pack_bits;
pub use reduce::{max_abs, max_abs_diff, min_max, sum_f64};
pub use scan::{exclusive_scan, exclusive_scan_serial, inclusive_scan_serial};
pub use simd::{kernels, kernels_for_par, KernelDispatch, SimdTier};
pub use sort::{parallel_sort_u64, radix_sort_by_key};
