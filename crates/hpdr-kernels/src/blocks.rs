//! N-dimensional block decomposition for the Locality abstraction
//! (paper Fig. 3a — customizable block sizes over 1–4D domains).

use hpdr_core::Shape;

/// Rank bound for the stack-allocated index scratch (arrays are 1–4D;
/// headroom costs nothing).
const MAX_RANK: usize = 8;

/// A grid of fixed-size blocks tiling an n-dimensional array.
#[derive(Debug, Clone)]
pub struct BlockGrid {
    shape: Shape,
    block: Vec<usize>,
    /// Blocks along each dimension.
    counts: Vec<usize>,
}

impl BlockGrid {
    pub fn new(shape: &Shape, block_dims: &[usize]) -> BlockGrid {
        assert_eq!(shape.ndims(), block_dims.len(), "block rank mismatch");
        assert!(block_dims.len() <= MAX_RANK, "rank exceeds {MAX_RANK}");
        assert!(block_dims.iter().all(|&b| b > 0), "zero block dim");
        let counts = shape
            .dims()
            .iter()
            .zip(block_dims)
            .map(|(&d, &b)| d.div_ceil(b))
            .collect();
        BlockGrid {
            shape: shape.clone(),
            block: block_dims.to_vec(),
            counts,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.counts.iter().product()
    }

    pub fn block_dims(&self) -> &[usize] {
        &self.block
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Elements in one full block.
    pub fn block_elements(&self) -> usize {
        self.block.iter().product()
    }

    /// Origin (multi-index) of block `b`.
    pub fn origin(&self, b: usize) -> Vec<usize> {
        let mut origin = [0usize; MAX_RANK];
        self.origin_into(b, &mut origin);
        origin[..self.counts.len()].to_vec()
    }

    fn origin_into(&self, b: usize, origin: &mut [usize; MAX_RANK]) {
        debug_assert!(b < self.num_blocks());
        let mut rem = b;
        for k in (0..self.counts.len()).rev() {
            origin[k] = (rem % self.counts[k]) * self.block[k];
            rem /= self.counts[k];
        }
    }

    /// Gather block `b` into `out` (length = block_elements), replicating
    /// edge values for partial blocks (ZFP-style padding).
    pub fn gather<T: Copy>(&self, data: &[T], b: usize, out: &mut [T]) {
        debug_assert_eq!(out.len(), self.block_elements());
        let mut origin = [0usize; MAX_RANK];
        self.origin_into(b, &mut origin);
        let dims = self.shape.dims();
        let strides = self.shape.strides();
        let nd = dims.len();
        // Fast path — fully interior block: every lane maps straight into
        // the window, so the block is `rows` contiguous runs of the
        // innermost block dim. An odometer over the outer dims replaces
        // the per-lane multi-index decode (div/mod per dimension), which
        // dominates encode-side time on large grids.
        if (0..nd).all(|k| origin[k] + self.block[k] <= dims[k]) {
            let row = self.block[nd - 1];
            let base: usize = (0..nd).map(|k| origin[k] * strides[k]).sum();
            let mut idx = [0usize; MAX_RANK];
            let mut src = base;
            for chunk in out.chunks_exact_mut(row) {
                chunk.copy_from_slice(&data[src..src + row]);
                for k in (0..nd - 1).rev() {
                    idx[k] += 1;
                    src += strides[k];
                    if idx[k] < self.block[k] {
                        break;
                    }
                    src -= self.block[k] * strides[k];
                    idx[k] = 0;
                }
            }
            return;
        }
        // Edge path: clamped per-lane indexing (replicate padding).
        let mut local = [0usize; MAX_RANK];
        for (slot, item) in out.iter_mut().enumerate() {
            // Decode local multi-index within the block (row-major).
            let mut rem = slot;
            for k in (0..nd).rev() {
                local[k] = rem % self.block[k];
                rem /= self.block[k];
            }
            let mut flat = 0usize;
            for k in 0..nd {
                // Clamp to the array edge: replicate padding.
                let idx = (origin[k] + local[k]).min(dims[k] - 1);
                flat += idx * strides[k];
            }
            *item = data[flat];
        }
    }

    /// Scatter block `b` from `src` back into `data`, skipping padded
    /// (out-of-domain) lanes.
    pub fn scatter<T: Copy>(&self, data: &mut [T], b: usize, src: &[T]) {
        debug_assert_eq!(src.len(), self.block_elements());
        let mut origin = [0usize; MAX_RANK];
        self.origin_into(b, &mut origin);
        let dims = self.shape.dims();
        let strides = self.shape.strides();
        let nd = dims.len();
        let mut local = [0usize; MAX_RANK];
        'slot: for (slot, &v) in src.iter().enumerate() {
            let mut rem = slot;
            for k in (0..nd).rev() {
                local[k] = rem % self.block[k];
                rem /= self.block[k];
            }
            let mut flat = 0usize;
            for k in 0..nd {
                let idx = origin[k] + local[k];
                if idx >= dims[k] {
                    continue 'slot; // padded lane
                }
                flat += idx * strides[k];
            }
            data[flat] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_origins_2d() {
        let g = BlockGrid::new(&Shape::new(&[5, 6]), &[4, 4]);
        assert_eq!(g.num_blocks(), 4); // 2x2 blocks
        assert_eq!(g.origin(0), vec![0, 0]);
        assert_eq!(g.origin(1), vec![0, 4]);
        assert_eq!(g.origin(2), vec![4, 0]);
        assert_eq!(g.origin(3), vec![4, 4]);
        assert_eq!(g.block_elements(), 16);
    }

    #[test]
    fn gather_scatter_roundtrip_exact_fit() {
        let shape = Shape::new(&[8, 8]);
        let g = BlockGrid::new(&shape, &[4, 4]);
        let data: Vec<u32> = (0..64).collect();
        let mut rebuilt = vec![0u32; 64];
        let mut block = vec![0u32; 16];
        for b in 0..g.num_blocks() {
            g.gather(&data, b, &mut block);
            g.scatter(&mut rebuilt, b, &block);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn gather_scatter_roundtrip_partial_blocks() {
        let shape = Shape::new(&[5, 7, 3]);
        let g = BlockGrid::new(&shape, &[4, 4, 4]);
        let n = shape.num_elements();
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let mut rebuilt = vec![-1.0f32; n];
        let mut block = vec![0f32; g.block_elements()];
        for b in 0..g.num_blocks() {
            g.gather(&data, b, &mut block);
            g.scatter(&mut rebuilt, b, &block);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn padding_replicates_edge() {
        let shape = Shape::new(&[3]);
        let g = BlockGrid::new(&shape, &[4]);
        let data = [10.0f64, 20.0, 30.0];
        let mut block = [0f64; 4];
        g.gather(&data, 0, &mut block);
        assert_eq!(block, [10.0, 20.0, 30.0, 30.0]);
    }

    #[test]
    fn block_content_is_row_major_window() {
        let shape = Shape::new(&[4, 4]);
        let g = BlockGrid::new(&shape, &[2, 2]);
        let data: Vec<u32> = (0..16).collect();
        let mut block = vec![0u32; 4];
        g.gather(&data, 1, &mut block); // origin (0, 2)
        assert_eq!(block, vec![2, 3, 6, 7]);
        g.gather(&data, 2, &mut block); // origin (2, 0)
        assert_eq!(block, vec![8, 9, 12, 13]);
    }
}
