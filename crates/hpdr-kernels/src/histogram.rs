//! Device-parallel histogram (paper §IV-B, citing the replication-based
//! GPU histogram of Gómez-Luna et al.).
//!
//! Each group accumulates a private sub-histogram over its chunk (no
//! atomics on the hot path), then a reduction stage sums the replicas —
//! the whole thing expressed on the Global abstraction's DEM stages.

use hpdr_core::{DeviceAdapter, SharedSlice};

/// Count occurrences of each key in `0..bins`. Keys `>= bins` are counted
/// in the `overflow` slot returned alongside the histogram (callers treat
/// those as outliers).
pub fn histogram_u32(adapter: &dyn DeviceAdapter, keys: &[u32], bins: usize) -> (Vec<u64>, u64) {
    let n = keys.len();
    if n == 0 {
        return (vec![0; bins], 0);
    }
    let replicas = adapter.info().threads.clamp(1, 64);
    let chunk = n.div_ceil(replicas);

    // Stage 1: private replica histograms (disjoint rows), filled by the
    // dispatched kernel tier (banked on SIMD tiers; identical counts).
    // Oversubscribed launches stay scalar (see `kernels_for_par`).
    let fill = crate::simd::kernels_for_par(replicas).histogram_fill;
    let mut private = vec![0u64; replicas * (bins + 1)];
    {
        let private_sh = SharedSlice::new(&mut private);
        adapter.dem(replicas, &|r| {
            let lo = (r * chunk).min(n);
            let hi = ((r + 1) * chunk).min(n);
            // Safety: replica r writes only its own row.
            let row = unsafe { private_sh.slice_mut(r * (bins + 1), bins + 1) };
            fill(&keys[lo..hi], bins, row);
        });
    }

    // Stage 2: column-wise reduction of replicas.
    let mut hist = vec![0u64; bins];
    let mut overflow = 0u64;
    {
        let hist_sh = SharedSlice::new(&mut hist);
        adapter.dem(bins, &|b| {
            let mut acc = 0u64;
            for r in 0..replicas {
                acc += private[r * (bins + 1) + b];
            }
            // Safety: each bin id writes only its own slot.
            unsafe { hist_sh.write(b, acc) };
        });
    }
    for r in 0..replicas {
        overflow += private[r * (bins + 1) + bins];
    }
    (hist, overflow)
}

/// Byte histogram (256 bins, no overflow possible). Same replicated
/// private-copy scheme as [`histogram_u32`], but the rows are filled by
/// the byte-specialized kernel — the Huffman-X hot path over raw bytes.
pub fn histogram_u8(adapter: &dyn DeviceAdapter, bytes: &[u8]) -> Vec<u64> {
    let n = bytes.len();
    if n == 0 {
        return vec![0; 256];
    }
    let replicas = adapter.info().threads.clamp(1, 64);
    let chunk = n.div_ceil(replicas);
    let fill = crate::simd::kernels_for_par(replicas).byte_histogram_fill;
    let mut private = vec![0u64; replicas * 256];
    {
        let private_sh = SharedSlice::new(&mut private);
        adapter.dem(replicas, &|r| {
            let lo = (r * chunk).min(n);
            let hi = ((r + 1) * chunk).min(n);
            // Safety: replica r writes only its own row.
            let row = unsafe { private_sh.slice_mut(r * 256, 256) };
            fill(&bytes[lo..hi], row);
        });
    }
    let mut hist = vec![0u64; 256];
    {
        let hist_sh = SharedSlice::new(&mut hist);
        adapter.dem(256, &|b| {
            let mut acc = 0u64;
            for r in 0..replicas {
                acc += private[r * 256 + b];
            }
            // Safety: each bin id writes only its own slot.
            unsafe { hist_sh.write(b, acc) };
        });
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn reference(keys: &[u32], bins: usize) -> (Vec<u64>, u64) {
        let mut h = vec![0u64; bins];
        let mut over = 0;
        for &k in keys {
            if (k as usize) < bins {
                h[k as usize] += 1;
            } else {
                over += 1;
            }
        }
        (h, over)
    }

    #[test]
    fn matches_reference_parallel() {
        let adapter = CpuParallelAdapter::new(4);
        let keys: Vec<u32> = (0..200_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 300)
            .collect();
        assert_eq!(histogram_u32(&adapter, &keys, 256), reference(&keys, 256));
    }

    #[test]
    fn matches_reference_serial() {
        let adapter = SerialAdapter::new();
        let keys = vec![0u32, 1, 1, 2, 2, 2, 255, 256, 1000];
        assert_eq!(histogram_u32(&adapter, &keys, 256), reference(&keys, 256));
    }

    #[test]
    fn empty_input() {
        let adapter = SerialAdapter::new();
        let (h, over) = histogram_u32(&adapter, &[], 16);
        assert_eq!(h, vec![0; 16]);
        assert_eq!(over, 0);
    }

    #[test]
    fn counts_sum_to_input_length() {
        let adapter = CpuParallelAdapter::new(8);
        let keys: Vec<u32> = (0..77_777u32).map(|i| i % 501).collect();
        let (h, over) = histogram_u32(&adapter, &keys, 128);
        assert_eq!(h.iter().sum::<u64>() + over, keys.len() as u64);
    }
}
