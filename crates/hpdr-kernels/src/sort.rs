//! Key sorting primitives.
//!
//! Codebook generation sorts (frequency, symbol) pairs (paper Alg. 2
//! line 2). Dictionary sizes are small (≤ 64 Ki symbols), but we provide
//! an LSD radix sort so the operation stays O(n) and deterministic, plus
//! a parallel merge path for large key arrays used in tests/benches.

use hpdr_core::DeviceAdapter;

/// Stable LSD radix sort of `(key, value)` pairs by `key`, ascending.
pub fn radix_sort_by_key(pairs: &mut Vec<(u64, u32)>) {
    let n = pairs.len();
    if n <= 1 {
        return;
    }
    let mut src = std::mem::take(pairs);
    let mut dst = vec![(0u64, 0u32); n];
    for shift in (0..64).step_by(8) {
        let mut counts = [0usize; 256];
        for &(k, _) in &src {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        // Skip passes where all keys share the same byte.
        if counts.contains(&n) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for b in 0..256 {
            offsets[b] = acc;
            acc += counts[b];
        }
        for &(k, v) in &src {
            let b = ((k >> shift) & 0xFF) as usize;
            dst[offsets[b]] = (k, v);
            offsets[b] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *pairs = src;
}

/// Device-parallel sort of a `u64` slice: chunks are sorted with DEM
/// parallelism, then merged on the host (k-way via repeated two-way).
pub fn parallel_sort_u64(adapter: &dyn DeviceAdapter, data: &mut Vec<u64>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let chunks = adapter.info().threads.clamp(1, 64);
    let chunk = n.div_ceil(chunks);
    {
        use hpdr_core::SharedSlice;
        let data_sh = SharedSlice::new(data.as_mut_slice());
        adapter.dem(chunks, &|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            if lo < hi {
                // Safety: chunks sort disjoint ranges in place.
                let range = unsafe { data_sh.slice_mut(lo, hi - lo) };
                range.sort_unstable();
            }
        });
    }
    // Host-side merge of sorted runs.
    let mut runs: Vec<Vec<u64>> = (0..chunks)
        .filter_map(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            (lo < hi).then(|| data[lo..hi].to_vec())
        })
        .collect();
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(&a, &b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    *data = runs.pop().unwrap_or_default();
}

fn merge_two(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::CpuParallelAdapter;

    #[test]
    fn radix_sorts_ascending() {
        let mut pairs: Vec<(u64, u32)> = (0..10_000u32)
            .map(|i| (((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 3, i))
            .collect();
        radix_sort_by_key(&mut pairs);
        for w in pairs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn radix_is_stable() {
        let mut pairs = vec![(5u64, 0u32), (5, 1), (3, 2), (5, 3), (3, 4)];
        radix_sort_by_key(&mut pairs);
        assert_eq!(pairs, vec![(3, 2), (3, 4), (5, 0), (5, 1), (5, 3)]);
    }

    #[test]
    fn radix_handles_trivial() {
        let mut empty: Vec<(u64, u32)> = vec![];
        radix_sort_by_key(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![(7u64, 1u32)];
        radix_sort_by_key(&mut one);
        assert_eq!(one, vec![(7, 1)]);
    }

    #[test]
    fn parallel_sort_matches_std() {
        let adapter = CpuParallelAdapter::new(4);
        let mut data: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) % 1_000_003)
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        parallel_sort_u64(&adapter, &mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn parallel_sort_small() {
        let adapter = CpuParallelAdapter::new(8);
        for n in [0usize, 1, 2, 3, 17] {
            let mut data: Vec<u64> = (0..n as u64).rev().collect();
            parallel_sort_u64(&adapter, &mut data);
            let expect: Vec<u64> = (0..n as u64).collect();
            assert_eq!(data, expect);
        }
    }
}
