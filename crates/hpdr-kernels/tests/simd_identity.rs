//! Scalar ≡ SIMD byte-identity proptests for every dispatched kernel.
//!
//! Each test runs the same inputs through the scalar reference table and
//! every tier the host CPU exposes (`available_tiers()` always includes
//! scalar, so the suite degrades to self-consistency on non-x86 hosts or
//! under `HPDR_FORCE_SCALAR=1`). Lengths sweep 0, sub-lane-width, and
//! unaligned remainder tails; floating-point results are compared by bit
//! pattern, not tolerance — the contract is *identical* bytes, not close
//! ones.

use hpdr_kernels::simd::{available_tiers, scalar_kernels};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn negabinary_roundtrip_identical(src in vec(any::<i64>(), 0..200)) {
        let n = src.len();
        let mut want = vec![0u64; n];
        (scalar_kernels().negabinary_fwd)(&src, &mut want);
        for k in available_tiers() {
            let mut got = vec![0u64; n];
            (k.negabinary_fwd)(&src, &mut got);
            prop_assert_eq!(&got, &want, "fwd tier {:?} len {}", k.tier, n);
            let mut back = vec![0i64; n];
            (k.negabinary_inv)(&got, &mut back);
            prop_assert_eq!(&back, &src, "inv tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn bit_transpose_identical(seed in vec(any::<u64>(), 64)) {
        let mut base = [0u64; 64];
        base.copy_from_slice(&seed);
        let mut want = base;
        (scalar_kernels().bit_transpose64)(&mut want);
        for k in available_tiers() {
            let mut got = base;
            (k.bit_transpose64)(&mut got);
            prop_assert_eq!(got, want, "tier {:?}", k.tier);
        }
    }

    #[test]
    fn zfp_transforms_identical(seed in vec(any::<i64>(), 64), d in 1usize..=3) {
        // Shift into fixed-point range so wrapping behaviour is identical
        // AND representative; full-range wrapping is covered too since the
        // ladders are pure wrapping arithmetic either way.
        let n = 4usize.pow(d as u32);
        let block: Vec<i64> = seed[..n].iter().map(|&v| v >> 3).collect();
        let mut want_f = block.clone();
        (scalar_kernels().zfp_fwd_transform)(&mut want_f, d);
        let mut want_i = want_f.clone();
        (scalar_kernels().zfp_inv_transform)(&mut want_i, d);
        for k in available_tiers() {
            let mut got = block.clone();
            (k.zfp_fwd_transform)(&mut got, d);
            prop_assert_eq!(&got, &want_f, "fwd tier {:?} d {}", k.tier, d);
            (k.zfp_inv_transform)(&mut got, d);
            prop_assert_eq!(&got, &want_i, "inv tier {:?} d {}", k.tier, d);
        }
    }

    #[test]
    fn histogram_fill_identical(keys in vec(any::<u32>(), 0..300), bins in 1usize..2000) {
        // Mix full-range keys (overflow clamp) with in-range ones.
        let keys: Vec<u32> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| if i % 2 == 0 { k % (bins as u32 + 7) } else { k })
            .collect();
        let mut want = vec![0u64; bins + 1];
        (scalar_kernels().histogram_fill)(&keys, bins, &mut want);
        for k in available_tiers() {
            let mut got = vec![0u64; bins + 1];
            (k.histogram_fill)(&keys, bins, &mut got);
            prop_assert_eq!(&got, &want, "tier {:?} bins {}", k.tier, bins);
        }
    }

    #[test]
    fn byte_histogram_fill_identical(bytes in vec(any::<u8>(), 0..4000)) {
        let mut want = vec![0u64; 256];
        (scalar_kernels().byte_histogram_fill)(&bytes, &mut want);
        for k in available_tiers() {
            let mut got = vec![0u64; 256];
            (k.byte_histogram_fill)(&bytes, &mut got);
            prop_assert_eq!(&got, &want, "tier {:?} len {}", k.tier, bytes.len());
        }
    }

    #[test]
    fn bits_sums_identical(
        keys in vec(any::<u32>(), 0..300),
        lens in vec(1u32..64, 1..300),
    ) {
        let bytes: Vec<u8> = keys.iter().map(|&k| k as u8).collect();
        let want_code = (scalar_kernels().code_bits_sum)(&keys, &lens);
        let want_byte = (scalar_kernels().byte_bits_sum)(&bytes, &lens);
        for k in available_tiers() {
            prop_assert_eq!(
                (k.code_bits_sum)(&keys, &lens),
                want_code,
                "code tier {:?}",
                k.tier
            );
            prop_assert_eq!(
                (k.byte_bits_sum)(&bytes, &lens),
                want_byte,
                "byte tier {:?}",
                k.tier
            );
        }
    }

    #[test]
    fn quantize_quotients_identical(
        coeffs in vec(any::<f64>(), 0..200),
        levels in vec(any::<u8>(), 200),
        raw_bins in vec(any::<f64>(), 1..9),
    ) {
        let n = coeffs.len();
        let bins: Vec<f64> = raw_bins.iter().map(|b| b.abs().max(1e-9)).collect();
        let levels = &levels[..n];
        let mut want = vec![0.0f64; n];
        (scalar_kernels().quantize_quotients)(&coeffs, levels, &bins, &mut want);
        for k in available_tiers() {
            let mut got = vec![0.0f64; n];
            (k.quantize_quotients)(&coeffs, levels, &bins, &mut got);
            let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn dequantize_vals_identical(
        syms in vec(any::<u32>(), 0..200),
        levels in vec(any::<u8>(), 200),
        raw_bins in vec(any::<f64>(), 1..9),
        radius in -(1i64 << 33)..(1i64 << 33),
        escape in any::<u32>(),
    ) {
        // Exercise both the vectorized small-radius path and the scalar
        // large-radius fallback inside the AVX2 wrapper.
        let n = syms.len();
        let bins: Vec<f64> = raw_bins.iter().map(|b| b.abs().max(1e-9)).collect();
        let levels = &levels[..n];
        let syms: Vec<u32> = syms
            .iter()
            .enumerate()
            .map(|(i, &s)| if i % 5 == 0 { escape } else { s })
            .collect();
        let mut want = vec![0.0f64; n];
        (scalar_kernels().dequantize_vals)(&syms, levels, &bins, radius, escape, &mut want);
        for k in available_tiers() {
            let mut got = vec![0.0f64; n];
            (k.dequantize_vals)(&syms, levels, &bins, radius, escape, &mut got);
            let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "tier {:?} radius {} len {}", k.tier, radius, n);
        }
    }

    #[test]
    fn div_round_identical(src in vec(any::<f64>(), 0..200), div in any::<f64>()) {
        let divisor = div.abs().max(1e-9);
        let n = src.len();
        let mut want = vec![0.0f64; n];
        (scalar_kernels().div_round)(&src, divisor, &mut want);
        for k in available_tiers() {
            let mut got = vec![0.0f64; n];
            (k.div_round)(&src, divisor, &mut got);
            let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn zfp_amax_identical(src in vec(any::<f64>(), 0..200), poison in any::<u8>()) {
        // Occasionally inject NaN/inf — the contract defines both.
        let mut src = src;
        if !src.is_empty() && poison.is_multiple_of(4) {
            let i = poison as usize % src.len();
            src[i] = if poison.is_multiple_of(8) { f64::NAN } else { f64::INFINITY };
        }
        let src32: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let want64 = (scalar_kernels().zfp_amax_f64)(&src);
        let want32 = (scalar_kernels().zfp_amax_f32)(&src32);
        for k in available_tiers() {
            prop_assert_eq!(
                (k.zfp_amax_f64)(&src).to_bits(),
                want64.to_bits(),
                "f64 tier {:?}",
                k.tier
            );
            prop_assert_eq!(
                (k.zfp_amax_f32)(&src32).to_bits(),
                want32.to_bits(),
                "f32 tier {:?}",
                k.tier
            );
        }
    }

    #[test]
    fn zfp_fixedpoint_identical(
        src in vec(-1.0e6f64..1.0e6, 0..200),
        scale in 1.0e-3f64..1.0e9,
    ) {
        // |src * scale| < 1e15 ≪ 2^62: inside the kernel contract.
        let src32: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let n = src.len();
        let mut want64 = vec![0i64; n];
        (scalar_kernels().zfp_fixedpoint_f64)(&src, scale, &mut want64);
        let mut want32 = vec![0i64; n];
        (scalar_kernels().zfp_fixedpoint_f32)(&src32, scale, &mut want32);
        for k in available_tiers() {
            let mut got = vec![0i64; n];
            (k.zfp_fixedpoint_f64)(&src, scale, &mut got);
            prop_assert_eq!(&got, &want64, "f64 tier {:?} len {}", k.tier, n);
            let mut got = vec![0i64; n];
            (k.zfp_fixedpoint_f32)(&src32, scale, &mut got);
            prop_assert_eq!(&got, &want32, "f32 tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn min_max_identical(src in vec(any::<f64>(), 0..200)) {
        let src32: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let want64 = (scalar_kernels().min_max_f64)(&src);
        let want32 = (scalar_kernels().min_max_f32)(&src32);
        for k in available_tiers() {
            let got = (k.min_max_f64)(&src);
            prop_assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (want64.0.to_bits(), want64.1.to_bits()),
                "f64 tier {:?}",
                k.tier
            );
            let got = (k.min_max_f32)(&src32);
            prop_assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (want32.0.to_bits(), want32.1.to_bits()),
                "f32 tier {:?}",
                k.tier
            );
        }
    }

    #[test]
    fn sz_quantize_identical(
        src in vec(-1.0e9f64..1.0e9, 0..200),
        divisor in 1.0e-6f64..1.0e6,
    ) {
        // |src / divisor| < 1e15 ≪ 2^62: inside the kernel contract.
        let src32: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let n = src.len();
        let mut want64 = vec![0i64; n];
        (scalar_kernels().sz_quantize_f64)(&src, divisor, &mut want64);
        let mut want32 = vec![0i64; n];
        (scalar_kernels().sz_quantize_f32)(&src32, divisor, &mut want32);
        for k in available_tiers() {
            let mut got = vec![0i64; n];
            (k.sz_quantize_f64)(&src, divisor, &mut got);
            prop_assert_eq!(&got, &want64, "f64 tier {:?} len {}", k.tier, n);
            let mut got = vec![0i64; n];
            (k.sz_quantize_f32)(&src32, divisor, &mut got);
            prop_assert_eq!(&got, &want32, "f32 tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn sz_symbolize_identical(
        q in vec(any::<i64>(), 0..200),
        radius in 0i64..(1 << 31),
        escape in any::<u32>(),
    ) {
        let n = q.len();
        let mut want = vec![0u32; n];
        let mut want_out = Vec::new();
        (scalar_kernels().sz_symbolize)(&q, radius, escape, &mut want, &mut want_out);
        for k in available_tiers() {
            let mut got = vec![0u32; n];
            let mut got_out = Vec::new();
            (k.sz_symbolize)(&q, radius, escape, &mut got, &mut got_out);
            prop_assert_eq!(&got, &want, "symbols tier {:?} len {}", k.tier, n);
            prop_assert_eq!(&got_out, &want_out, "outliers tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn slice_ops_identical(cur in vec(any::<i64>(), 0..200), prev_seed in vec(any::<i64>(), 200)) {
        let n = cur.len();
        let prev = &prev_seed[..n];
        let mut want_sub = cur.clone();
        (scalar_kernels().slice_sub)(&mut want_sub, prev);
        let mut want_add = cur.clone();
        (scalar_kernels().slice_add)(&mut want_add, prev);
        for k in available_tiers() {
            let mut got = cur.clone();
            (k.slice_sub)(&mut got, prev);
            prop_assert_eq!(&got, &want_sub, "sub tier {:?} len {}", k.tier, n);
            // sub then add restores the input on every tier (wrapping).
            (k.slice_add)(&mut got, prev);
            prop_assert_eq!(&got, &cur, "sub∘add tier {:?} len {}", k.tier, n);
            let mut got = cur.clone();
            (k.slice_add)(&mut got, prev);
            prop_assert_eq!(&got, &want_add, "add tier {:?} len {}", k.tier, n);
        }
    }

    #[test]
    fn line_kernels_identical(line in vec(any::<i64>(), 0..200)) {
        let n = line.len();
        let mut want_diff = line.clone();
        (scalar_kernels().line_backward_diff)(&mut want_diff);
        let mut want_sum = line.clone();
        (scalar_kernels().line_prefix_sum)(&mut want_sum);
        for k in available_tiers() {
            let mut got = line.clone();
            (k.line_backward_diff)(&mut got);
            prop_assert_eq!(&got, &want_diff, "diff tier {:?} len {}", k.tier, n);
            // diff then prefix-sum restores the line on every tier.
            (k.line_prefix_sum)(&mut got);
            prop_assert_eq!(&got, &line, "diff∘sum tier {:?} len {}", k.tier, n);
            let mut got = line.clone();
            (k.line_prefix_sum)(&mut got);
            prop_assert_eq!(&got, &want_sum, "sum tier {:?} len {}", k.tier, n);
        }
    }
}

/// Lane-boundary sweep: every length from 0 through three vector widths,
/// deterministic data — the exact lengths where remainder-tail handling
/// goes wrong hide from random length sampling.
#[test]
fn remainder_tails_every_length_to_three_lanes() {
    for n in 0..=24usize {
        let src: Vec<i64> = (0..n as i64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64) >> 1)
            .collect();
        let mut want = vec![0u64; n];
        (scalar_kernels().negabinary_fwd)(&src, &mut want);
        let keys: Vec<u32> = src.iter().map(|&v| (v as u32) % 301).collect();
        let mut want_h = vec![0u64; 257];
        (scalar_kernels().histogram_fill)(&keys, 256, &mut want_h);
        for k in available_tiers() {
            let mut got = vec![0u64; n];
            (k.negabinary_fwd)(&src, &mut got);
            assert_eq!(got, want, "negabinary tier {:?} len {n}", k.tier);
            let mut got_h = vec![0u64; 257];
            (k.histogram_fill)(&keys, 256, &mut got_h);
            assert_eq!(got_h, want_h, "histogram tier {:?} len {n}", k.tier);
        }
    }
}
