// Shim crate: example binaries live in /examples at the workspace root.
