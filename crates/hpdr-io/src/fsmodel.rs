//! Shared-bandwidth parallel-filesystem model.
//!
//! Leadership-class filesystems deliver an aggregate peak bandwidth
//! (Summit GPFS: 2.5 TB/s; Frontier Lustre: 9.4 TB/s, paper §VI-B) that
//! writers share; each writer is additionally limited by its own NIC/OST
//! path. Metadata operations add a fixed per-block cost. This analytic
//! model captures exactly the mechanisms the weak/strong-scaling I/O
//! figures depend on: few writers → per-writer-bound; many writers →
//! aggregate-peak-bound; reduction shrinks bytes but adds compute time.

use hpdr_sim::Ns;

/// Parallel filesystem description (bandwidths in GB/s = bytes/ns).
#[derive(Debug, Clone, Copy)]
pub struct Filesystem {
    pub name: &'static str,
    /// Aggregate peak bandwidth.
    pub peak_gbps: f64,
    /// Per-writer (aggregator) sustained bandwidth.
    pub per_writer_gbps: f64,
    /// Fixed metadata/open cost per written or read block.
    pub metadata_op: Ns,
    /// Read-path efficiency relative to write (page-cache-less reads on
    /// these systems are typically slightly slower).
    pub read_efficiency: f64,
}

impl Filesystem {
    /// Effective aggregate bandwidth with `writers` concurrent writers.
    pub fn effective_gbps(&self, writers: usize) -> f64 {
        (self.per_writer_gbps * writers as f64).min(self.peak_gbps)
    }

    /// Time to write `bytes` from `writers` aggregators in `blocks`
    /// metadata blocks.
    pub fn write_time(&self, bytes: u64, writers: usize, blocks: u64) -> Ns {
        assert!(writers > 0, "need at least one writer");
        let bw = self.effective_gbps(writers);
        let xfer = (bytes as f64 / bw).round() as u64;
        // Metadata ops are issued concurrently by writers.
        let md = self.metadata_op.0 * blocks.div_ceil(writers as u64);
        Ns(xfer + md)
    }

    /// Time to read `bytes` with `readers` concurrent readers.
    pub fn read_time(&self, bytes: u64, readers: usize, blocks: u64) -> Ns {
        assert!(readers > 0, "need at least one reader");
        let bw = self.effective_gbps(readers) * self.read_efficiency;
        let xfer = (bytes as f64 / bw).round() as u64;
        let md = self.metadata_op.0 * blocks.div_ceil(readers as u64);
        Ns(xfer + md)
    }
}

/// Virtual-time costing hook for component/container fetches: a
/// filesystem plus the reader parallelism one node brings to bear.
/// Shared by the progressive reader (per-node retrieval I/O
/// accounting) and the shard front-end's cross-node exchange path, so
/// both charge fetches through the same analytic model.
#[derive(Debug, Clone, Copy)]
pub struct FetchCostModel {
    pub fs: Filesystem,
    /// Concurrent readers this node uses per fetch.
    pub readers: usize,
}

impl FetchCostModel {
    pub fn new(fs: Filesystem, readers: usize) -> FetchCostModel {
        FetchCostModel { fs, readers }
    }

    /// Virtual time to fetch `bytes` spread over `blocks` metadata
    /// blocks (zero-block fetches still pay one metadata op).
    pub fn fetch_time(&self, bytes: u64, blocks: u64) -> Ns {
        self.fs.read_time(bytes, self.readers.max(1), blocks.max(1))
    }

    /// The `(transfer, metadata)` split of [`fetch_time`](Self::fetch_time):
    /// the bandwidth-bound byte movement and the fixed per-block
    /// metadata cost, separately. `fetch_detail(b, n).0 + .1 ==
    /// fetch_time(b, n)`, so flight-recorder transfer events attribute
    /// the same total the cost model charges.
    pub fn fetch_detail(&self, bytes: u64, blocks: u64) -> (Ns, Ns) {
        let readers = self.readers.max(1);
        let bw = self.fs.effective_gbps(readers) * self.fs.read_efficiency;
        let xfer = (bytes as f64 / bw).round() as u64;
        let md = self.fs.metadata_op.0 * blocks.max(1).div_ceil(readers as u64);
        (Ns(xfer), Ns(md))
    }
}

/// Summit's GPFS (Alpine): 2.5 TB/s peak.
pub fn summit_gpfs() -> Filesystem {
    Filesystem {
        name: "GPFS",
        peak_gbps: 2500.0,
        per_writer_gbps: 12.5,
        metadata_op: Ns::from_micros(400),
        read_efficiency: 0.85,
    }
}

/// Frontier's Lustre (Orion): 9.4 TB/s peak.
pub fn frontier_lustre() -> Filesystem {
    Filesystem {
        name: "Lustre",
        peak_gbps: 9400.0,
        per_writer_gbps: 6.0,
        metadata_op: Ns::from_micros(300),
        read_efficiency: 0.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_writers_are_writer_bound() {
        let fs = summit_gpfs();
        assert!((fs.effective_gbps(10) - 125.0).abs() < 1e-9);
    }

    #[test]
    fn many_writers_hit_the_peak() {
        let fs = summit_gpfs();
        assert!((fs.effective_gbps(10_000) - 2500.0).abs() < 1e-9);
        let fr = frontier_lustre();
        assert!((fr.effective_gbps(100_000) - 9400.0).abs() < 1e-9);
    }

    #[test]
    fn write_time_scales_down_with_writers_then_plateaus() {
        let fs = summit_gpfs();
        let gb: u64 = 1 << 30;
        let t1 = fs.write_time(100 * gb, 16, 16);
        let t2 = fs.write_time(100 * gb, 128, 128);
        let t3 = fs.write_time(100 * gb, 4096, 4096);
        assert!(t2 < t1);
        // Past saturation (200 writers × 12.5 = peak): more writers
        // barely help.
        let ratio = t2.0 as f64 / t3.0 as f64;
        assert!(ratio < 1.7, "ratio {ratio}");
    }

    #[test]
    fn reads_slower_than_writes_at_same_scale() {
        let fs = frontier_lustre();
        let bytes = 10u64 << 30;
        assert!(fs.read_time(bytes, 100, 100) > fs.write_time(bytes, 100, 100));
    }

    #[test]
    fn fetch_detail_splits_sum_to_fetch_time() {
        let model = FetchCostModel::new(summit_gpfs(), 4);
        for (bytes, blocks) in [(0u64, 0u64), (1 << 20, 3), (10 << 30, 4096), (123, 1)] {
            let (xfer, md) = model.fetch_detail(bytes, blocks);
            assert_eq!(
                Ns(xfer.0 + md.0),
                model.fetch_time(bytes, blocks),
                "bytes={bytes} blocks={blocks}"
            );
        }
    }

    #[test]
    fn metadata_cost_counts_per_writer_batch() {
        let fs = Filesystem {
            name: "t",
            peak_gbps: 1000.0,
            per_writer_gbps: 1000.0,
            metadata_op: Ns(1000),
            read_efficiency: 1.0,
        };
        // 8 blocks over 2 writers → 4 sequential metadata ops.
        let t = fs.write_time(0, 2, 8);
        assert_eq!(t, Ns(4000));
    }
}
