//! Cluster-scale I/O experiments (paper Figs. 15, 17, 18).
//!
//! A [`SystemSpec`] describes a leadership machine (node GPU complement,
//! filesystem, aggregation strategy — paper §VI-A: one writer per node on
//! Summit, one per GPU on Frontier). Per-codec behaviour enters through a
//! [`CodecProfile`] measured on the single-node virtual-time pipeline
//! (real kernels, calibrated engines); the cluster harness then composes
//! profiles with the filesystem model analytically. Weak-scaled nodes do
//! independent work, so node-count scaling is exact composition, not
//! extrapolation.

use crate::fsmodel::{frontier_lustre, summit_gpfs, Filesystem};
use hpdr_core::{ArrayMeta, DeviceAdapter, Reducer, Result};
use hpdr_pipeline::{
    average_scalability, compress_pipelined, decompress_pipelined, scalability_sweep,
    PipelineOptions,
};
use hpdr_sim::{DeviceSpec, Ns};
use std::sync::Arc;

/// Writer-aggregation strategy (paper §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    OnePerNode,
    OnePerGpu,
}

/// A leadership-class system description.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    pub name: &'static str,
    pub gpus_per_node: usize,
    pub gpu: DeviceSpec,
    pub fs: Filesystem,
    pub aggregation: Aggregation,
    pub max_nodes: usize,
}

impl SystemSpec {
    pub fn writers(&self, nodes: usize) -> usize {
        match self.aggregation {
            Aggregation::OnePerNode => nodes,
            Aggregation::OnePerGpu => nodes * self.gpus_per_node,
        }
    }

    pub fn gpus(&self, nodes: usize) -> usize {
        nodes * self.gpus_per_node
    }
}

/// Summit: 4,608 nodes × 6 V100, GPFS, one writer per node.
pub fn summit() -> SystemSpec {
    SystemSpec {
        name: "Summit",
        gpus_per_node: 6,
        gpu: hpdr_sim::spec::v100(),
        fs: summit_gpfs(),
        aggregation: Aggregation::OnePerNode,
        max_nodes: 4608,
    }
}

/// Frontier: 9,408 nodes × 4 MI250X, Lustre, one writer per GPU.
pub fn frontier() -> SystemSpec {
    SystemSpec {
        name: "Frontier",
        gpus_per_node: 4,
        gpu: hpdr_sim::spec::mi250x(),
        fs: frontier_lustre(),
        aggregation: Aggregation::OnePerGpu,
        max_nodes: 9408,
    }
}

/// Measured single-node behaviour of one codec configuration.
#[derive(Debug, Clone)]
pub struct CodecProfile {
    pub name: String,
    /// Per-GPU end-to-end compression throughput (GB/s, incl. transfers).
    pub compress_gbps: f64,
    /// Per-GPU end-to-end decompression throughput (GB/s).
    pub decompress_gbps: f64,
    /// Compression ratio (raw / reduced).
    pub ratio: f64,
    /// Average real-to-ideal multi-GPU scalability on one node.
    pub node_scalability: f64,
    /// Trace-derived §V-C compute↔DMA overlap of the compression run
    /// (None if the run moved no DMA bytes).
    pub overlap: Option<f64>,
    /// Trace-derived Fig. 1 memory-op share of the compression run.
    pub memory_fraction: f64,
}

/// Measure a codec's profile on `system`'s GPU with the given pipeline
/// options, using a real sample array.
pub fn measure_codec_profile(
    system: &SystemSpec,
    reducer: Arc<dyn Reducer>,
    work: Arc<dyn DeviceAdapter>,
    sample: Arc<Vec<u8>>,
    meta: &ArrayMeta,
    opts: &PipelineOptions,
) -> Result<CodecProfile> {
    let (container, creport) = compress_pipelined(
        &system.gpu,
        Arc::clone(&work),
        Arc::clone(&reducer),
        Arc::clone(&sample),
        meta,
        opts,
    )?;
    let (_, _, dreport) = decompress_pipelined(
        &system.gpu,
        Arc::clone(&work),
        Arc::clone(&reducer),
        &container,
        opts,
    )?;
    let sweep = scalability_sweep(
        &system.gpu,
        system.gpus_per_node,
        work,
        reducer.clone(),
        || Arc::clone(&sample),
        meta,
        opts,
    )?;
    let ratio = creport.input_bytes as f64 / creport.compressed_bytes.max(1) as f64;
    Ok(CodecProfile {
        name: reducer.name().to_string(),
        compress_gbps: creport.end_to_end_gbps,
        decompress_gbps: dreport.end_to_end_gbps,
        ratio,
        node_scalability: average_scalability(&sweep),
        overlap: creport.overlap,
        memory_fraction: creport.memory_fraction,
    })
}

/// Fig. 15: aggregate reduction throughput of a weak-scaled run
/// (`nodes` nodes, every GPU busy). Returns GB/s.
pub fn aggregate_reduction_gbps(system: &SystemSpec, nodes: usize, p: &CodecProfile) -> f64 {
    p.compress_gbps * p.node_scalability * system.gpus(nodes) as f64
}

/// Cost of one parallel write or read epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCost {
    /// Reduction (or reconstruction) time, fully parallel across GPUs.
    pub reduce: Ns,
    /// Filesystem transfer time.
    pub io: Ns,
}

impl IoCost {
    pub fn total(&self) -> Ns {
        self.reduce + self.io
    }

    /// Speedup of `self` relative to `baseline` total time.
    pub fn speedup_vs(&self, baseline: &IoCost) -> f64 {
        baseline.total().0 as f64 / self.total().0.max(1) as f64
    }
}

/// Write cost with (or without) reduction. `per_gpu_bytes` of raw data
/// per GPU.
pub fn write_cost(
    system: &SystemSpec,
    nodes: usize,
    per_gpu_bytes: u64,
    profile: Option<&CodecProfile>,
) -> IoCost {
    let gpus = system.gpus(nodes) as u64;
    let raw_total = per_gpu_bytes * gpus;
    let writers = system.writers(nodes);
    match profile {
        None => IoCost {
            reduce: Ns::ZERO,
            io: system.fs.write_time(raw_total, writers, gpus),
        },
        Some(p) => {
            let gpu_gbps = (p.compress_gbps * p.node_scalability).max(1e-9);
            let reduce = Ns((per_gpu_bytes as f64 / gpu_gbps).round() as u64);
            let reduced_total = (raw_total as f64 / p.ratio).round() as u64;
            IoCost {
                reduce,
                io: system.fs.write_time(reduced_total, writers, gpus),
            }
        }
    }
}

/// Read cost with (or without) reduction.
pub fn read_cost(
    system: &SystemSpec,
    nodes: usize,
    per_gpu_bytes: u64,
    profile: Option<&CodecProfile>,
) -> IoCost {
    let gpus = system.gpus(nodes) as u64;
    let raw_total = per_gpu_bytes * gpus;
    let readers = system.writers(nodes);
    match profile {
        None => IoCost {
            reduce: Ns::ZERO,
            io: system.fs.read_time(raw_total, readers, gpus),
        },
        Some(p) => {
            let gpu_gbps = (p.decompress_gbps * p.node_scalability).max(1e-9);
            let reduce = Ns((per_gpu_bytes as f64 / gpu_gbps).round() as u64);
            let reduced_total = (raw_total as f64 / p.ratio).round() as u64;
            IoCost {
                reduce,
                io: system.fs.read_time(reduced_total, readers, gpus),
            }
        }
    }
}

/// Strong scaling: fixed `total_bytes` split across all GPUs of `nodes`.
pub fn strong_scaling_write(
    system: &SystemSpec,
    nodes: usize,
    total_bytes: u64,
    profile: Option<&CodecProfile>,
) -> IoCost {
    let per_gpu = total_bytes / system.gpus(nodes) as u64;
    write_cost(system, nodes, per_gpu, profile)
}

/// Strong scaling read counterpart.
pub fn strong_scaling_read(
    system: &SystemSpec,
    nodes: usize,
    total_bytes: u64,
    profile: Option<&CodecProfile>,
) -> IoCost {
    let per_gpu = total_bytes / system.gpus(nodes) as u64;
    read_cost(system, nodes, per_gpu, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_profile(gbps: f64, ratio: f64) -> CodecProfile {
        CodecProfile {
            name: "fake".into(),
            compress_gbps: gbps,
            decompress_gbps: gbps * 1.1,
            ratio,
            node_scalability: 0.95,
            overlap: Some(0.5),
            memory_fraction: 0.5,
        }
    }

    #[test]
    fn system_presets_match_paper() {
        let s = summit();
        assert_eq!(s.gpus_per_node, 6);
        assert_eq!(s.writers(512), 512); // one per node
        assert_eq!(s.gpus(512), 3072);
        let f = frontier();
        assert_eq!(f.gpus_per_node, 4);
        assert_eq!(f.writers(1024), 4096); // one per GPU
        assert_eq!(f.gpus(1024), 4096);
    }

    #[test]
    fn good_compressor_accelerates_io() {
        let sys = summit();
        let per_gpu = 7_500_000_000u64; // paper: 7.5 GB per GPU
        let raw = write_cost(&sys, 512, per_gpu, None);
        let p = fake_profile(25.0, 100.0);
        let reduced = write_cost(&sys, 512, per_gpu, Some(&p));
        let speedup = reduced.speedup_vs(&raw);
        assert!(speedup > 3.0, "speedup {speedup:.2}");
    }

    #[test]
    fn weak_compressor_slows_io_down() {
        // LZ4-ish: ratio 1.1 with modest throughput → extra overhead.
        let sys = summit();
        let per_gpu = 7_500_000_000u64;
        let raw = write_cost(&sys, 512, per_gpu, None);
        // Unoptimized end-to-end LZ4 runs at ~2 GB/s per GPU (Fig. 1's
        // memory-op-dominated pipeline), so reduction time outweighs the
        // 10% byte saving.
        let p = fake_profile(2.0, 1.1);
        let reduced = write_cost(&sys, 512, per_gpu, Some(&p));
        assert!(reduced.speedup_vs(&raw) < 1.0);
    }

    #[test]
    fn aggregate_reduction_scales_with_nodes() {
        let sys = frontier();
        let p = fake_profile(30.0, 50.0);
        let t512 = aggregate_reduction_gbps(&sys, 512, &p);
        let t1024 = aggregate_reduction_gbps(&sys, 1024, &p);
        assert!((t1024 / t512 - 2.0).abs() < 1e-9);
        // 1,024 nodes × 4 GPUs × 30 GB/s × 0.95 ≈ 116 TB/s-scale number.
        assert!(t1024 > 100_000.0);
    }

    #[test]
    fn strong_scaling_reduce_time_drops_with_nodes() {
        let sys = frontier();
        let p = fake_profile(30.0, 7.9);
        let total = 32u64 << 40; // 32 TB, paper Fig. 18a
        let a = strong_scaling_write(&sys, 512, total, Some(&p));
        let b = strong_scaling_write(&sys, 2048, total, Some(&p));
        assert!(b.reduce < a.reduce);
        assert!(b.total() < a.total());
    }

    #[test]
    fn read_cost_uses_decompress_throughput() {
        let sys = summit();
        let p = fake_profile(10.0, 10.0);
        let w = write_cost(&sys, 64, 1 << 30, Some(&p));
        let r = read_cost(&sys, 64, 1 << 30, Some(&p));
        // decompress is 1.1× faster in the fake profile.
        assert!(r.reduce < w.reduce);
    }
}
