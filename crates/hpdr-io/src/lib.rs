//! # hpdr-io — parallel I/O substrate
//!
//! The paper integrates HPDR with the ADIOS2 I/O library and evaluates on
//! Summit (GPFS) and Frontier (Lustre) at up to 1,024 nodes. This crate
//! provides:
//!
//! * [`bp`] — a real BP5-like self-describing file format (metadata index
//!   + aggregator subfiles), exercised end-to-end by the test suite;
//! * [`fsmodel`] — the shared-bandwidth parallel-filesystem model with
//!   Summit/Frontier presets;
//! * [`cluster`] — system descriptions, per-codec profiles measured on
//!   the virtual-time pipeline, and the weak/strong-scaling write/read
//!   experiments of Figs. 15, 17 and 18.

pub mod bp;
pub mod cluster;
pub mod fsmodel;

pub use bp::{BlockInfo, BpReader, BpWriter};
pub use cluster::{
    aggregate_reduction_gbps, frontier, measure_codec_profile, read_cost, strong_scaling_read,
    strong_scaling_write, summit, write_cost, Aggregation, CodecProfile, IoCost, SystemSpec,
};
pub use fsmodel::{frontier_lustre, summit_gpfs, FetchCostModel, Filesystem};
