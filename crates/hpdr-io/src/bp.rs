//! BP5-like self-describing parallel file format (ADIOS2 substrate).
//!
//! Layout mirrors ADIOS2's BP5 on-disk structure: one metadata index
//! (`md.idx`) plus `data.<k>` subfiles, one per aggregator. Writers
//! append variable blocks (raw or reduced payloads) to their aggregator's
//! subfile; the index records `(step, variable, block) → (subfile,
//! offset, length, codec)`.
//!
//! This is the *real* I/O path: files are actually written and read, and
//! the integration tests round-trip reduced data through it. The
//! cluster-scale experiments use the virtual filesystem model instead
//! (`fsmodel`), since nobody has 62 TB of laptop.

use hpdr_core::{ArrayMeta, ByteReader, ByteWriter, DType, FrameHeader, HpdrError, Result, Shape};
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const FRAME: FrameHeader = FrameHeader::new(0x4250_3500 /* "BP5" */, 1, "BP index");

/// One variable block as recorded in the metadata index.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    pub writer: u32,
    pub subfile: u32,
    pub offset: u64,
    pub len: u64,
    /// Codec that produced the payload ("raw" for uncompressed).
    pub codec: String,
    pub meta: ArrayMeta,
}

#[derive(Debug, Clone, PartialEq, Default)]
struct StepIndex {
    /// (variable name, blocks)
    vars: Vec<(String, Vec<BlockInfo>)>,
}

/// Writer handle for a BP-like dataset directory.
pub struct BpWriter {
    dir: PathBuf,
    subfiles: Vec<fs::File>,
    offsets: Vec<u64>,
    steps: Vec<StepIndex>,
    current: Option<StepIndex>,
    next_writer: u32,
}

impl BpWriter {
    /// Create a dataset with `aggregators` data subfiles.
    pub fn create(dir: impl AsRef<Path>, aggregators: usize) -> Result<BpWriter> {
        let dir = dir.as_ref().to_path_buf();
        if aggregators == 0 {
            return Err(HpdrError::invalid("need at least one aggregator"));
        }
        fs::create_dir_all(&dir)?;
        let mut subfiles = Vec::with_capacity(aggregators);
        for k in 0..aggregators {
            subfiles.push(fs::File::create(dir.join(format!("data.{k}")))?);
        }
        Ok(BpWriter {
            dir,
            offsets: vec![0; aggregators],
            subfiles,
            steps: Vec::new(),
            current: None,
            next_writer: 0,
        })
    }

    pub fn begin_step(&mut self) {
        if self.current.is_none() {
            self.current = Some(StepIndex::default());
        }
    }

    /// Append one block of `var` for the next writer rank (round-robin
    /// aggregation).
    pub fn put(&mut self, var: &str, meta: &ArrayMeta, payload: &[u8], codec: &str) -> Result<()> {
        let step = self
            .current
            .as_mut()
            .ok_or_else(|| HpdrError::invalid("put() outside begin_step/end_step"))?;
        let writer = self.next_writer;
        self.next_writer += 1;
        let subfile = (writer as usize) % self.subfiles.len();
        let offset = self.offsets[subfile];
        self.subfiles[subfile].write_all(payload)?;
        self.offsets[subfile] += payload.len() as u64;
        let info = BlockInfo {
            writer,
            subfile: subfile as u32,
            offset,
            len: payload.len() as u64,
            codec: codec.to_string(),
            meta: meta.clone(),
        };
        match step.vars.iter_mut().find(|(n, _)| n == var) {
            Some((_, blocks)) => blocks.push(info),
            None => step.vars.push((var.to_string(), vec![info])),
        }
        Ok(())
    }

    pub fn end_step(&mut self) -> Result<()> {
        let step = self
            .current
            .take()
            .ok_or_else(|| HpdrError::invalid("end_step without begin_step"))?;
        self.steps.push(step);
        self.next_writer = 0;
        Ok(())
    }

    /// Flush subfiles and write the metadata index.
    pub fn close(mut self) -> Result<()> {
        if self.current.is_some() {
            self.end_step()?;
        }
        for f in &mut self.subfiles {
            f.flush()?;
        }
        let mut w = ByteWriter::new();
        FRAME.write(&mut w);
        w.put_u32(self.subfiles.len() as u32);
        w.put_u32(self.steps.len() as u32);
        for step in &self.steps {
            w.put_u32(step.vars.len() as u32);
            for (name, blocks) in &step.vars {
                w.put_str(name);
                w.put_u32(blocks.len() as u32);
                for b in blocks {
                    w.put_u32(b.writer);
                    w.put_u32(b.subfile);
                    w.put_u64(b.offset);
                    w.put_u64(b.len);
                    w.put_str(&b.codec);
                    w.put_u8(b.meta.dtype.tag());
                    w.put_u8(b.meta.shape.ndims() as u8);
                    for &d in b.meta.shape.dims() {
                        w.put_u64(d as u64);
                    }
                }
            }
        }
        fs::write(self.dir.join("md.idx"), w.as_slice())?;
        Ok(())
    }
}

/// Reader handle for a BP-like dataset directory.
pub struct BpReader {
    dir: PathBuf,
    steps: Vec<StepIndex>,
}

impl BpReader {
    pub fn open(dir: impl AsRef<Path>) -> Result<BpReader> {
        let dir = dir.as_ref().to_path_buf();
        let idx = fs::read(dir.join("md.idx"))?;
        let mut r = ByteReader::new(&idx);
        FRAME.read(&mut r)?;
        let _subfiles = r.get_u32()?;
        let n_steps = r.get_u32()? as usize;
        let mut steps = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            let n_vars = r.get_u32()? as usize;
            let mut vars = Vec::with_capacity(n_vars);
            for _ in 0..n_vars {
                let name = r.get_str()?;
                let n_blocks = r.get_u32()? as usize;
                let mut blocks = Vec::with_capacity(n_blocks);
                for _ in 0..n_blocks {
                    let writer = r.get_u32()?;
                    let subfile = r.get_u32()?;
                    let offset = r.get_u64()?;
                    let len = r.get_u64()?;
                    let codec = r.get_str()?;
                    let dtype = DType::from_tag(r.get_u8()?)
                        .ok_or_else(|| HpdrError::corrupt("bad dtype in index"))?;
                    let nd = r.get_u8()? as usize;
                    let mut dims = Vec::with_capacity(nd);
                    for _ in 0..nd {
                        dims.push(r.get_u64()? as usize);
                    }
                    blocks.push(BlockInfo {
                        writer,
                        subfile,
                        offset,
                        len,
                        codec,
                        meta: ArrayMeta::new(dtype, Shape::try_new(&dims)?),
                    });
                }
                vars.push((name, blocks));
            }
            steps.push(StepIndex { vars });
        }
        r.expect_exhausted()?;
        Ok(BpReader { dir, steps })
    }

    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    pub fn variables(&self, step: usize) -> Vec<&str> {
        self.steps[step]
            .vars
            .iter()
            .map(|(n, _)| n.as_str())
            .collect()
    }

    pub fn blocks(&self, step: usize, var: &str) -> Result<&[BlockInfo]> {
        self.steps
            .get(step)
            .and_then(|s| s.vars.iter().find(|(n, _)| n == var))
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| HpdrError::invalid(format!("no variable '{var}' in step {step}")))
    }

    /// Read one block's payload from its subfile.
    pub fn read_block(&self, info: &BlockInfo) -> Result<Vec<u8>> {
        let mut f = fs::File::open(self.dir.join(format!("data.{}", info.subfile)))?;
        f.seek(SeekFrom::Start(info.offset))?;
        let mut buf = vec![0u8; info.len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hpdr-bp-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(n: usize) -> ArrayMeta {
        ArrayMeta::new(DType::F32, Shape::new(&[n]))
    }

    #[test]
    fn write_read_roundtrip_multi_step_multi_writer() {
        let dir = tmpdir("roundtrip");
        let mut w = BpWriter::create(&dir, 2).unwrap();
        for step in 0..3u8 {
            w.begin_step();
            for rank in 0..5u8 {
                let payload = vec![step * 16 + rank; 64 + rank as usize];
                w.put("density", &meta(16), &payload, "mgard-x").unwrap();
            }
            w.put("psl", &meta(8), &[7; 32], "raw").unwrap();
            w.end_step().unwrap();
        }
        w.close().unwrap();

        let r = BpReader::open(&dir).unwrap();
        assert_eq!(r.num_steps(), 3);
        assert_eq!(r.variables(1), vec!["density", "psl"]);
        let blocks = r.blocks(2, "density").unwrap();
        assert_eq!(blocks.len(), 5);
        for (rank, b) in blocks.iter().enumerate() {
            assert_eq!(b.writer as usize, rank);
            let payload = r.read_block(b).unwrap();
            assert_eq!(payload.len(), 64 + rank);
            assert!(payload.iter().all(|&x| x == 2 * 16 + rank as u8));
        }
        assert_eq!(r.blocks(0, "psl").unwrap()[0].codec, "raw");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blocks_spread_across_aggregators() {
        let dir = tmpdir("agg");
        let mut w = BpWriter::create(&dir, 3).unwrap();
        w.begin_step();
        for _ in 0..6 {
            w.put("v", &meta(4), &[1, 2, 3], "raw").unwrap();
        }
        w.close().unwrap();
        let r = BpReader::open(&dir).unwrap();
        let blocks = r.blocks(0, "v").unwrap();
        let mut per: [u32; 3] = [0; 3];
        for b in blocks {
            per[b.subfile as usize] += 1;
        }
        assert_eq!(per, [2, 2, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_variable_and_corrupt_index() {
        let dir = tmpdir("err");
        let mut w = BpWriter::create(&dir, 1).unwrap();
        w.begin_step();
        w.put("v", &meta(4), &[0; 16], "raw").unwrap();
        w.close().unwrap();
        let r = BpReader::open(&dir).unwrap();
        assert!(r.blocks(0, "nope").is_err());
        // Corrupt the index: reader must error, not panic.
        let idx = dir.join("md.idx");
        let mut bytes = fs::read(&idx).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&idx, &bytes).unwrap();
        assert!(BpReader::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_outside_step_is_error() {
        let dir = tmpdir("outside");
        let mut w = BpWriter::create(&dir, 1).unwrap();
        assert!(w.put("v", &meta(1), &[1], "raw").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_aggregators_rejected() {
        assert!(BpWriter::create(tmpdir("zero"), 0).is_err());
    }
}
