//! # hpdr-data — synthetic evaluation datasets
//!
//! Seeded synthetic analogues of the paper's Table III datasets (NYX
//! density, XGC e_f, E3SM PSL). The paper's originals are production
//! simulation outputs we cannot redistribute; these generators match
//! their dimensionality, dtype, positivity and smoothness character, so
//! compression-ratio *trends* (who compresses better, how ratio scales
//! with error bound) are preserved even though absolute ratios differ.

pub mod datasets;
pub mod field;

pub use datasets::{default_suite, e3sm_psl, nyx_density, xgc_ef, Dataset};
pub use field::{add_noise, smooth_field, FieldSpec};
