//! Smooth random field synthesis.
//!
//! Scientific fields (cosmology densities, plasma distributions, climate
//! pressure) are spatially correlated with power-law spectra. We
//! synthesize them as sums of random Fourier modes with amplitudes
//! `~ |k|^{-p}` — the spectral slope `p` controls smoothness and hence
//! compressibility, which is the property the paper's compression-ratio
//! trends depend on.

use hpdr_core::Shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a random-mode field.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Number of Fourier modes.
    pub modes: usize,
    /// Spectral slope `p` (larger = smoother).
    pub slope: f64,
    /// Maximum wavenumber per axis (cycles across the domain).
    pub max_wavenumber: f64,
    pub seed: u64,
}

impl Default for FieldSpec {
    fn default() -> Self {
        FieldSpec {
            modes: 24,
            slope: 1.8,
            max_wavenumber: 12.0,
            seed: 0x48_50_44_52, // "HPDR"
        }
    }
}

struct Mode {
    /// Wave vector in radians per unit coordinate (normalized domain).
    k: [f64; 4],
    phase: f64,
    amp: f64,
}

/// Generate a smooth field over `shape`, values roughly in `[-1, 1]`.
pub fn smooth_field(shape: &Shape, spec: &FieldSpec) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let nd = shape.ndims();
    let modes: Vec<Mode> = (0..spec.modes)
        .map(|_| {
            let mut k = [0.0f64; 4];
            let mut norm: f64 = 0.0;
            for kd in k.iter_mut().take(nd) {
                let w: f64 = rng.gen_range(-spec.max_wavenumber..=spec.max_wavenumber);
                *kd = w * std::f64::consts::TAU;
                norm += w * w;
            }
            let norm = norm.sqrt().max(0.5);
            Mode {
                k,
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
                amp: norm.powf(-spec.slope),
            }
        })
        .collect();
    let amp_total: f64 = modes.iter().map(|m| m.amp).sum::<f64>().max(1e-12);

    let dims = shape.dims();
    let n = shape.num_elements();
    let strides = shape.strides();
    let mut out = vec![0.0f64; n];
    for (flat, slot) in out.iter_mut().enumerate() {
        let mut x = [0.0f64; 4];
        let mut rem = flat;
        for d in 0..nd {
            let idx = rem / strides[d];
            rem %= strides[d];
            x[d] = idx as f64 / dims[d] as f64;
        }
        let mut v = 0.0;
        for m in &modes {
            let mut arg = m.phase;
            for (kd, xd) in m.k[..nd].iter().zip(&x[..nd]) {
                arg += kd * xd;
            }
            v += m.amp * arg.sin();
        }
        *slot = v / amp_total * 2.0;
    }
    out
}

/// Add white noise of the given amplitude (reduces compressibility —
/// useful for ratio-vs-error sweeps).
pub fn add_noise(data: &mut [f64], amplitude: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for v in data {
        *v += rng.gen_range(-amplitude..=amplitude);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let shape = Shape::new(&[16, 16]);
        let a = smooth_field(&shape, &FieldSpec::default());
        let b = smooth_field(&shape, &FieldSpec::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let shape = Shape::new(&[16, 16]);
        let a = smooth_field(&shape, &FieldSpec::default());
        let b = smooth_field(
            &shape,
            &FieldSpec {
                seed: 999,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn values_are_bounded_and_finite() {
        let shape = Shape::new(&[10, 10, 10]);
        let f = smooth_field(&shape, &FieldSpec::default());
        for &v in &f {
            assert!(v.is_finite());
            assert!(v.abs() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn smoother_slope_gives_smaller_gradients() {
        let shape = Shape::new(&[256]);
        let rough = smooth_field(
            &shape,
            &FieldSpec {
                slope: 0.4,
                seed: 7,
                ..Default::default()
            },
        );
        let smooth = smooth_field(
            &shape,
            &FieldSpec {
                slope: 3.0,
                seed: 7,
                ..Default::default()
            },
        );
        let tv = |d: &[f64]| -> f64 {
            let range = d.iter().cloned().fold(f64::MIN, f64::max)
                - d.iter().cloned().fold(f64::MAX, f64::min);
            d.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / range.max(1e-12)
        };
        assert!(
            tv(&smooth) < tv(&rough),
            "{} !< {}",
            tv(&smooth),
            tv(&rough)
        );
    }

    #[test]
    fn noise_changes_data() {
        let shape = Shape::new(&[64]);
        let mut f = smooth_field(&shape, &FieldSpec::default());
        let orig = f.clone();
        add_noise(&mut f, 0.1, 42);
        assert_ne!(f, orig);
        let max_delta = f
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_delta <= 0.1);
    }
}
