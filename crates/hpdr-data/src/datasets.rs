//! The three evaluation datasets (paper Table III), as seeded synthetic
//! analogues with the same dimensionality, dtype and smoothness
//! character. Default sizes are scaled down for laptop-scale runs; the
//! paper-scale shapes are available through the `scale` parameter.
//!
//! | Dataset | Field   | Paper dims            | Type | Size    |
//! |---------|---------|-----------------------|------|---------|
//! | NYX     | density | 512×512×512           | FP32 | 536.8MB |
//! | XGC     | e_f     | 8×33×1117528×37       | FP64 | 87.3GB  |
//! | E3SM    | PSL     | 2880×240×960          | FP32 | 2.7GB   |

use crate::field::{smooth_field, FieldSpec};
use hpdr_core::{DType, Shape};

/// A generated dataset: raw little-endian bytes plus metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: &'static str,
    pub field: &'static str,
    pub dtype: DType,
    pub shape: Shape,
    /// Raw values; `f32` datasets are stored as f32 bytes.
    pub bytes: Vec<u8>,
}

impl Dataset {
    pub fn num_bytes(&self) -> usize {
        self.bytes.len()
    }

    pub fn as_f32(&self) -> Vec<f32> {
        assert_eq!(self.dtype, DType::F32);
        self.bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    pub fn as_f64(&self) -> Vec<f64> {
        assert_eq!(self.dtype, DType::F64);
        self.bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

fn f32_bytes(vals: impl Iterator<Item = f32>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn f64_bytes(vals: impl Iterator<Item = f64>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// NYX cosmology baryon density: log-normal field (densities are strictly
/// positive with long high tails), FP32, cubic grid.
///
/// `side = 512` reproduces the paper's shape; the default laptop scale is
/// `side = 64`.
pub fn nyx_density(side: usize, seed: u64) -> Dataset {
    let shape = Shape::new(&[side, side, side]);
    let g = smooth_field(
        &shape,
        &FieldSpec {
            modes: 28,
            slope: 2.2,
            max_wavenumber: 5.0,
            seed,
        },
    );
    // Log-normal: exp of Gaussian-ish field, scaled to a mean density ~1.
    let bytes = f32_bytes(g.iter().map(|&v| (2.2 * v).exp() as f32));
    Dataset {
        name: "NYX",
        field: "density",
        dtype: DType::F32,
        shape,
        bytes,
    }
}

/// XGC gyrokinetic particle distribution `e_f`: 4D FP64
/// (planes × poloidal × mesh-nodes × velocity). The mesh-node axis is
/// scaled by `mesh_nodes` (paper: 1,117,528; default laptop scale
/// ~2,000). Smooth in velocity space, rougher across mesh nodes.
pub fn xgc_ef(mesh_nodes: usize, seed: u64) -> Dataset {
    let shape = Shape::new(&[8, 33, mesh_nodes, 37]);
    let g = smooth_field(
        &shape,
        &FieldSpec {
            modes: 24,
            slope: 2.0,
            max_wavenumber: 6.0,
            seed,
        },
    );
    // Distribution functions are non-negative with a Maxwellian-like bulk.
    let bytes = f64_bytes(g.iter().map(|&v| (1.5 * v).exp()));
    Dataset {
        name: "XGC",
        field: "e_f",
        dtype: DType::F64,
        shape,
        bytes,
    }
}

/// E3SM sea-level pressure `PSL`: (time × lat × lon) FP32, very smooth
/// large-scale structure around ~101 kPa.
///
/// `time = 2880, lat = 240, lon = 960` reproduces the paper's shape; the
/// default laptop scale is `(48, 60, 120)`.
pub fn e3sm_psl(time: usize, lat: usize, lon: usize, seed: u64) -> Dataset {
    let shape = Shape::new(&[time, lat, lon]);
    let g = smooth_field(
        &shape,
        &FieldSpec {
            modes: 20,
            slope: 3.0,
            max_wavenumber: 3.0,
            seed,
        },
    );
    let bytes = f32_bytes(g.iter().map(|&v| 101_325.0 + 2_000.0 * v as f32));
    Dataset {
        name: "E3SM",
        field: "PSL",
        dtype: DType::F32,
        shape,
        bytes,
    }
}

/// Laptop-scale default instances of the three Table III datasets.
pub fn default_suite(seed: u64) -> Vec<Dataset> {
    vec![
        nyx_density(48, seed),
        xgc_ef(160, seed + 1),
        e3sm_psl(32, 48, 96, seed + 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nyx_has_table_iii_shape_character() {
        let d = nyx_density(32, 1);
        assert_eq!(d.dtype, DType::F32);
        assert_eq!(d.shape.dims(), &[32, 32, 32]);
        assert_eq!(d.num_bytes(), 32 * 32 * 32 * 4);
        let vals = d.as_f32();
        assert!(vals.iter().all(|&v| v > 0.0), "densities are positive");
    }

    #[test]
    fn xgc_is_4d_f64() {
        let d = xgc_ef(100, 1);
        assert_eq!(d.dtype, DType::F64);
        assert_eq!(d.shape.dims(), &[8, 33, 100, 37]);
        let vals = d.as_f64();
        assert!(vals.iter().all(|&v| v.is_finite() && v > 0.0));
    }

    #[test]
    fn e3sm_is_pressure_like() {
        let d = e3sm_psl(10, 20, 30, 1);
        assert_eq!(d.shape.dims(), &[10, 20, 30]);
        let vals = d.as_f32();
        for &v in &vals {
            assert!((90_000.0..115_000.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(nyx_density(16, 7).bytes, nyx_density(16, 7).bytes);
        assert_ne!(nyx_density(16, 7).bytes, nyx_density(16, 8).bytes);
    }

    #[test]
    fn default_suite_has_three_table_iii_entries() {
        let suite = default_suite(0);
        let names: Vec<&str> = suite.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["NYX", "XGC", "E3SM"]);
    }

    #[test]
    fn paper_scale_shapes_supported() {
        // Construct shape descriptors only (don't allocate 87 GB!).
        let shape = Shape::new(&[8, 33, 1_117_528, 37]);
        assert_eq!(shape.num_elements() * 8, 87_328_108_032); // ≈ 87.3 GB
        let nyx = Shape::new(&[512, 512, 512]);
        assert_eq!(nyx.num_elements() * 4, 536_870_912); // ≈ 536.8 MB
        let e3sm = Shape::new(&[2880, 240, 960]);
        assert_eq!(e3sm.num_elements() * 4, 2_654_208_000); // ≈ 2.7 GB
    }
}
