//! # hpdr-pipeline — the Host-Device Execution Model (HDEM)
//!
//! Implements the paper's §V pipeline optimization: the 3-queue /
//! 2-buffer overlapped reduction & reconstruction DAGs (Fig. 9), the
//! roofline-driven adaptive chunk sizing (Algorithm 4, Fig. 11), and the
//! multi-GPU dispatcher whose scalability depends on the Context Memory
//! Model (Fig. 16).
//!
//! Pipelines execute on the `hpdr-sim` virtual-time machine: every DMA
//! and kernel is charged against calibrated engine models while the real
//! portable kernels run inside op payloads, so the output containers hold
//! real compressed bytes and the timelines expose real overlap ratios.

pub mod batch;
pub mod container;
pub mod multigpu;
pub mod roofline;
pub mod runner;

pub use batch::{
    run_batch, BatchItem, BatchOutput, BatchReport, ExternalBatchJob, SubmittedBatchJob,
};
pub use container::{fixed_chunks, Container};
pub use multigpu::{
    average_scalability, compress_multi_gpu, decompress_multi_gpu, decompress_scalability_sweep,
    scalability_sweep, MultiGpuReport,
};
pub use roofline::{adaptive_chunks, default_sweep, fit, profile_kernel, theta, Roofline};
pub use runner::{
    compress_pipelined, decompress_pipelined, plan_compress, plan_decompress, PipelineMode,
    PipelineOptions, PipelineReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, Float, Reducer, Shape};
    use hpdr_mgard::{MgardConfig, MgardReducer};
    use hpdr_sim::spec::v100;
    use hpdr_zfp::{ZfpConfig, ZfpReducer};
    use std::sync::Arc;

    fn work() -> Arc<dyn DeviceAdapter> {
        Arc::new(CpuParallelAdapter::new(4))
    }

    /// A V100 with its saturation knees scaled down so test-size inputs
    /// (hundreds of KB) exercise the same saturated-DMA regime that
    /// paper-size inputs (hundreds of MB) exercise on the real spec.
    fn test_spec() -> hpdr_sim::DeviceSpec {
        let mut spec = v100();
        let shrink = |m: &mut hpdr_sim::ThroughputModel| {
            m.latency = hpdr_sim::Ns(200);
            m.saturate_bytes = (m.saturate_bytes / 16384).max(1);
        };
        shrink(&mut spec.h2d);
        shrink(&mut spec.d2h);
        for class in hpdr_sim::KernelClass::ALL {
            let mut m = *spec.kernel_model(class);
            shrink(&mut m);
            spec.set_kernel_model(class, m);
        }
        spec
    }

    fn nyx_small() -> (Arc<Vec<u8>>, ArrayMeta) {
        let d = hpdr_data::nyx_density(32, 3);
        (
            Arc::new(d.bytes.clone()),
            ArrayMeta::new(DType::F32, d.shape.clone()),
        )
    }

    fn mgard() -> Arc<dyn Reducer> {
        Arc::new(MgardReducer(MgardConfig::relative(1e-2)))
    }

    #[test]
    fn pipelined_compress_decompress_roundtrip() {
        let (input, meta) = nyx_small();
        let opts = PipelineOptions::fixed(64 * 1024);
        let (container, report) = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .unwrap();
        assert!(report.num_chunks > 1);
        assert!(container.total_stream_bytes() < input.len() as u64);
        let (bytes, meta2, _) =
            decompress_pipelined(&test_spec(), work(), mgard(), &container, &opts).unwrap();
        assert_eq!(meta2, meta);
        let orig = f32::bytes_to_vec(&input);
        let out = f32::bytes_to_vec(&bytes);
        let range = {
            let mx = orig.iter().cloned().fold(f32::MIN, f32::max);
            let mn = orig.iter().cloned().fold(f32::MAX, f32::min);
            (mx - mn) as f64
        };
        let err = orig
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max);
        assert!(err <= 1e-2 * range * 1.01, "err {err}");
    }

    #[test]
    fn pipelined_equals_unpipelined_output_when_single_chunk() {
        let (input, meta) = nyx_small();
        let a = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions::unpipelined(),
        )
        .unwrap()
        .0;
        let b = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions::baseline_unoptimized(),
        )
        .unwrap()
        .0;
        // CMM / buffering choices must not change the bytes.
        assert_eq!(a.chunks, b.chunks);
    }

    #[test]
    fn overlap_improves_with_pipelining() {
        let (input, meta) = nyx_small();
        let none = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions::unpipelined(),
        )
        .unwrap()
        .1;
        let fixed = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions::fixed(16 * 1024),
        )
        .unwrap()
        .1;
        assert!(
            none.overlap.unwrap_or(0.0) < 1e-9,
            "unpipelined must not overlap"
        );
        assert!(
            fixed.overlap.unwrap_or(0.0) > 0.3,
            "pipelined overlap too low: {:?}",
            fixed.overlap
        );
        assert!(fixed.end_to_end_gbps > none.end_to_end_gbps);
        assert!(fixed.makespan < none.makespan);
    }

    #[test]
    fn adaptive_beats_tiny_fixed_chunks() {
        let (input, meta) = nyx_small();
        // A device whose reduction kernel (6 GB/s) is slower than its
        // link (12 GB/s): Algorithm 4 must grow chunks toward the limit.
        let mut spec = test_spec();
        spec.set_kernel_model(
            hpdr_sim::KernelClass::Mgard,
            hpdr_sim::ThroughputModel::flat(6.0),
        );
        let tiny = compress_pipelined(
            &spec,
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions::fixed(8 * 1024),
        )
        .unwrap()
        .1;
        let adaptive = compress_pipelined(
            &spec,
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions {
                mode: PipelineMode::Adaptive {
                    init_bytes: 8 * 1024,
                    limit_bytes: 1 << 20,
                },
                ..Default::default()
            },
        )
        .unwrap()
        .1;
        assert!(adaptive.num_chunks < tiny.num_chunks);
        assert!(adaptive.end_to_end_gbps >= tiny.end_to_end_gbps * 0.95);
    }

    #[test]
    fn zfp_pipeline_roundtrip_exact_chunks() {
        let (input, meta) = nyx_small();
        let zfp: Arc<dyn Reducer> = Arc::new(ZfpReducer(ZfpConfig::fixed_rate(16)));
        let opts = PipelineOptions::fixed(32 * 1024);
        let (container, _) = compress_pipelined(
            &test_spec(),
            work(),
            Arc::clone(&zfp),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .unwrap();
        let (bytes, _, report) =
            decompress_pipelined(&test_spec(), work(), zfp, &container, &opts).unwrap();
        assert_eq!(bytes.len(), input.len());
        assert!(report.overlap.unwrap_or(0.0) > 0.1);
    }

    #[test]
    fn wrong_reducer_for_container_rejected() {
        let (input, meta) = nyx_small();
        let opts = PipelineOptions::fixed(32 * 1024);
        let (container, _) =
            compress_pipelined(&test_spec(), work(), mgard(), input, &meta, &opts).unwrap();
        let zfp: Arc<dyn Reducer> = Arc::new(ZfpReducer(ZfpConfig::fixed_rate(16)));
        assert!(decompress_pipelined(&test_spec(), work(), zfp, &container, &opts).is_err());
    }

    #[test]
    fn two_vs_three_buffers_same_bytes() {
        let (input, meta) = nyx_small();
        let two = PipelineOptions::fixed(32 * 1024);
        let three = PipelineOptions {
            two_buffers: false,
            ..two
        };
        let a = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &two,
        )
        .unwrap()
        .0;
        let b = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &three,
        )
        .unwrap()
        .0;
        assert_eq!(a.chunks, b.chunks);
    }

    #[test]
    fn no_cmm_adds_memory_management_time() {
        let (input, meta) = nyx_small();
        let with = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions::fixed(32 * 1024),
        )
        .unwrap()
        .1;
        let without = compress_pipelined(
            &test_spec(),
            work(),
            mgard(),
            Arc::clone(&input),
            &meta,
            &PipelineOptions {
                cmm: false,
                ..PipelineOptions::fixed(32 * 1024)
            },
        )
        .unwrap()
        .1;
        assert!(without.makespan > with.makespan);
        assert!(without.memory_fraction > with.memory_fraction);
    }

    #[test]
    fn multigpu_cmm_scales_better_than_no_cmm() {
        let (input, meta) = nyx_small();
        let mk = || Arc::clone(&input);
        let good = scalability_sweep(
            &v100(),
            4,
            work(),
            mgard(),
            mk,
            &meta,
            &PipelineOptions::fixed(32 * 1024),
        )
        .unwrap();
        let mk2 = || Arc::clone(&input);
        let bad = scalability_sweep(
            &v100(),
            4,
            work(),
            mgard(),
            mk2,
            &meta,
            &PipelineOptions {
                cmm: false,
                ..PipelineOptions::fixed(32 * 1024)
            },
        )
        .unwrap();
        let g = average_scalability(&good);
        let b = average_scalability(&bad);
        assert!(g > b, "cmm {g:.3} !> no-cmm {b:.3}");
        assert!(g > 0.85, "cmm scalability {g:.3}");
    }

    #[test]
    fn shape_helper_sanity() {
        // Guard the leading-dim chunking convention used by the runner.
        let meta = ArrayMeta::new(DType::F32, Shape::new(&[10, 6, 4]));
        assert_eq!(meta.shape.row_elements() * meta.dtype.size(), 96);
    }
}
