//! The optimized reduction/reconstruction pipeline (paper §V, Fig. 9).
//!
//! Each chunk flows through one of **three queues** (the minimum depth by
//! Little's law): `H2D → Reduce → Serialize(D2H)` for reduction, and
//! `H2D → Deserialize(D2H) → Reconstruct → D2H` for reconstruction. The
//! H2D DMA, D2H DMA and compute engines each execute one op at a time, so
//! queue interleaving yields transfer/compute overlap exactly as on a
//! real device.
//!
//! Options reproduce the paper's design points and our ablations:
//!
//! * **two_buffers** — the dotted anti-dependencies of Fig. 9
//!   (`H2D(k+2)` waits on `S(k)`), which cut the required buffer sets
//!   from three to two;
//! * **cmm** — with the Context Memory Model *off*, every chunk issues
//!   device alloc/free ops through the shared runtime (the per-call
//!   allocation behaviour of the non-HPDR comparators);
//! * **deser_first** — the red-arrow launch-order swap: the next chunk's
//!   deserialization is issued before the previous chunk's output copy,
//!   since both contend for the D2H engine.
//!
//! Kernels execute *for real* inside op payloads (producing real
//! compressed bytes); engine occupancy is charged from the device's
//! calibrated cost models.

use crate::container::{fixed_chunks, Container};
use crate::roofline::{adaptive_chunks, default_sweep, fit, profile_kernel, Roofline};
use hpdr_core::{ArrayMeta, DeviceAdapter, HpdrError, Reducer, Result};
use hpdr_sim::{
    BufId, Cost, DeviceId, DeviceSpec, Effects, Engine, Ns, OpId, OpSpec, QueueId, Sim, Timeline,
    Trace,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pipeline operating mode (paper Fig. 13's None / Fixed / Adaptive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineMode {
    /// No overlap: the whole array moves and reduces as one block.
    Unpipelined,
    /// Fixed chunk size in bytes (paper uses 100 MB).
    Fixed { chunk_bytes: u64 },
    /// Algorithm 4: start small, grow by the roofline model.
    Adaptive { init_bytes: u64, limit_bytes: u64 },
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    pub mode: PipelineMode,
    /// Fig. 9 anti-dependencies (2 buffer sets instead of 3).
    pub two_buffers: bool,
    /// Context Memory Model: reuse persistent buffers/contexts.
    pub cmm: bool,
    /// Reconstruction launch-order swap (red arrows in Fig. 9).
    pub deser_first: bool,
    /// Force all chunks through one queue and one buffer set: each chunk
    /// becomes a fully synchronous invocation, like calling a standalone
    /// compression tool once per time step (the comparators' behaviour).
    pub serial_queue: bool,
    /// Pay pageable host staging copies between the application buffer,
    /// the reduction buffer and the I/O buffer (paper §II-B — the
    /// overlooked overhead of the non-HPDR pipelines). HPDR registers
    /// pinned buffers and overlaps these, so its pipelines skip them.
    pub host_staging: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            mode: PipelineMode::Adaptive {
                init_bytes: 16 << 20,
                limit_bytes: 1 << 30,
            },
            two_buffers: true,
            cmm: true,
            deser_first: true,
            serial_queue: false,
            host_staging: false,
        }
    }
}

impl PipelineOptions {
    pub fn unpipelined() -> Self {
        PipelineOptions {
            mode: PipelineMode::Unpipelined,
            ..Default::default()
        }
    }

    pub fn fixed(chunk_bytes: u64) -> Self {
        PipelineOptions {
            mode: PipelineMode::Fixed { chunk_bytes },
            ..Default::default()
        }
    }

    /// The comparator configuration: no overlap, per-call allocations,
    /// fully synchronous invocations.
    pub fn baseline_unoptimized() -> Self {
        PipelineOptions {
            mode: PipelineMode::Unpipelined,
            two_buffers: false,
            cmm: false,
            deser_first: false,
            serial_queue: true,
            host_staging: true,
        }
    }

    /// Comparator behaviour over a multi-step stream: one synchronous
    /// whole-buffer invocation per `step_bytes` of input.
    pub fn baseline_per_step(step_bytes: u64) -> Self {
        PipelineOptions {
            mode: PipelineMode::Fixed {
                chunk_bytes: step_bytes,
            },
            two_buffers: false,
            cmm: false,
            deser_first: false,
            serial_queue: true,
            host_staging: true,
        }
    }
}

/// Timing/throughput results of one pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub makespan: Ns,
    pub input_bytes: u64,
    pub compressed_bytes: u64,
    /// End-to-end throughput (raw bytes / makespan) in GB/s.
    pub end_to_end_gbps: f64,
    /// Paper §V-C overlap ratio (None if no DMA occurred), derived from
    /// the span trace via `hpdr_trace::overlap_ratio`.
    pub overlap: Option<f64>,
    /// Fraction of busy time spent on memory operations (Fig. 1 metric).
    pub memory_fraction: f64,
    pub num_chunks: usize,
    pub timeline: Timeline,
    /// Span trace of the run (pipeline runs always record one — feed it
    /// to `hpdr-trace` for Chrome export, critical paths, histograms).
    pub trace: Trace,
}

fn report_from(
    timeline: Timeline,
    trace: Trace,
    dev: DeviceId,
    input_bytes: u64,
    compressed: u64,
    chunks: usize,
) -> PipelineReport {
    let makespan = timeline.makespan();
    PipelineReport {
        makespan,
        input_bytes,
        compressed_bytes: compressed,
        end_to_end_gbps: hpdr_sim::gbps(input_bytes, makespan),
        overlap: hpdr_trace::overlap_ratio(&trace, dev),
        memory_fraction: hpdr_trace::memory_fraction(&trace),
        num_chunks: chunks,
        timeline,
        trace,
    }
}

/// Device allocations per invocation when the CMM is off. Calibrated to
/// the comparators' behaviour: MGARD-GPU v1.5 allocates the level
/// hierarchy (several buffers per level per dimension) on every call,
/// cuSZ/ZFP allocate workspace + codebook + output buffers. Frees are
/// issued lazily at the next invocation (and implicitly synchronize,
/// like `cudaFree`).
const NOCMM_ALLOCS: usize = 24;

/// Resolve the chunk row schedule for an input.
fn chunk_schedule(
    spec: &DeviceSpec,
    reducer: &dyn Reducer,
    meta: &ArrayMeta,
    mode: PipelineMode,
) -> Vec<usize> {
    let total_rows = meta.shape.dims()[0];
    let row_bytes = meta.shape.row_elements() * meta.dtype.size();
    match mode {
        PipelineMode::Unpipelined => vec![total_rows],
        PipelineMode::Fixed { chunk_bytes } => {
            fixed_chunks(total_rows, row_bytes, chunk_bytes as usize)
        }
        PipelineMode::Adaptive {
            init_bytes,
            limit_bytes,
        } => {
            let model: Roofline = fit(
                &profile_kernel(spec, reducer.kernel_class(), &default_sweep()),
                0.9,
            );
            adaptive_chunks(
                total_rows,
                row_bytes,
                init_bytes,
                limit_bytes,
                &model,
                spec.h2d.saturated_gbps,
            )
        }
    }
}

/// State shared between the DAG payloads of one device's compression run.
pub(crate) struct CompressJob {
    pub dev: DeviceId,
    queues: [QueueId; 3],
    in_bufs: Vec<BufId>,
    out_bufs: Vec<BufId>,
    /// `(row_start, rows)` per chunk.
    pub chunks: Vec<(usize, usize)>,
    input: Arc<Vec<u8>>,
    meta: ArrayMeta,
    reducer: Arc<dyn Reducer>,
    work: Arc<dyn DeviceAdapter>,
    results: Arc<Mutex<Vec<Option<Vec<u8>>>>>,
    error: Arc<Mutex<Option<HpdrError>>>,
    s_ops: Vec<OpId>,
    opts: PipelineOptions,
    row_bytes: usize,
}

impl CompressJob {
    pub fn new(
        sim: &mut Sim,
        dev: DeviceId,
        reducer: Arc<dyn Reducer>,
        work: Arc<dyn DeviceAdapter>,
        input: Arc<Vec<u8>>,
        meta: ArrayMeta,
        opts: PipelineOptions,
    ) -> Result<CompressJob> {
        if input.len() != meta.num_bytes() {
            return Err(HpdrError::invalid("input length does not match metadata"));
        }
        let rows_schedule =
            chunk_schedule(sim.device_spec(dev), reducer.as_ref(), &meta, opts.mode);
        let row_bytes = meta.shape.row_elements() * meta.dtype.size();
        let max_chunk_bytes = rows_schedule.iter().max().copied().unwrap_or(1) * row_bytes;
        let mut chunks = Vec::with_capacity(rows_schedule.len());
        let mut start = 0usize;
        for rows in rows_schedule {
            chunks.push((start, rows));
            start += rows;
        }
        let n_buf = if opts.two_buffers { 2 } else { 3 };
        let queues = [sim.add_queue(), sim.add_queue(), sim.add_queue()];
        let in_bufs: Vec<BufId> = (0..n_buf)
            .map(|_| sim.create_buffer(dev, max_chunk_bytes))
            .collect();
        let out_bufs: Vec<BufId> = (0..n_buf).map(|_| sim.create_buffer(dev, 0)).collect();
        let n = chunks.len();
        Ok(CompressJob {
            dev,
            queues,
            in_bufs,
            out_bufs,
            chunks,
            input,
            meta,
            reducer,
            work,
            results: Arc::new(Mutex::new(vec![None; n])),
            error: Arc::new(Mutex::new(None)),
            s_ops: Vec::with_capacity(n),
            opts,
            row_bytes,
        })
    }

    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Submit chunk `k`'s ops (H2D → Reduce → Serialize/D2H).
    pub fn submit_chunk(&mut self, sim: &mut Sim, k: usize) {
        let (row_start, rows) = self.chunks[k];
        let q = if self.opts.serial_queue {
            self.queues[0]
        } else {
            self.queues[k % 3]
        };
        let n_buf = self.in_bufs.len();
        let j = if self.opts.serial_queue { 0 } else { k % n_buf };
        let chunk_bytes = rows * self.row_bytes;
        let byte_start = row_start * self.row_bytes;
        let rt = sim.device_runtime(self.dev);

        // CMM off: per-call workspace allocations through the shared
        // runtime (timing ops; the backing store is preallocated). The
        // previous invocation's workspaces are freed lazily here.
        if !self.opts.cmm {
            if k > 0 {
                let prev_s = self.s_ops[k - 1];
                // One synchronizing free: cudaFree holds the allocator
                // lock while waiting for the device's pending work, so
                // every later lock request (from any device) queues
                // behind it.
                sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: Some(q),
                        deps: vec![prev_s],
                        cost: Cost::Free { device: self.dev },
                        label: format!("syncfree[{k}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
                for f in 0..NOCMM_ALLOCS {
                    sim.push(
                        OpSpec {
                            engine: Engine::Runtime(rt),
                            queue: None,
                            deps: vec![prev_s],
                            cost: Cost::Free { device: self.dev },
                            label: format!("free[{k}.{f}]"),
                            effects: Effects::none(),
                        },
                        None,
                    );
                }
            }
            for a in 0..NOCMM_ALLOCS / 2 {
                sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: Some(q),
                        deps: vec![],
                        cost: Cost::Alloc { device: self.dev },
                        label: format!("alloc[{k}.{a}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
            }
        }

        // Application buffer → reduction (staging) buffer host copy.
        if self.opts.host_staging {
            sim.push(
                OpSpec {
                    engine: Engine::Staging(self.dev),
                    queue: Some(q),
                    deps: vec![],
                    cost: Cost::HostCopy {
                        bytes: Arc::new(AtomicU64::new(chunk_bytes as u64)),
                    },
                    label: format!("stage-in[{k}]"),
                    effects: Effects::none(),
                },
                None,
            );
        }

        // H2D with the Fig. 9 anti-dependency when running two buffers.
        let mut deps = Vec::new();
        if self.opts.two_buffers && !self.opts.serial_queue && k >= n_buf {
            deps.push(self.s_ops[k - n_buf]);
        }
        let in_buf = self.in_bufs[j];
        let input = Arc::clone(&self.input);
        let h2d = sim.push(
            OpSpec {
                engine: Engine::H2D(self.dev),
                queue: Some(q),
                deps,
                cost: Cost::Transfer {
                    bytes: chunk_bytes as u64,
                },
                label: format!("H2D[{k}]"),
                effects: Effects::write(in_buf),
            },
            Some(Box::new(move |pool| {
                pool.get_mut(in_buf)[..chunk_bytes]
                    .copy_from_slice(&input[byte_start..byte_start + chunk_bytes]);
            })),
        );

        // Mid-pipeline allocations (workspace sized by the arrived data):
        // each holds the shared allocator's FIFO slot until the transfer
        // completes — the cross-device contention the CMM removes.
        let mut compute_deps = vec![h2d];
        if !self.opts.cmm {
            for a in 0..NOCMM_ALLOCS / 2 {
                let op = sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: None,
                        deps: vec![h2d],
                        cost: Cost::Alloc { device: self.dev },
                        label: format!("midalloc[{k}.{a}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
                if a == NOCMM_ALLOCS / 2 - 1 {
                    compute_deps.push(op);
                }
            }
        }

        // Reduce.
        let out_buf = self.out_bufs[j];
        let size_cell = Arc::new(AtomicU64::new(0));
        let chunk_meta = ArrayMeta::new(self.meta.dtype, self.meta.shape.with_leading(rows));
        let reducer = Arc::clone(&self.reducer);
        let work = Arc::clone(&self.work);
        let error = Arc::clone(&self.error);
        let size_for_payload = Arc::clone(&size_cell);
        let compute = sim.push(
            OpSpec {
                engine: Engine::Compute(self.dev),
                queue: Some(q),
                deps: compute_deps,
                cost: Cost::Kernel {
                    class: reducer.kernel_class(),
                    bytes: chunk_bytes as u64,
                },
                label: format!("R[{k}]"),
                effects: Effects::read(in_buf).and_write(out_buf),
            },
            Some(Box::new(move |pool| {
                let src: Vec<u8> = pool.get(in_buf)[..chunk_bytes].to_vec();
                match reducer.compress(work.as_ref(), &src, &chunk_meta) {
                    Ok(stream) => {
                        size_for_payload.store(stream.len() as u64, Ordering::SeqCst);
                        pool.resize(out_buf, stream.len());
                        pool.get_mut(out_buf).copy_from_slice(&stream);
                    }
                    Err(e) => {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            })),
        );

        // Serialize: D2H of the compressed stream + metadata embedding.
        let results = Arc::clone(&self.results);
        let size_for_stage = Arc::clone(&size_cell);
        let s = sim.push(
            OpSpec {
                engine: Engine::D2H(self.dev),
                queue: Some(q),
                deps: vec![compute],
                cost: Cost::TransferDyn { bytes: size_cell },
                label: format!("S[{k}]"),
                effects: Effects::read(out_buf),
            },
            Some(Box::new(move |pool| {
                results.lock()[k] = Some(pool.get(out_buf).to_vec());
            })),
        );
        // Reduction buffer → I/O buffer host copy.
        if self.opts.host_staging {
            sim.push(
                OpSpec {
                    engine: Engine::Staging(self.dev),
                    queue: Some(q),
                    deps: vec![s],
                    cost: Cost::HostCopy {
                        bytes: size_for_stage,
                    },
                    label: format!("stage-out[{k}]"),
                    effects: Effects::none(),
                },
                None,
            );
        }
        self.s_ops.push(s);
    }

    /// Collect the container after `sim.run()`.
    pub fn finish(self) -> Result<Container> {
        if let Some(e) = self.error.lock().take() {
            return Err(e);
        }
        let results = Arc::try_unwrap(self.results)
            .map_err(|_| HpdrError::invalid("pipeline results still shared"))?
            .into_inner();
        let mut chunks = Vec::with_capacity(results.len());
        for ((_, rows), stream) in self.chunks.iter().zip(results) {
            let stream =
                stream.ok_or_else(|| HpdrError::invalid("chunk payload never executed"))?;
            chunks.push((*rows, stream));
        }
        Ok(Container {
            reducer: self.reducer.name().to_string(),
            meta: self.meta,
            chunks,
        })
    }
}

/// State shared between the DAG payloads of one device's reconstruction.
pub(crate) struct DecompressJob {
    pub dev: DeviceId,
    queues: [QueueId; 3],
    in_bufs: Vec<BufId>,
    out_bufs: Vec<BufId>,
    streams: Vec<Arc<Vec<u8>>>,
    rows: Vec<usize>,
    meta: ArrayMeta,
    reducer: Arc<dyn Reducer>,
    work: Arc<dyn DeviceAdapter>,
    output: Arc<Mutex<Vec<u8>>>,
    error: Arc<Mutex<Option<HpdrError>>>,
    d2h_ops: Vec<OpId>,
    /// Deferred output-copy spec when `deser_first` is on.
    pending_out: Option<PendingOut>,
    opts: PipelineOptions,
    row_bytes: usize,
}

struct PendingOut {
    k: usize,
    compute: OpId,
    out_buf: BufId,
    byte_start: usize,
    chunk_bytes: usize,
}

impl DecompressJob {
    pub fn new(
        sim: &mut Sim,
        dev: DeviceId,
        reducer: Arc<dyn Reducer>,
        work: Arc<dyn DeviceAdapter>,
        container: &Container,
        opts: PipelineOptions,
    ) -> Result<DecompressJob> {
        if container.reducer != reducer.name() {
            return Err(HpdrError::invalid(format!(
                "container was produced by '{}', not '{}'",
                container.reducer,
                reducer.name()
            )));
        }
        let meta = container.meta.clone();
        let row_bytes = meta.shape.row_elements() * meta.dtype.size();
        let max_stream = container
            .chunks
            .iter()
            .map(|(_, s)| s.len())
            .max()
            .unwrap_or(1);
        let max_out = container
            .chunks
            .iter()
            .map(|(r, _)| r * row_bytes)
            .max()
            .unwrap_or(1);
        let n_buf = if opts.two_buffers { 2 } else { 3 };
        let queues = [sim.add_queue(), sim.add_queue(), sim.add_queue()];
        let in_bufs: Vec<BufId> = (0..n_buf)
            .map(|_| sim.create_buffer(dev, max_stream))
            .collect();
        let out_bufs: Vec<BufId> = (0..n_buf)
            .map(|_| sim.create_buffer(dev, max_out))
            .collect();
        Ok(DecompressJob {
            dev,
            queues,
            in_bufs,
            out_bufs,
            streams: container
                .chunks
                .iter()
                .map(|(_, s)| Arc::new(s.clone()))
                .collect(),
            rows: container.chunks.iter().map(|(r, _)| *r).collect(),
            meta: meta.clone(),
            reducer,
            work,
            output: Arc::new(Mutex::new(vec![0u8; meta.num_bytes()])),
            error: Arc::new(Mutex::new(None)),
            d2h_ops: Vec::new(),
            pending_out: None,
            opts,
            row_bytes,
        })
    }

    pub fn num_chunks(&self) -> usize {
        self.rows.len()
    }

    fn push_pending_out(&mut self, sim: &mut Sim) {
        let Some(p) = self.pending_out.take() else {
            return;
        };
        let q = if self.opts.serial_queue {
            self.queues[0]
        } else {
            self.queues[p.k % 3]
        };
        let output = Arc::clone(&self.output);
        let out_buf = p.out_buf;
        let (byte_start, chunk_bytes) = (p.byte_start, p.chunk_bytes);
        let d2h = sim.push(
            OpSpec {
                engine: Engine::D2H(self.dev),
                queue: Some(q),
                deps: vec![p.compute],
                cost: Cost::Transfer {
                    bytes: chunk_bytes as u64,
                },
                label: format!("D2Hout[{}]", p.k),
                effects: Effects::read(out_buf),
            },
            Some(Box::new(move |pool| {
                output.lock()[byte_start..byte_start + chunk_bytes]
                    .copy_from_slice(&pool.get(out_buf)[..chunk_bytes]);
            })),
        );
        // Reduction buffer → application buffer host copy.
        if self.opts.host_staging {
            sim.push(
                OpSpec {
                    engine: Engine::Staging(self.dev),
                    queue: Some(q),
                    deps: vec![d2h],
                    cost: Cost::HostCopy {
                        bytes: Arc::new(AtomicU64::new(chunk_bytes as u64)),
                    },
                    label: format!("stage-out[{}]", p.k),
                    effects: Effects::none(),
                },
                None,
            );
        }
        self.d2h_ops.push(d2h);
    }

    /// Submit chunk `k`'s ops (H2D → Deser(D2H) → Reconstruct → D2H).
    pub fn submit_chunk(&mut self, sim: &mut Sim, k: usize, byte_start: usize) {
        let q = if self.opts.serial_queue {
            self.queues[0]
        } else {
            self.queues[k % 3]
        };
        let n_buf = self.in_bufs.len();
        let j = if self.opts.serial_queue { 0 } else { k % n_buf };
        let stream = Arc::clone(&self.streams[k]);
        let stream_len = stream.len();
        let chunk_bytes = self.rows[k] * self.row_bytes;
        let rt = sim.device_runtime(self.dev);

        if !self.opts.cmm {
            // Lazy frees of the previous invocation's workspaces.
            if let Some(&prev) = self.d2h_ops.last() {
                sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: Some(q),
                        deps: vec![prev],
                        cost: Cost::Free { device: self.dev },
                        label: format!("syncfree[{k}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
                for f in 0..NOCMM_ALLOCS {
                    sim.push(
                        OpSpec {
                            engine: Engine::Runtime(rt),
                            queue: None,
                            deps: vec![prev],
                            cost: Cost::Free { device: self.dev },
                            label: format!("free[{k}.{f}]"),
                            effects: Effects::none(),
                        },
                        None,
                    );
                }
            }
            for a in 0..NOCMM_ALLOCS / 2 {
                sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: Some(q),
                        deps: vec![],
                        cost: Cost::Alloc { device: self.dev },
                        label: format!("alloc[{k}.{a}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
            }
        }

        // I/O buffer → reduction buffer host copy of the compressed data.
        if self.opts.host_staging {
            sim.push(
                OpSpec {
                    engine: Engine::Staging(self.dev),
                    queue: Some(q),
                    deps: vec![],
                    cost: Cost::HostCopy {
                        bytes: Arc::new(AtomicU64::new(stream_len as u64)),
                    },
                    label: format!("stage-in[{k}]"),
                    effects: Effects::none(),
                },
                None,
            );
        }

        // H2D of the compressed chunk, with buffer anti-dependency.
        let mut deps = Vec::new();
        if self.opts.two_buffers
            && !self.opts.serial_queue
            && k >= n_buf
            && self.d2h_ops.len() >= k + 1 - n_buf
        {
            // Output buffer of chunk k-n_buf must be drained first.
            deps.push(self.d2h_ops[k - n_buf]);
        }
        let in_buf = self.in_bufs[j];
        let h2d = sim.push(
            OpSpec {
                engine: Engine::H2D(self.dev),
                queue: Some(q),
                deps,
                cost: Cost::Transfer {
                    bytes: stream_len as u64,
                },
                label: format!("H2D[{k}]"),
                effects: Effects::write(in_buf),
            },
            Some(Box::new(move |pool| {
                pool.resize(in_buf, stream_len);
                pool.get_mut(in_buf).copy_from_slice(&stream);
            })),
        );

        // Deserialize: small D2H metadata read (contends with D2Hout —
        // the launch-order swap exists because of this op).
        let deser = sim.push(
            OpSpec {
                engine: Engine::D2H(self.dev),
                queue: Some(q),
                deps: vec![h2d],
                cost: Cost::Transfer {
                    bytes: 4096.min(stream_len as u64),
                },
                label: format!("Deser[{k}]"),
                effects: Effects::read(in_buf),
            },
            None,
        );

        // With deser_first, the *previous* chunk's output copy is issued
        // only now — after this chunk's deserialization (red arrows).
        if self.opts.deser_first {
            self.push_pending_out(sim);
        }

        // Mid-pipeline allocations (the output workspace is sized from
        // the deserialized metadata): each holds the allocator's FIFO
        // slot while the compressed transfer and header read complete.
        let mut compute_deps = vec![deser];
        if !self.opts.cmm {
            for a in 0..NOCMM_ALLOCS / 2 {
                let op = sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: None,
                        deps: vec![h2d, deser],
                        cost: Cost::Alloc { device: self.dev },
                        label: format!("midalloc[{k}.{a}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
                if a == NOCMM_ALLOCS / 2 - 1 {
                    compute_deps.push(op);
                }
            }
        }

        // Reconstruct.
        let out_buf = self.out_bufs[j];
        let reducer = Arc::clone(&self.reducer);
        let work = Arc::clone(&self.work);
        let error = Arc::clone(&self.error);
        let expect_meta =
            ArrayMeta::new(self.meta.dtype, self.meta.shape.with_leading(self.rows[k]));
        let compute = sim.push(
            OpSpec {
                engine: Engine::Compute(self.dev),
                queue: Some(q),
                deps: compute_deps,
                cost: Cost::Kernel {
                    class: reducer.kernel_class(),
                    bytes: chunk_bytes as u64,
                },
                label: format!("Rec[{k}]"),
                effects: Effects::read(in_buf).and_write(out_buf),
            },
            Some(Box::new(move |pool| {
                let src: Vec<u8> = pool.get(in_buf).to_vec();
                match reducer.decompress(work.as_ref(), &src) {
                    Ok((bytes, meta)) => {
                        if meta != expect_meta {
                            let mut slot = error.lock();
                            if slot.is_none() {
                                *slot = Some(HpdrError::corrupt("chunk metadata mismatch"));
                            }
                            return;
                        }
                        pool.get_mut(out_buf)[..bytes.len()].copy_from_slice(&bytes);
                    }
                    Err(e) => {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            })),
        );

        // Output-side allocations issued between the reconstruction
        // kernels (cuSZ/MGARD-GPU allocate per-stage scratch mid-kernel
        // sequence): they hold the allocator's FIFO slot while this
        // device reconstructs.
        let mut out_dep = compute;
        if !self.opts.cmm {
            for a in 0..NOCMM_ALLOCS / 2 {
                let op = sim.push(
                    OpSpec {
                        engine: Engine::Runtime(rt),
                        queue: None,
                        deps: vec![compute],
                        cost: Cost::Alloc { device: self.dev },
                        label: format!("outalloc[{k}.{a}]"),
                        effects: Effects::none(),
                    },
                    None,
                );
                if a == NOCMM_ALLOCS / 2 - 1 {
                    out_dep = op;
                }
            }
        }
        let pending = PendingOut {
            k,
            compute: out_dep,
            out_buf,
            byte_start,
            chunk_bytes,
        };
        if self.opts.deser_first {
            self.pending_out = Some(pending);
        } else {
            self.pending_out = Some(pending);
            self.push_pending_out(sim);
        }
    }

    /// Flush the trailing deferred output op (call after the last chunk).
    pub fn finish_submission(&mut self, sim: &mut Sim) {
        self.push_pending_out(sim);
    }

    /// Collect the raw output bytes after `sim.run()`.
    pub fn finish(self) -> Result<(Vec<u8>, ArrayMeta)> {
        if let Some(e) = self.error.lock().take() {
            return Err(e);
        }
        let out = Arc::try_unwrap(self.output)
            .map_err(|_| HpdrError::invalid("pipeline output still shared"))?
            .into_inner();
        Ok((out, self.meta))
    }
}

/// Build and submit the full compression DAG **without executing it** —
/// the schedule goes to [`hpdr_sim::Sim::dag`] for offline verification
/// and linting (`hpdr verify`), never to `run()`.
pub fn plan_compress(
    spec: &DeviceSpec,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    input: Arc<Vec<u8>>,
    meta: &ArrayMeta,
    opts: &PipelineOptions,
) -> Result<Sim> {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(spec.clone(), rt);
    let mut job = CompressJob::new(&mut sim, dev, reducer, work, input, meta.clone(), *opts)?;
    for k in 0..job.num_chunks() {
        job.submit_chunk(&mut sim, k);
    }
    Ok(sim)
}

/// Build and submit the full reconstruction DAG **without executing it**
/// (see [`plan_compress`]).
pub fn plan_decompress(
    spec: &DeviceSpec,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    container: &Container,
    opts: &PipelineOptions,
) -> Result<Sim> {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(spec.clone(), rt);
    let mut job = DecompressJob::new(&mut sim, dev, reducer, work, container, *opts)?;
    let row_bytes = container.meta.shape.row_elements() * container.meta.dtype.size();
    let mut byte_start = 0usize;
    for k in 0..job.num_chunks() {
        job.submit_chunk(&mut sim, k, byte_start);
        byte_start += container.chunks[k].0 * row_bytes;
    }
    job.finish_submission(&mut sim);
    Ok(sim)
}

/// Run the sim under a wall clock and a worker-pool stats window, so the
/// trace carries measured host time and pool activity next to the
/// modeled virtual times.
pub(crate) fn timed_run(sim: &mut Sim) -> (hpdr_sim::Timeline, hpdr_sim::RuntimeStats) {
    let pool = hpdr_core::WorkerPool::global();
    let before = pool.stats();
    let t0 = std::time::Instant::now();
    let timeline = sim.run();
    let wall = hpdr_sim::Ns(t0.elapsed().as_nanos() as u64);
    let delta = pool.stats().since(before);
    (
        timeline,
        hpdr_sim::RuntimeStats {
            wall,
            pool_jobs: delta.jobs,
            pool_wakeups: delta.wakeups,
            pool_tasks: delta.tasks,
            scratch_reuses: delta.scratch_reuses,
            scratch_allocs: delta.scratch_allocs,
        },
    )
}

/// Compress `input` on a single simulated device with the Fig. 9 pipeline.
pub fn compress_pipelined(
    spec: &DeviceSpec,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    input: Arc<Vec<u8>>,
    meta: &ArrayMeta,
    opts: &PipelineOptions,
) -> Result<(Container, PipelineReport)> {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(spec.clone(), rt);
    let input_bytes = input.len() as u64;
    let mut job = CompressJob::new(&mut sim, dev, reducer, work, input, meta.clone(), *opts)?;
    for k in 0..job.num_chunks() {
        job.submit_chunk(&mut sim, k);
    }
    sim.set_trace(true);
    let (timeline, runtime) = timed_run(&mut sim);
    let mut trace = sim.take_trace().expect("tracing was enabled");
    trace.set_runtime_stats(runtime);
    let chunks = job.num_chunks();
    let container = job.finish()?;
    let report = report_from(
        timeline,
        trace,
        dev,
        input_bytes,
        container.total_stream_bytes(),
        chunks,
    );
    Ok((container, report))
}

/// Reconstruct a container on a single simulated device.
pub fn decompress_pipelined(
    spec: &DeviceSpec,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    container: &Container,
    opts: &PipelineOptions,
) -> Result<(Vec<u8>, ArrayMeta, PipelineReport)> {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(spec.clone(), rt);
    let mut job = DecompressJob::new(&mut sim, dev, reducer, work, container, *opts)?;
    let row_bytes = container.meta.shape.row_elements() * container.meta.dtype.size();
    let mut byte_start = 0usize;
    for k in 0..job.num_chunks() {
        job.submit_chunk(&mut sim, k, byte_start);
        byte_start += container.chunks[k].0 * row_bytes;
    }
    job.finish_submission(&mut sim);
    sim.set_trace(true);
    let (timeline, runtime) = timed_run(&mut sim);
    let mut trace = sim.take_trace().expect("tracing was enabled");
    trace.set_runtime_stats(runtime);
    let chunks = job.num_chunks();
    let compressed = container.total_stream_bytes();
    let (bytes, meta) = job.finish()?;
    let report = report_from(timeline, trace, dev, bytes.len() as u64, compressed, chunks);
    Ok((bytes, meta, report))
}
