//! Chunked stream container.
//!
//! A pipelined reduction compresses the array in leading-dimension chunks
//! (each chunk is an independent codec stream, which is what lets the
//! pipeline overlap transfers with compute — and what costs compression
//! ratio when chunks are small, paper Fig. 14). The container records the
//! codec, array metadata and per-chunk streams.

use hpdr_core::{ArrayMeta, ByteReader, ByteWriter, DType, HpdrError, Result, Shape};

const MAGIC: u32 = 0x4850_4331; // "HPC1"

/// A chunked compressed array.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    pub reducer: String,
    pub meta: ArrayMeta,
    /// `(rows, stream)` per chunk, in leading-dimension order.
    pub chunks: Vec<(usize, Vec<u8>)>,
}

impl Container {
    pub fn total_stream_bytes(&self) -> u64 {
        self.chunks.iter().map(|(_, s)| s.len() as u64).sum()
    }

    /// Serialized container size (streams + metadata).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.total_stream_bytes() as usize + 128);
        w.put_u32(MAGIC);
        w.put_str(&self.reducer);
        w.put_u8(self.meta.dtype.tag());
        w.put_u8(self.meta.shape.ndims() as u8);
        for &d in self.meta.shape.dims() {
            w.put_u64(d as u64);
        }
        w.put_u32(self.chunks.len() as u32);
        for (rows, stream) in &self.chunks {
            w.put_u64(*rows as u64);
            w.put_block(stream);
        }
        w.into_vec()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Container> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != MAGIC {
            return Err(HpdrError::corrupt("bad container magic"));
        }
        let reducer = r.get_str()?;
        let dtype =
            DType::from_tag(r.get_u8()?).ok_or_else(|| HpdrError::corrupt("unknown dtype"))?;
        let nd = r.get_u8()? as usize;
        if !(1..=4).contains(&nd) {
            return Err(HpdrError::corrupt("bad rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        let shape = Shape::try_new(&dims)?;
        let n_chunks = r.get_u32()? as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut total_rows = 0usize;
        for _ in 0..n_chunks {
            let rows = r.get_u64()? as usize;
            total_rows += rows;
            let stream = r.get_block()?.to_vec();
            chunks.push((rows, stream));
        }
        r.expect_exhausted()?;
        if total_rows != shape.dims()[0] {
            return Err(HpdrError::corrupt(format!(
                "chunk rows {total_rows} do not cover leading dim {}",
                shape.dims()[0]
            )));
        }
        Ok(Container {
            reducer,
            meta: ArrayMeta::new(dtype, shape),
            chunks,
        })
    }
}

/// Chunk row counts are aligned to multiples of this many rows (except
/// the final remainder): ZFP's 4^d blocks pad any slab thinner than 4
/// rows, and MGARD's hierarchy degenerates on 1–3 row slabs, so real
/// chunked deployments align to the block granularity.
pub const ROW_ALIGN: usize = 4;

fn align_rows(rows: usize, left: usize) -> usize {
    let aligned = rows.div_ceil(ROW_ALIGN) * ROW_ALIGN;
    aligned.clamp(1, left)
}

/// Split `total_rows` into chunk row counts of roughly `chunk_bytes`
/// each (aligned to [`ROW_ALIGN`]), given `row_bytes` per row.
pub fn fixed_chunks(total_rows: usize, row_bytes: usize, chunk_bytes: usize) -> Vec<usize> {
    let rows_per = (chunk_bytes / row_bytes.max(1)).max(1);
    let mut out = Vec::new();
    let mut left = total_rows;
    while left > 0 {
        let r = align_rows(rows_per.min(left), left);
        out.push(r);
        left -= r;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = Container {
            reducer: "mgard-x".into(),
            meta: ArrayMeta::new(DType::F32, Shape::new(&[10, 4])),
            chunks: vec![(6, vec![1, 2, 3]), (4, vec![9, 8])],
        };
        let bytes = c.to_bytes();
        assert_eq!(Container::from_bytes(&bytes).unwrap(), c);
    }

    #[test]
    fn row_coverage_validated() {
        let c = Container {
            reducer: "zfp-x".into(),
            meta: ArrayMeta::new(DType::F32, Shape::new(&[10])),
            chunks: vec![(4, vec![]), (4, vec![])], // only 8 of 10 rows
        };
        assert!(Container::from_bytes(&c.to_bytes()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let c = Container {
            reducer: "x".into(),
            meta: ArrayMeta::new(DType::F64, Shape::new(&[2])),
            chunks: vec![(2, vec![5; 100])],
        };
        let bytes = c.to_bytes();
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(Container::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn fixed_chunking_covers_exactly() {
        for (rows, rb, cb) in [(100, 40, 400), (7, 1000, 100), (1, 8, 1 << 20)] {
            let chunks = fixed_chunks(rows, rb, cb);
            assert_eq!(chunks.iter().sum::<usize>(), rows);
            assert!(chunks.iter().all(|&r| r > 0));
        }
        // 400-byte chunks of 40-byte rows = 10 rows, aligned up to 12.
        assert_eq!(fixed_chunks(25, 40, 400), vec![12, 12, 1]);
    }
}
