//! Shared pipeline launches: many small jobs, one device, one `Sim`.
//!
//! The serving layer batches small requests into a single launch so the
//! per-launch fixed costs (runtime setup, kernel-launch latency ramps)
//! are paid once, and so chunks of *different* jobs overlap on the
//! device's H2D/compute/D2H engines exactly like chunks of one large
//! array do in Fig. 9. This module provides that launch primitive:
//! [`run_batch`] submits every job's chunk DAG round-robin into one
//! simulator (the multi-GPU dispatcher's interleave pattern, collapsed
//! onto a single device) and returns per-job results plus the shared
//! span trace, so callers can attribute virtual time back to each job.

use crate::container::Container;
use crate::runner::{timed_run, CompressJob, DecompressJob, PipelineOptions};
use hpdr_core::{ArrayMeta, DeviceAdapter, HpdrError, Reducer, Result};
use hpdr_sim::{DeviceId, DeviceSpec, Ns, Sim, Trace};
use std::sync::Arc;

/// A job type foreign to this crate that rides in a shared launch —
/// e.g. progressive retrieval from `hpdr-progressive` (which sits
/// *above* this crate in the dependency graph, so the batch primitive
/// takes it through this trait instead of naming it). The item builds
/// its own op DAG into the shared simulator and surfaces restored
/// bytes like a decompress job.
pub trait ExternalBatchJob {
    /// Bytes on the uncompressed side (the goodput numerator).
    fn raw_bytes(&self) -> u64;
    /// Construct the job's per-launch state in the shared simulator.
    fn build(
        self: Box<Self>,
        sim: &mut Sim,
        dev: DeviceId,
        work: Arc<dyn DeviceAdapter>,
    ) -> Result<Box<dyn SubmittedBatchJob>>;
}

/// An external job after construction: chunk submission hooks mirror
/// [`CompressJob`]/[`DecompressJob`] so `run_batch` interleaves it
/// round-robin like any native job.
pub trait SubmittedBatchJob {
    fn num_chunks(&self) -> usize;
    fn submit_chunk(&mut self, sim: &mut Sim, k: usize);
    /// Trailing ops after the last chunk (gather/output stages).
    fn finish_submission(&mut self, sim: &mut Sim);
    /// Collect the restored bytes after `sim.run()`.
    fn finish(self: Box<Self>) -> Result<(Vec<u8>, ArrayMeta)>;
}

/// One job in a shared launch.
pub enum BatchItem {
    Compress {
        reducer: Arc<dyn Reducer>,
        input: Arc<Vec<u8>>,
        meta: ArrayMeta,
    },
    Decompress {
        reducer: Arc<dyn Reducer>,
        container: Container,
    },
    External(Box<dyn ExternalBatchJob>),
}

impl BatchItem {
    /// Bytes on the uncompressed side (the goodput numerator).
    pub fn raw_bytes(&self) -> u64 {
        match self {
            BatchItem::Compress { input, .. } => input.len() as u64,
            BatchItem::Decompress { container, .. } => container.meta.num_bytes() as u64,
            BatchItem::External(job) => job.raw_bytes(),
        }
    }
}

/// Per-job output of a shared launch.
pub enum BatchOutput {
    Compressed(Container),
    Restored(Vec<u8>, ArrayMeta),
}

/// Shared-launch accounting.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Virtual time of the whole launch (all jobs complete together).
    pub makespan: Ns,
    /// Uncompressed bytes moved across all jobs.
    pub raw_bytes: u64,
    /// Total chunks submitted across all jobs.
    pub num_chunks: usize,
    /// Span trace of the shared launch.
    pub trace: Trace,
}

impl BatchReport {
    /// Uncompressed throughput of the launch in GB/s of virtual time
    /// (1 byte/ns ⇒ bytes/ns is GB/s; 0 for an empty launch).
    pub fn goodput_gbps(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.raw_bytes as f64 / self.makespan.0 as f64
        }
    }
}

enum JobState {
    Compress(CompressJob),
    Decompress {
        job: DecompressJob,
        /// Output byte offset per chunk.
        starts: Vec<usize>,
    },
    External(Box<dyn SubmittedBatchJob>),
    /// Construction failed; the error is already in the output slot.
    Failed,
}

impl JobState {
    fn num_chunks(&self) -> usize {
        match self {
            JobState::Compress(j) => j.num_chunks(),
            JobState::Decompress { job, .. } => job.num_chunks(),
            JobState::External(job) => job.num_chunks(),
            JobState::Failed => 0,
        }
    }
}

/// Run `items` as one shared launch on a single simulated device.
///
/// Per-job failures (bad metadata, corrupt stream) land in that job's
/// result slot without sinking the rest of the batch; only systemic
/// failures (a poisoned simulator) return `Err` at the top level.
pub fn run_batch(
    spec: &DeviceSpec,
    work: Arc<dyn DeviceAdapter>,
    items: Vec<BatchItem>,
    opts: &PipelineOptions,
) -> Result<(Vec<Result<BatchOutput>>, BatchReport)> {
    if items.is_empty() {
        return Ok((
            Vec::new(),
            BatchReport {
                makespan: Ns::ZERO,
                raw_bytes: 0,
                num_chunks: 0,
                trace: Trace::default(),
            },
        ));
    }
    let raw_bytes: u64 = items.iter().map(BatchItem::raw_bytes).sum();
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(spec.clone(), rt);

    let mut outputs: Vec<Option<Result<BatchOutput>>> = Vec::with_capacity(items.len());
    let mut jobs: Vec<JobState> = Vec::with_capacity(items.len());
    for item in items {
        match item {
            BatchItem::Compress {
                reducer,
                input,
                meta,
            } => match CompressJob::new(
                &mut sim,
                dev,
                reducer,
                Arc::clone(&work),
                input,
                meta,
                *opts,
            ) {
                Ok(job) => {
                    jobs.push(JobState::Compress(job));
                    outputs.push(None);
                }
                Err(e) => {
                    jobs.push(JobState::Failed);
                    outputs.push(Some(Err(e)));
                }
            },
            BatchItem::Decompress { reducer, container } => {
                let row_bytes = container.meta.shape.row_elements() * container.meta.dtype.size();
                let mut starts = Vec::with_capacity(container.chunks.len());
                let mut at = 0usize;
                for (rows, _) in &container.chunks {
                    starts.push(at);
                    at += rows * row_bytes;
                }
                match DecompressJob::new(
                    &mut sim,
                    dev,
                    reducer,
                    Arc::clone(&work),
                    &container,
                    *opts,
                ) {
                    Ok(job) => {
                        jobs.push(JobState::Decompress { job, starts });
                        outputs.push(None);
                    }
                    Err(e) => {
                        jobs.push(JobState::Failed);
                        outputs.push(Some(Err(e)));
                    }
                }
            }
            BatchItem::External(ext) => match ext.build(&mut sim, dev, Arc::clone(&work)) {
                Ok(job) => {
                    jobs.push(JobState::External(job));
                    outputs.push(None);
                }
                Err(e) => {
                    jobs.push(JobState::Failed);
                    outputs.push(Some(Err(e)));
                }
            },
        }
    }

    // Round-robin chunk submission across jobs — the interleave that
    // lets job B's H2D ride under job A's compute.
    let max_chunks = jobs.iter().map(JobState::num_chunks).max().unwrap_or(0);
    let mut total_chunks = 0usize;
    for k in 0..max_chunks {
        for state in &mut jobs {
            if k >= state.num_chunks() {
                continue;
            }
            total_chunks += 1;
            match state {
                JobState::Compress(job) => job.submit_chunk(&mut sim, k),
                JobState::Decompress { job, starts } => job.submit_chunk(&mut sim, k, starts[k]),
                JobState::External(job) => job.submit_chunk(&mut sim, k),
                JobState::Failed => unreachable!("failed jobs have zero chunks"),
            }
        }
    }
    for state in &mut jobs {
        match state {
            JobState::Decompress { job, .. } => job.finish_submission(&mut sim),
            JobState::External(job) => job.finish_submission(&mut sim),
            _ => {}
        }
    }

    sim.set_trace(true);
    let (timeline, runtime) = timed_run(&mut sim);
    let mut trace = sim.take_trace().expect("tracing was enabled");
    trace.set_runtime_stats(runtime);

    for (state, slot) in jobs.into_iter().zip(outputs.iter_mut()) {
        match state {
            JobState::Compress(job) => {
                *slot = Some(job.finish().map(BatchOutput::Compressed));
            }
            JobState::Decompress { job, .. } => {
                *slot = Some(
                    job.finish()
                        .map(|(bytes, meta)| BatchOutput::Restored(bytes, meta)),
                );
            }
            JobState::External(job) => {
                *slot = Some(
                    job.finish()
                        .map(|(bytes, meta)| BatchOutput::Restored(bytes, meta)),
                );
            }
            JobState::Failed => debug_assert!(slot.is_some()),
        }
    }
    let results = outputs
        .into_iter()
        .map(|slot| slot.ok_or_else(|| HpdrError::invalid("batch job produced no result")))
        .map(|r| r.and_then(|inner| inner))
        .collect();
    Ok((
        results,
        BatchReport {
            makespan: timeline.makespan(),
            raw_bytes,
            num_chunks: total_chunks,
            trace,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, DType};
    use hpdr_huffman::ByteHuffmanReducer;
    use hpdr_zfp::{ZfpConfig, ZfpReducer};

    fn work() -> Arc<dyn DeviceAdapter> {
        Arc::new(CpuParallelAdapter::new(4))
    }

    fn item(side: usize, seed: u64) -> (Arc<Vec<u8>>, ArrayMeta) {
        let d = hpdr_data::nyx_density(side, seed);
        (
            Arc::new(d.bytes.clone()),
            ArrayMeta::new(DType::F32, d.shape.clone()),
        )
    }

    fn zfp() -> Arc<dyn Reducer> {
        Arc::new(ZfpReducer(ZfpConfig::fixed_rate(16)))
    }

    #[test]
    fn batched_outputs_match_solo_outputs() {
        let spec = hpdr_sim::v100();
        let opts = PipelineOptions::fixed(16 * 1024);
        let inputs: Vec<_> = (0..3).map(|s| item(16, s)).collect();
        let items = inputs
            .iter()
            .map(|(input, meta)| BatchItem::Compress {
                reducer: zfp(),
                input: Arc::clone(input),
                meta: meta.clone(),
            })
            .collect();
        let (results, report) = run_batch(&spec, work(), items, &opts).unwrap();
        assert_eq!(results.len(), 3);
        assert!(report.makespan > Ns::ZERO);
        assert!(report.num_chunks >= 3);
        for (r, (input, meta)) in results.into_iter().zip(&inputs) {
            let BatchOutput::Compressed(c) = r.unwrap() else {
                panic!("expected compressed output");
            };
            // Byte-identical to a solo pipelined run of the same job.
            let (solo, _) = crate::runner::compress_pipelined(
                &spec,
                work(),
                zfp(),
                Arc::clone(input),
                meta,
                &opts,
            )
            .unwrap();
            assert_eq!(c.chunks, solo.chunks);
        }
    }

    #[test]
    fn mixed_compress_decompress_roundtrip_in_one_launch() {
        let spec = hpdr_sim::v100();
        let opts = PipelineOptions::fixed(16 * 1024);
        let (input, meta) = item(16, 11);
        let (container, _) = crate::runner::compress_pipelined(
            &spec,
            work(),
            zfp(),
            Arc::clone(&input),
            &meta,
            &opts,
        )
        .unwrap();
        let items = vec![
            BatchItem::Compress {
                reducer: zfp(),
                input: Arc::clone(&input),
                meta: meta.clone(),
            },
            BatchItem::Decompress {
                reducer: zfp(),
                container,
            },
        ];
        let (mut results, report) = run_batch(&spec, work(), items, &opts).unwrap();
        assert_eq!(report.raw_bytes, 2 * input.len() as u64);
        let BatchOutput::Restored(bytes, rmeta) = results.pop().unwrap().unwrap() else {
            panic!("expected restored output");
        };
        assert_eq!(rmeta, meta);
        assert_eq!(bytes.len(), input.len());
        assert!(matches!(
            results.pop().unwrap().unwrap(),
            BatchOutput::Compressed(_)
        ));
    }

    #[test]
    fn per_job_failure_does_not_sink_the_batch() {
        let spec = hpdr_sim::v100();
        let opts = PipelineOptions::fixed(16 * 1024);
        let (input, meta) = item(8, 1);
        let bad_meta = ArrayMeta::new(DType::F64, meta.shape.clone()); // wrong byte count
        let items = vec![
            BatchItem::Compress {
                reducer: Arc::new(ByteHuffmanReducer::default()),
                input: Arc::clone(&input),
                meta: bad_meta,
            },
            BatchItem::Compress {
                reducer: Arc::new(ByteHuffmanReducer::default()),
                input: Arc::clone(&input),
                meta,
            },
        ];
        let (results, _) = run_batch(&spec, work(), items, &opts).unwrap();
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (results, report) = run_batch(
            &hpdr_sim::v100(),
            work(),
            Vec::new(),
            &PipelineOptions::default(),
        )
        .unwrap();
        assert!(results.is_empty());
        assert_eq!(report.makespan, Ns::ZERO);
    }

    #[test]
    fn batching_amortizes_virtual_time_over_solo_launches() {
        // N small jobs through one shared launch vs N solo launches:
        // the shared launch's makespan must beat the sum of the solos.
        let spec = hpdr_sim::v100();
        let opts = PipelineOptions::fixed(8 * 1024);
        let inputs: Vec<_> = (0..6).map(|s| item(12, s)).collect();
        let items = inputs
            .iter()
            .map(|(input, meta)| BatchItem::Compress {
                reducer: zfp(),
                input: Arc::clone(input),
                meta: meta.clone(),
            })
            .collect();
        let (_, shared) = run_batch(&spec, work(), items, &opts).unwrap();
        let solo_total: Ns = inputs
            .iter()
            .map(|(input, meta)| {
                crate::runner::compress_pipelined(
                    &spec,
                    work(),
                    zfp(),
                    Arc::clone(input),
                    meta,
                    &opts,
                )
                .unwrap()
                .1
                .makespan
            })
            .sum();
        assert!(
            shared.makespan < solo_total,
            "shared {} !< solo sum {}",
            shared.makespan,
            solo_total
        );
    }
}
