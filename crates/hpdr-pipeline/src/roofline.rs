//! The modified roofline throughput model Φ(C) and transfer model Θ(t)
//! (paper §V-C, Fig. 11):
//!
//! ```text
//! Φ(C) = α·C + β   if C <  C_threshold   (GPU not saturated)
//!        γ         if C >= C_threshold   (saturated)
//! Θ(t) = t · bw_h2d                      (max bytes transferable in t)
//! ```
//!
//! The model is fitted from profiled `(chunk size, throughput)` points:
//! γ is the throughput of the largest profiled chunk; points at or above
//! `f·γ` (default 0.9) define the plateau; the rest are fitted by least
//! squares.

use hpdr_core::{KernelClass, Ns};
use hpdr_sim::DeviceSpec;

/// Fitted Φ model. Throughputs in GB/s (= bytes/ns), sizes in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    pub alpha: f64,
    pub beta: f64,
    pub gamma: f64,
    pub threshold: u64,
}

impl Roofline {
    /// Estimated reduction throughput at chunk size `c` (GB/s).
    pub fn phi(&self, c: u64) -> f64 {
        if c >= self.threshold {
            self.gamma
        } else {
            (self.alpha * c as f64 + self.beta).clamp(1e-6, self.gamma)
        }
    }

    /// Estimated kernel time for a chunk of `c` bytes.
    pub fn kernel_time(&self, c: u64) -> Ns {
        Ns((c as f64 / self.phi(c)).round() as u64)
    }
}

/// Θ: the maximum chunk size transferable host→device within `t`.
pub fn theta(t: Ns, h2d_gbps: f64) -> u64 {
    (t.0 as f64 * h2d_gbps) as u64
}

/// Profile a kernel class on a simulated device: query the calibrated
/// cost model over a geometric sweep of chunk sizes (this plays the role
/// of the paper's one-off profiling run on real hardware).
pub fn profile_kernel(spec: &DeviceSpec, class: KernelClass, sizes: &[u64]) -> Vec<(u64, f64)> {
    sizes
        .iter()
        .map(|&c| {
            let t = spec.kernel_duration(class, c);
            (c, c as f64 / t.0.max(1) as f64)
        })
        .collect()
}

/// Default geometric size sweep: 4 KiB … 1 GiB (profiling starts small
/// so the unsaturated ramp is observable on any device).
pub fn default_sweep() -> Vec<u64> {
    (0..=18).map(|i| (4u64 << 10) << i).collect()
}

/// Fit a [`Roofline`] from profile points (paper's procedure: γ from the
/// largest chunk, walk down while throughput stays ≥ f·γ, regress the
/// rest linearly).
pub fn fit(points: &[(u64, f64)], f: f64) -> Roofline {
    assert!(!points.is_empty(), "cannot fit an empty profile");
    let mut pts = points.to_vec();
    pts.sort_by_key(|&(c, _)| c);
    let gamma = pts.last().unwrap().1;
    // Threshold: smallest size whose throughput is within f·γ.
    let threshold = pts
        .iter()
        .find(|&&(_, p)| p >= f * gamma)
        .map(|&(c, _)| c)
        .unwrap_or(pts.last().unwrap().0);
    // Linear fit over the unsaturated region.
    let linear: Vec<(f64, f64)> = pts
        .iter()
        .filter(|&&(c, _)| c < threshold)
        .map(|&(c, p)| (c as f64, p))
        .collect();
    let (alpha, beta) = if linear.len() >= 2 {
        let n = linear.len() as f64;
        let sx: f64 = linear.iter().map(|p| p.0).sum();
        let sy: f64 = linear.iter().map(|p| p.1).sum();
        let sxx: f64 = linear.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = linear.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-9 {
            (0.0, sy / n)
        } else {
            let a = (n * sxy - sx * sy) / denom;
            (a, (sy - a * sx) / n)
        }
    } else if linear.len() == 1 {
        (0.0, linear[0].1)
    } else {
        (0.0, gamma)
    };
    Roofline {
        alpha,
        beta: beta.max(1e-6),
        gamma,
        threshold,
    }
}

/// Algorithm 4's chunk schedule: starting from `init_bytes`, each next
/// chunk is sized so its H2D transfer hides under the current chunk's
/// estimated kernel time: `C_next = min(Θ(C_curr / Φ(C_curr)), C_limit)`.
/// Sizes are rounded to whole leading-dimension rows.
pub fn adaptive_chunks(
    total_rows: usize,
    row_bytes: usize,
    init_bytes: u64,
    limit_bytes: u64,
    model: &Roofline,
    h2d_gbps: f64,
) -> Vec<usize> {
    let row_bytes = row_bytes.max(1) as u64;
    let align = crate::container::ROW_ALIGN;
    let mut out = Vec::new();
    let mut left = total_rows;
    let mut cur = init_bytes.clamp(row_bytes, limit_bytes);
    while left > 0 {
        let rows = ((cur / row_bytes) as usize).clamp(1, left);
        // Align to the codec block granularity (see container::ROW_ALIGN).
        let rows = (rows.div_ceil(align) * align).clamp(1, left);
        out.push(rows);
        left -= rows;
        let t_kernel = model.kernel_time(rows as u64 * row_bytes);
        // Chunks never shrink: Algorithm 4 grows the chunk while the
        // estimated kernel time exceeds the transfer time.
        cur = theta(t_kernel, h2d_gbps)
            .max(rows as u64 * row_bytes)
            .clamp(row_bytes, limit_bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::spec::v100;

    #[test]
    fn fit_recovers_plateau_and_ramp() {
        // Synthetic device: plateau 40 GB/s above 64 MiB.
        let pts: Vec<(u64, f64)> = (0..=8)
            .map(|i| {
                let c = (1u64 << 20) << i;
                let p = (40.0 * c as f64 / (64.0 * 1048576.0)).min(40.0);
                (c, p)
            })
            .collect();
        let m = fit(&pts, 0.9);
        assert!((m.gamma - 40.0).abs() < 1e-9);
        assert!(m.threshold <= 64 * 1048576);
        // Ramp region estimates grow with size and stay below γ.
        assert!(m.phi(1 << 20) < m.phi(1 << 24));
        assert!(m.phi(1 << 22) <= 40.0);
        assert!((m.phi(1 << 30) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn profile_of_sim_device_is_monotone() {
        let spec = v100();
        let pts = profile_kernel(&spec, KernelClass::Mgard, &default_sweep());
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
        let m = fit(&pts, 0.9);
        // V100 MGARD plateau is 30 GB/s in the calibration.
        assert!((m.gamma - 30.0).abs() < 2.0, "gamma {}", m.gamma);
    }

    #[test]
    fn theta_converts_time_to_bytes() {
        assert_eq!(theta(Ns(1000), 12.0), 12_000);
        assert_eq!(theta(Ns::ZERO, 12.0), 0);
    }

    #[test]
    fn adaptive_schedule_grows_until_limit() {
        let m = fit(
            &profile_kernel(&v100(), KernelClass::Mgard, &default_sweep()),
            0.9,
        );
        let row_bytes = 1 << 20; // 1 MiB rows
        let chunks = adaptive_chunks(4096, row_bytes, 8 << 20, 2 << 30, &m, 45.0);
        assert_eq!(chunks.iter().sum::<usize>(), 4096);
        // Growing prefix: each chunk at least as large until the cap.
        let first = chunks[0];
        let max = *chunks.iter().max().unwrap();
        assert!(first < max, "schedule should grow: {chunks:?}");
        // Monotone non-decreasing except the final remainder chunk.
        for w in chunks[..chunks.len() - 1].windows(2) {
            assert!(w[1] >= w[0], "non-monotone: {chunks:?}");
        }
    }

    #[test]
    fn adaptive_handles_tiny_inputs() {
        let m = Roofline {
            alpha: 0.0,
            beta: 10.0,
            gamma: 10.0,
            threshold: 1,
        };
        let chunks = adaptive_chunks(3, 100, 1 << 20, 1 << 30, &m, 12.0);
        assert_eq!(chunks, vec![3]);
        let chunks = adaptive_chunks(1, 8, 4, 16, &m, 12.0);
        assert_eq!(chunks.iter().sum::<usize>(), 1);
    }

    #[test]
    fn kernel_time_is_size_over_phi() {
        let m = Roofline {
            alpha: 0.0,
            beta: 2.0,
            gamma: 2.0,
            threshold: 1,
        };
        assert_eq!(m.kernel_time(2000), Ns(1000));
    }
}
