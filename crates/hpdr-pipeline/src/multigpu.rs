//! Multi-GPU dispatch (paper §VI-E, Fig. 16).
//!
//! All devices of a node share one runtime, so alloc/free ops serialize
//! on the runtime-lock engine. With the Context Memory Model enabled,
//! HPDR performs no per-chunk allocator traffic and scales near-ideally;
//! with it disabled (the comparators' behaviour), the shared lock
//! throttles every device. Chunk submissions are interleaved round-robin
//! across devices, matching concurrent host threads launching work.

use crate::container::Container;
use crate::runner::{CompressJob, DecompressJob, PipelineOptions};
use hpdr_core::{ArrayMeta, DeviceAdapter, Reducer, Result};
use hpdr_sim::{DeviceSpec, Ns, Sim, Trace};
use std::sync::Arc;

/// Result of a multi-GPU run.
#[derive(Debug)]
pub struct MultiGpuReport {
    /// Total raw bytes across devices.
    pub input_bytes: u64,
    pub compressed_bytes: u64,
    pub makespan: Ns,
    /// Aggregate throughput (GB/s).
    pub aggregate_gbps: f64,
    /// Per-device overlap ratios (trace-derived, paper §V-C).
    pub overlaps: Vec<Option<f64>>,
    pub num_devices: usize,
    /// Span trace of the whole multi-device run (all devices share one
    /// virtual clock, so one trace covers the node).
    pub trace: Trace,
}

/// Compress one array per device, all devices sharing a runtime.
/// Returns the per-device containers and the aggregate report.
pub fn compress_multi_gpu(
    spec: &DeviceSpec,
    n_devices: usize,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    inputs: Vec<Arc<Vec<u8>>>,
    meta: &ArrayMeta,
    opts: &PipelineOptions,
) -> Result<(Vec<Container>, MultiGpuReport)> {
    assert_eq!(inputs.len(), n_devices, "one input per device");
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let devices: Vec<_> = (0..n_devices)
        .map(|_| sim.add_device(spec.clone(), rt))
        .collect();
    let input_bytes: u64 = inputs.iter().map(|i| i.len() as u64).sum();

    let mut jobs: Vec<CompressJob> = devices
        .iter()
        .zip(inputs)
        .map(|(&dev, input)| {
            CompressJob::new(
                &mut sim,
                dev,
                Arc::clone(&reducer),
                Arc::clone(&work),
                input,
                meta.clone(),
                *opts,
            )
        })
        .collect::<Result<_>>()?;

    // Round-robin interleaved submission across devices (concurrent host
    // threads each driving one GPU).
    let max_chunks = jobs.iter().map(|j| j.num_chunks()).max().unwrap_or(0);
    for k in 0..max_chunks {
        for job in jobs.iter_mut() {
            if k < job.num_chunks() {
                job.submit_chunk(&mut sim, k);
            }
        }
    }
    sim.set_trace(true);
    let timeline = sim.run();
    let trace = sim.take_trace().expect("tracing was enabled");
    let makespan = timeline.makespan();
    let overlaps = devices
        .iter()
        .map(|&d| hpdr_trace::overlap_ratio(&trace, d))
        .collect();
    let containers: Vec<Container> = jobs
        .into_iter()
        .map(|j| j.finish())
        .collect::<Result<_>>()?;
    let compressed_bytes = containers.iter().map(|c| c.total_stream_bytes()).sum();
    Ok((
        containers,
        MultiGpuReport {
            input_bytes,
            compressed_bytes,
            makespan,
            aggregate_gbps: hpdr_sim::gbps(input_bytes, makespan),
            overlaps,
            num_devices: n_devices,
            trace,
        },
    ))
}

/// Reconstruct one container per device, all devices sharing a runtime.
pub fn decompress_multi_gpu(
    spec: &DeviceSpec,
    n_devices: usize,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    containers: &[Container],
    opts: &PipelineOptions,
) -> Result<(Vec<Vec<u8>>, MultiGpuReport)> {
    assert_eq!(containers.len(), n_devices, "one container per device");
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let devices: Vec<_> = (0..n_devices)
        .map(|_| sim.add_device(spec.clone(), rt))
        .collect();
    let compressed_bytes: u64 = containers.iter().map(|c| c.total_stream_bytes()).sum();

    let mut jobs: Vec<DecompressJob> = devices
        .iter()
        .zip(containers)
        .map(|(&dev, container)| {
            DecompressJob::new(
                &mut sim,
                dev,
                Arc::clone(&reducer),
                Arc::clone(&work),
                container,
                *opts,
            )
        })
        .collect::<Result<_>>()?;

    // Per-device running byte offsets for the output placement.
    let mut offsets = vec![0usize; n_devices];
    let row_bytes: Vec<usize> = containers
        .iter()
        .map(|c| c.meta.shape.row_elements() * c.meta.dtype.size())
        .collect();
    let max_chunks = jobs.iter().map(|j| j.num_chunks()).max().unwrap_or(0);
    for k in 0..max_chunks {
        for (d, job) in jobs.iter_mut().enumerate() {
            if k < job.num_chunks() {
                job.submit_chunk(&mut sim, k, offsets[d]);
                offsets[d] += containers[d].chunks[k].0 * row_bytes[d];
            }
        }
    }
    for job in jobs.iter_mut() {
        job.finish_submission(&mut sim);
    }
    sim.set_trace(true);
    let timeline = sim.run();
    let trace = sim.take_trace().expect("tracing was enabled");
    let makespan = timeline.makespan();
    let overlaps = devices
        .iter()
        .map(|&d| hpdr_trace::overlap_ratio(&trace, d))
        .collect();
    let mut outputs = Vec::with_capacity(n_devices);
    let mut input_bytes = 0u64;
    for job in jobs {
        let (bytes, _) = job.finish()?;
        input_bytes += bytes.len() as u64;
        outputs.push(bytes);
    }
    Ok((
        outputs,
        MultiGpuReport {
            input_bytes,
            compressed_bytes,
            makespan,
            aggregate_gbps: hpdr_sim::gbps(input_bytes, makespan),
            overlaps,
            num_devices: n_devices,
            trace,
        },
    ))
}

/// Fig. 16's decompression counterpart of [`scalability_sweep`].
pub fn decompress_scalability_sweep(
    spec: &DeviceSpec,
    max_devices: usize,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    container: &Container,
    opts: &PipelineOptions,
) -> Result<Vec<(usize, f64, f64)>> {
    let mut out = Vec::new();
    let mut single = 0.0f64;
    for n in 1..=max_devices {
        let containers: Vec<Container> = (0..n).map(|_| container.clone()).collect();
        let (_, report) = decompress_multi_gpu(
            spec,
            n,
            Arc::clone(&work),
            Arc::clone(&reducer),
            &containers,
            opts,
        )?;
        if n == 1 {
            single = report.aggregate_gbps;
        }
        let ideal = single * n as f64;
        out.push((n, report.aggregate_gbps, report.aggregate_gbps / ideal));
    }
    Ok(out)
}

/// Scalability study: run 1..=max_devices and report
/// `(devices, aggregate_gbps, real_to_ideal_ratio)` — the paper's
/// Fig. 16 metric, where ideal speed is `single-device × N`.
pub fn scalability_sweep(
    spec: &DeviceSpec,
    max_devices: usize,
    work: Arc<dyn DeviceAdapter>,
    reducer: Arc<dyn Reducer>,
    make_input: impl Fn() -> Arc<Vec<u8>>,
    meta: &ArrayMeta,
    opts: &PipelineOptions,
) -> Result<Vec<(usize, f64, f64)>> {
    let mut out = Vec::new();
    let mut single = 0.0f64;
    for n in 1..=max_devices {
        let inputs: Vec<Arc<Vec<u8>>> = (0..n).map(|_| make_input()).collect();
        let (_, report) = compress_multi_gpu(
            spec,
            n,
            Arc::clone(&work),
            Arc::clone(&reducer),
            inputs,
            meta,
            opts,
        )?;
        if n == 1 {
            single = report.aggregate_gbps;
        }
        let ideal = single * n as f64;
        out.push((n, report.aggregate_gbps, report.aggregate_gbps / ideal));
    }
    Ok(out)
}

/// Average real-to-ideal ratio of a sweep (the number the paper quotes:
/// "96% avg. scalability").
pub fn average_scalability(sweep: &[(usize, f64, f64)]) -> f64 {
    if sweep.is_empty() {
        return 0.0;
    }
    sweep.iter().map(|&(_, _, r)| r).sum::<f64>() / sweep.len() as f64
}
