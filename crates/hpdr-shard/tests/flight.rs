//! Integration: causal flight tracing through a failing cluster.
//!
//! Drives the seeded quick loadgen through a 4-node cluster with a
//! mid-run node kill and checks the tentpole invariants end to end:
//! every analyzed job's six-way breakdown sums exactly to its
//! end-to-end virtual-time latency (re-routed jobs included), `hpdr
//! explain --worst N` ranks the true top-N latency jobs, the dead
//! shard's ring buffer lands in the report as the black-box dump, and
//! the whole document is byte-identical across same-seed runs.

use hpdr_flight::{explain_lines, validate_flight_json};
use hpdr_shard::{run_cluster_loadgen, ClusterLoadOptions};
use hpdr_sim::Ns;

/// A dense short workload with a mid-window node kill: high enough
/// arrival rate that shard 0 is guaranteed to hold queued/in-flight
/// jobs at the failure instant, so re-routing actually happens.
fn fail_opts() -> ClusterLoadOptions {
    let mut opts = ClusterLoadOptions::quick();
    opts.base.rps = 50_000.0;
    opts.base.duration_s = 0.01;
    opts.base.devices = 1;
    opts.fail = Some((0, Ns(5_000_000)));
    opts
}

#[test]
fn breakdowns_sum_exactly_for_every_job_including_rerouted() {
    let report = run_cluster_loadgen(&fail_opts()).unwrap();
    assert_eq!(report.lost, 0, "failure must not lose jobs");
    let flight = report.flight.as_ref().expect("flight tracing is on");
    assert!(flight.ok());
    assert_eq!(
        flight.total_jobs, report.logical_submitted,
        "every popped job must be traced"
    );
    assert!(flight.total_jobs > 0);
    for row in &flight.rows {
        assert_eq!(
            row.components_sum(),
            row.latency,
            "trace {}: breakdown must sum to its latency",
            row.trace
        );
    }
    // The kill actually re-routed work, and every re-routed job was
    // tail-sampled with a non-zero retry component charged up to its
    // last re-route.
    assert!(report.rerouted > 0, "the node kill must re-route jobs");
    let rerouted: Vec<_> = flight.rows.iter().filter(|r| r.hops > 0).collect();
    assert!(!rerouted.is_empty());
    for row in &rerouted {
        assert!(row.sampled, "re-routed trace {} must be sampled", row.trace);
        assert!(row.retry > 0, "re-routed trace {} charges retry", row.trace);
    }
}

#[test]
fn blackbox_dump_carries_the_dead_shards_ring() {
    let report = run_cluster_loadgen(&fail_opts()).unwrap();
    let flight = report.flight.as_ref().unwrap();
    let bb = flight.blackbox.as_ref().expect("node 0 died: blackbox");
    assert_eq!(bb.shard, 0);
    assert!(!bb.log.events.is_empty(), "dead shard had recorded events");
    assert!(bb.log.events.iter().all(|e| e.shard == 0));
    let doc = report.to_json();
    assert!(doc.contains("\"blackbox\": {\"shard\":0,"));
}

#[test]
fn explain_worst_returns_the_true_top_latency_jobs() {
    let report = run_cluster_loadgen(&fail_opts()).unwrap();
    let flight = report.flight.as_ref().unwrap();
    let doc = report.to_json();
    validate_flight_json(&doc).unwrap();
    let mut ranked: Vec<_> = flight.rows.iter().collect();
    ranked.sort_by_key(|r| (std::cmp::Reverse(r.latency), r.trace));
    let lines = explain_lines(&doc, None, 5).unwrap();
    for (i, expect) in ranked.iter().take(5).enumerate() {
        let head = format!("#{} trace {} ", i + 1, expect.trace);
        assert!(
            lines[1 + 2 * i].starts_with(&head),
            "rank {}: expected `{head}…`, got `{}`",
            i + 1,
            lines[1 + 2 * i]
        );
        assert!(lines[1 + 2 * i].contains(&format!("latency={} ns", expect.latency)));
    }
}

#[test]
fn flight_reports_are_byte_identical_across_same_seed_runs() {
    let a = run_cluster_loadgen(&fail_opts()).unwrap();
    let b = run_cluster_loadgen(&fail_opts()).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    let (fa, fb) = (a.flight.as_ref().unwrap(), b.flight.as_ref().unwrap());
    assert_eq!(hpdr_flight::to_json(fa), hpdr_flight::to_json(fb));
}
