//! Cluster load generation: the hpdr-serve seeded workloads driven
//! through the sharded front-end.
//!
//! Payload materialization uses one central [`PayloadCache`] (the
//! stored objects exist once, cluster-wide); the per-node caches inside
//! the cluster only track *residency*, so locality is measurable as a
//! per-shard hit rate. The same seed, mix and hazards as the
//! single-node loadgen apply — a 1-node cluster run serves the exact
//! job stream `hpdr loadgen` serves.

use crate::cluster::{Cluster, ClusterConfig};
use crate::placement::PlacementPolicy;
use crate::report::ClusterReport;
use hpdr_core::{CpuParallelAdapter, DeviceAdapter};
use hpdr_io::{summit_gpfs, FetchCostModel};
use hpdr_serve::loadgen::{generate_closed_with, generate_open_with};
use hpdr_serve::{LoadgenOptions, PayloadCache, Policy, ServeConfig, ServeError, VecSource};
use hpdr_sim::Ns;
use std::sync::Arc;

/// Options of one cluster loadgen run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterLoadOptions {
    /// The workload (rate, duration, tenants, seed, open/closed loop).
    /// `devices` is the per-shard device count.
    pub base: LoadgenOptions,
    pub nodes: usize,
    pub policy: PlacementPolicy,
    /// Kill shard `.0` at virtual instant `.1`.
    pub fail: Option<(usize, Ns)>,
}

impl Default for ClusterLoadOptions {
    fn default() -> Self {
        ClusterLoadOptions {
            base: LoadgenOptions::default(),
            nodes: 4,
            policy: PlacementPolicy::Locality,
            fail: None,
        }
    }
}

impl ClusterLoadOptions {
    /// The `--quick` smoke preset: the loadgen quick mix over 4 nodes.
    pub fn quick() -> ClusterLoadOptions {
        ClusterLoadOptions {
            base: LoadgenOptions::quick(),
            ..ClusterLoadOptions::default()
        }
    }
}

/// Cluster configuration for a loadgen run.
pub fn cluster_config(opts: &ClusterLoadOptions) -> ClusterConfig {
    ClusterConfig {
        nodes: opts.nodes.max(1),
        policy: opts.policy,
        shard: ServeConfig {
            devices: opts.base.devices.max(1),
            policy: Policy::Batched,
            metrics: None,
            ..ServeConfig::default()
        },
        fetch: FetchCostModel::new(summit_gpfs(), 4),
        fail: opts.fail,
        max_retries: 3,
        seed: opts.base.seed,
        flight: Some(hpdr_flight::FlightConfig {
            seed: opts.base.seed,
            ..hpdr_flight::FlightConfig::default()
        }),
    }
}

/// Run a full cluster load-generation session.
pub fn run_cluster_loadgen(opts: &ClusterLoadOptions) -> Result<ClusterReport, ServeError> {
    let work: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::with_defaults());
    let cfg = cluster_config(opts);
    let mut cache = PayloadCache::new();
    let outcome = if opts.base.closed {
        let mut source = generate_closed_with(&opts.base, work.as_ref(), &mut cache)?;
        Cluster::new(cfg, work).run(&mut source)
    } else {
        let jobs = generate_open_with(&opts.base, work.as_ref(), &mut cache)?;
        let mut source = VecSource::new(jobs);
        Cluster::new(cfg, work).run(&mut source)
    };
    Ok(ClusterReport::build(outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_cluster_json;

    #[test]
    fn quick_cluster_loadgen_is_sound_and_deterministic() {
        let opts = ClusterLoadOptions::quick();
        let a = run_cluster_loadgen(&opts).unwrap();
        assert_eq!(a.lost, 0);
        assert!(a.ok());
        assert_eq!(a.logical_submitted, a.shards.iter().map(|s| s.placed).sum());
        validate_cluster_json(&a.to_json()).unwrap();
        let b = run_cluster_loadgen(&opts).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same seed must be byte-identical");
    }

    #[test]
    fn locality_beats_random_hit_rate() {
        let locality = run_cluster_loadgen(&ClusterLoadOptions::quick()).unwrap();
        let random = run_cluster_loadgen(&ClusterLoadOptions {
            policy: PlacementPolicy::Random,
            ..ClusterLoadOptions::quick()
        })
        .unwrap();
        assert_eq!(random.lost, 0);
        assert!(
            locality.cache_hit_rate > random.cache_hit_rate,
            "locality {} must beat random {}",
            locality.cache_hit_rate,
            random.cache_hit_rate
        );
    }
}
