//! Deterministic job placement across scheduler shards.
//!
//! The locality policy uses rendezvous (highest-random-weight) hashing:
//! every live shard scores `fnv1a(key ‖ shard)` and the highest score
//! wins, so placement is stable under membership changes — when a node
//! dies, only the keys it owned move, everything else stays put.
//! Data-dependent jobs (decompress, retrieve) hash the *data key* of
//! the stored object they need, so all consumers of one container or
//! component set land on the node that holds it; compress jobs (no
//! stored input) hash `(tenant, codec)` so a tenant's output family
//! co-locates with its future retrieve traffic. The random policy is
//! the locality baseline: a seeded hash over the submission sequence
//! number, uniform over live shards and just as deterministic.

use hpdr_core::fnv1a;
use hpdr_serve::{JobPayload, JobRequest};

/// Placement policy of the cluster front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Rendezvous hashing with data-key affinity (the default).
    Locality,
    /// Seeded uniform scatter — the locality baseline.
    Random,
}

impl PlacementPolicy {
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Locality => "locality",
            PlacementPolicy::Random => "random",
        }
    }

    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s {
            "locality" => Some(PlacementPolicy::Locality),
            "random" => Some(PlacementPolicy::Random),
            _ => None,
        }
    }
}

/// Identity of the stored object a data-dependent job needs: the
/// direction tag, the codec label (which encodes its parameters), and
/// the field's leading dimension. Jobs with equal keys share one
/// materialized container / component set, so residency and
/// home-placement are tracked at this granularity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DataKey {
    pub kind: u8,
    pub codec: String,
    pub side: usize,
}

impl DataKey {
    fn bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.codec.len() + 16);
        b.push(self.kind);
        b.extend_from_slice(self.codec.as_bytes());
        b.extend_from_slice(&(self.side as u64).to_le_bytes());
        b
    }
}

/// The data key of a job, or `None` for compress jobs (their input is
/// client-supplied, not fetched from a stored object).
pub fn data_key(req: &JobRequest) -> Option<DataKey> {
    let side = req.payload.meta().shape.dims()[0];
    match &req.payload {
        JobPayload::Compress { .. } => None,
        JobPayload::Decompress { .. } => Some(DataKey {
            kind: 1,
            codec: req.codec.label(),
            side,
        }),
        JobPayload::Retrieve { .. } => Some(DataKey {
            kind: 2,
            codec: req.codec.label(),
            side,
        }),
    }
}

/// The byte string the locality policy hashes for a job: its data key
/// when it has one, else `(tenant, codec)`.
pub fn placement_bytes(req: &JobRequest) -> Vec<u8> {
    match data_key(req) {
        Some(k) => k.bytes(),
        None => {
            let mut b = Vec::with_capacity(req.codec.label().len() + 8);
            b.extend_from_slice(&req.tenant.0.to_le_bytes());
            b.extend_from_slice(req.codec.label().as_bytes());
            b
        }
    }
}

/// Rendezvous pick: the live shard with the highest `fnv1a(key ‖ id)`
/// score (ties break to the lowest id). Panics on an empty shard list —
/// the cluster never places with zero live shards.
pub fn hrw_pick(key: &[u8], shards: &[usize]) -> usize {
    *shards
        .iter()
        .max_by_key(|&&s| {
            let mut b = Vec::with_capacity(key.len() + 8);
            b.extend_from_slice(key);
            b.extend_from_slice(&(s as u64).to_le_bytes());
            (fnv1a(&b), std::cmp::Reverse(s))
        })
        .expect("hrw_pick over no shards")
}

/// The home shard of a stored object: where its data "lives" (fetches
/// from anywhere else cost virtual transfer time).
pub fn home_of(key: &DataKey, shards: &[usize]) -> usize {
    hrw_pick(&key.bytes(), shards)
}

/// Seeded uniform pick for the random policy: hash of (seed, sequence
/// number) over the live list — deterministic without an RNG stream.
pub fn random_pick(seed: u64, seq: u64, shards: &[usize]) -> usize {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&seed.to_le_bytes());
    b[8..].copy_from_slice(&seq.to_le_bytes());
    shards[(fnv1a(&b) % shards.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrw_is_stable_under_membership_change() {
        let all: Vec<usize> = (0..4).collect();
        let keys: Vec<Vec<u8>> = (0..64u64).map(|i| i.to_le_bytes().to_vec()).collect();
        let before: Vec<usize> = keys.iter().map(|k| hrw_pick(k, &all)).collect();
        // Remove shard 2: only keys homed on 2 may move.
        let survivors: Vec<usize> = vec![0, 1, 3];
        for (k, &b) in keys.iter().zip(&before) {
            let after = hrw_pick(k, &survivors);
            if b != 2 {
                assert_eq!(after, b, "key moved although its home survived");
            } else {
                assert_ne!(after, 2);
            }
        }
    }

    #[test]
    fn hrw_spreads_keys() {
        let all: Vec<usize> = (0..4).collect();
        let mut counts = [0usize; 4];
        for i in 0..256u64 {
            counts[hrw_pick(&i.to_le_bytes(), &all)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 16, "shard {s} got only {c}/256 keys");
        }
    }

    #[test]
    fn random_pick_is_seeded() {
        let all: Vec<usize> = (0..4).collect();
        let a: Vec<usize> = (0..32).map(|i| random_pick(7, i, &all)).collect();
        let b: Vec<usize> = (0..32).map(|i| random_pick(7, i, &all)).collect();
        assert_eq!(a, b);
        let c: Vec<usize> = (0..32).map(|i| random_pick(8, i, &all)).collect();
        assert_ne!(a, c);
    }
}
