//! hpdr-shard: sharded cross-node serving for HPDR reduction jobs.
//!
//! A cluster front-end that places tenants' compress / decompress /
//! progressive-retrieve jobs across N independent `hpdr-serve`
//! scheduler shards — one per simulated node — behind a single logical
//! queue, all on one shared virtual clock:
//!
//! - **Placement** ([`placement`]): deterministic rendezvous (HRW)
//!   hashing with data affinity — jobs that consume the same stored
//!   container or progressive component set land on the node where it
//!   lives — plus byte-weighted least-loaded spill-over when the
//!   preferred shard's admission controller backpressures. A seeded
//!   random policy serves as the locality baseline.
//! - **Cross-node exchange** ([`cluster`]): off-home data jobs trigger
//!   fetches costed through the `hpdr-io` filesystem model; the bytes
//!   become resident in the node's payload cache (per-shard hit rates
//!   make locality measurable) and the transfer appears as an `xfer[…]`
//!   span in the merged trace.
//! - **Failure recovery** ([`cluster`]): a shard can be killed mid-run
//!   on the virtual clock; its queued and in-flight jobs re-route to
//!   survivors under a bounded retry budget, recorded as `reroute[…]`
//!   spans and checked by the cluster zero-lost-jobs invariant.
//! - **Reporting** ([`report`]): `hpdr-shard/v1` envelope documents
//!   aggregating the per-shard `hpdr-serve/v1` reports with shard-merged
//!   latency histograms, placement / steal / retry counters and
//!   per-shard utilization — byte-reproducible per seed.
//!
//! Module map:
//! - [`placement`] — placement policies, data keys, rendezvous hashing.
//! - [`cluster`] — the shard-stepping event loop, transfers, failure.
//! - [`report`] — `hpdr-shard/v1` reports and their validator.
//! - [`loadgen`] — the seeded loadgen workloads through the cluster.

pub mod cluster;
pub mod loadgen;
pub mod placement;
pub mod report;

pub use cluster::{run_cluster, Cluster, ClusterConfig, ClusterOutcome};
pub use loadgen::{cluster_config, run_cluster_loadgen, ClusterLoadOptions};
pub use placement::{data_key, home_of, hrw_pick, DataKey, PlacementPolicy};
pub use report::{validate_cluster_json, ClusterReport, ShardRow, CLUSTER_SCHEMA};

// Flight-recorder surface cluster callers need (the full API lives in
// `hpdr_flight`).
pub use hpdr_flight::{explain_lines, validate_flight_json, FlightConfig, FlightReport};
