//! Cluster reports: the `hpdr-shard/v1` envelope document.
//!
//! A [`ClusterReport`] aggregates the per-shard
//! [`ServeReport`](hpdr_serve::ServeReport)s of one cluster run:
//! shard-merged latency quantiles (per-shard streaming histograms
//! merged bucket-wise, not re-sampled), placement / steal / reroute /
//! retry counters, per-shard cache hit-rates and utilization, and a
//! merged trace with every shard's spans re-based into disjoint op
//! namespaces plus the cluster-level `xfer`/`reroute` spans.
//!
//! The envelope `ok` flag is the **cluster zero-lost-jobs invariant**:
//! every job popped from the logical source reaches exactly one
//! cluster-level terminal state — completed, timed out, cancelled,
//! rejected, failed (for real), or dropped after exhausting its retry
//! budget. Jobs a dead shard drained and a survivor finished are
//! counted once: the dead shard's `NODE_FAILURE` records are excluded
//! from the failure count.

use crate::cluster::ClusterOutcome;
use hpdr_metrics::StreamingHistogram;
use hpdr_serve::{LatencySummary, ServeReport};
use hpdr_sim::{Ns, Trace};
use hpdr_trace::merge_shard_traces;

/// Schema identifier embedded in every cluster report.
pub const CLUSTER_SCHEMA: &str = "hpdr-shard/v1";

/// Per-shard report row.
pub struct ShardRow {
    pub shard: usize,
    pub alive: bool,
    pub placed: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// `hits / (hits + misses)` over data-dependent placements (1.0
    /// when the shard saw none).
    pub hit_rate: f64,
    /// Busy time over `configured devices × cluster makespan`.
    pub utilization: f64,
    pub report: ServeReport,
}

/// The full result of a cluster run.
pub struct ClusterReport {
    pub nodes: usize,
    pub policy: &'static str,
    pub seed: u64,
    pub logical_submitted: u64,
    pub completed: u64,
    pub timed_out: u64,
    pub cancelled: u64,
    pub rejected: u64,
    /// Real failures (codec errors) — node-failure drains excluded.
    pub failed: u64,
    pub steals: u64,
    pub rerouted: u64,
    pub retries_exhausted: u64,
    pub drained: u64,
    /// `logical_submitted − cluster-level terminals` (0 on a sound run;
    /// signed so double counting shows as negative, not wraparound).
    pub lost: i64,
    pub remote_fetches: u64,
    pub remote_fetch_bytes: u64,
    pub remote_fetch_ns: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    pub completed_bytes: u64,
    pub makespan: Ns,
    pub goodput_gbps: f64,
    /// Shard-merged end-to-end latency of completed jobs.
    pub latency: LatencySummary,
    pub failure: Option<(usize, Ns)>,
    pub shards: Vec<ShardRow>,
    /// Merged trace: shard spans re-based per namespace + cluster spans.
    pub trace: Trace,
    /// Causal flight analysis (embedded as a nested `hpdr-flight/v1`
    /// document; `null` when tracing was off).
    pub flight: Option<hpdr_flight::FlightReport>,
}

impl ClusterReport {
    pub fn build(outcome: ClusterOutcome) -> ClusterReport {
        let (mut completed, mut timed_out, mut cancelled, mut rejected, mut failed_sum) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut completed_bytes = 0u64;
        let mut makespan = Ns::ZERO;
        let mut latency_hist = StreamingHistogram::new();
        for r in &outcome.reports {
            completed += r.completed;
            timed_out += r.timed_out;
            cancelled += r.cancelled;
            rejected += r.rejected;
            failed_sum += r.failed;
            completed_bytes += r.completed_bytes;
            makespan = makespan.max(r.makespan);
            let stats = hpdr_trace::job_span_stats(&r.trace);
            let mut h = StreamingHistogram::new();
            for &l in &stats.latencies {
                h.record(l);
            }
            latency_hist.merge(&h);
        }
        for s in &outcome.extra_spans {
            makespan = makespan.max(s.end);
        }
        // The dead shard's NODE_FAILURE records are re-placements, not
        // real failures; each drained job terminates elsewhere (or in
        // `retries_exhausted`).
        let failed = failed_sum.saturating_sub(outcome.drained);
        let terminals =
            completed + timed_out + cancelled + rejected + failed + outcome.retries_exhausted;
        let lost = outcome.logical_submitted as i64 - terminals as i64;
        let (hits, misses): (u64, u64) = (
            outcome.cache_hits.iter().sum(),
            outcome.cache_misses.iter().sum(),
        );
        let goodput_gbps = if makespan.is_zero() {
            0.0
        } else {
            completed_bytes as f64 / makespan.0 as f64
        };

        let traces: Vec<Trace> = outcome.reports.iter().map(|r| r.trace.clone()).collect();
        let trace = merge_shard_traces(&traces, outcome.extra_spans);

        let shards = outcome
            .reports
            .into_iter()
            .enumerate()
            .map(|(s, report)| {
                let data = outcome.cache_hits[s] + outcome.cache_misses[s];
                let busy: u64 = report.per_device.iter().map(|d| d.busy_ns).sum();
                let capacity = outcome.shard_devices as u64 * makespan.0;
                ShardRow {
                    shard: s,
                    alive: outcome.alive[s],
                    placed: outcome.placed[s],
                    cache_hits: outcome.cache_hits[s],
                    cache_misses: outcome.cache_misses[s],
                    hit_rate: if data == 0 {
                        1.0
                    } else {
                        outcome.cache_hits[s] as f64 / data as f64
                    },
                    utilization: if capacity == 0 {
                        0.0
                    } else {
                        busy as f64 / capacity as f64
                    },
                    report,
                }
            })
            .collect();

        ClusterReport {
            nodes: outcome.nodes,
            policy: outcome.policy.name(),
            seed: outcome.seed,
            logical_submitted: outcome.logical_submitted,
            completed,
            timed_out,
            cancelled,
            rejected,
            failed,
            steals: outcome.steals,
            rerouted: outcome.rerouted,
            retries_exhausted: outcome.retries_exhausted,
            drained: outcome.drained,
            lost,
            remote_fetches: outcome.remote_fetches,
            remote_fetch_bytes: outcome.remote_fetch_bytes,
            remote_fetch_ns: outcome.remote_fetch_ns,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                1.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            completed_bytes,
            makespan,
            goodput_gbps,
            latency: LatencySummary::from_histogram(&latency_hist),
            failure: outcome.failure,
            shards,
            trace,
            flight: outcome.flight,
        }
    }

    /// The envelope `ok` flag: no job lost and every shard's own
    /// accounting balanced.
    pub fn ok(&self) -> bool {
        self.lost == 0 && self.shards.iter().all(|s| s.report.ok())
    }

    /// Human-readable summary lines.
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![format!(
            "cluster: {} nodes, {} placement, seed {} — {} jobs, {} completed, \
             {} timed out, {} cancelled, {} rejected, {} failed ({} lost)",
            self.nodes,
            self.policy,
            self.seed,
            self.logical_submitted,
            self.completed,
            self.timed_out,
            self.cancelled,
            self.rejected,
            self.failed,
            self.lost
        )];
        out.push(format!(
            "placement: {} steals, {} rerouted, {} retries exhausted; \
             cache {}/{} hit/miss ({:.1}% hit rate), {} remote fetches \
             ({} bytes, {:.3} ms virtual)",
            self.steals,
            self.rerouted,
            self.retries_exhausted,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate * 100.0,
            self.remote_fetches,
            self.remote_fetch_bytes,
            self.remote_fetch_ns as f64 / 1e6
        ));
        if let Some((node, at)) = self.failure {
            out.push(format!(
                "failure: node {node} killed at {:.3} ms — {} jobs drained and re-placed",
                at.0 as f64 / 1e6,
                self.drained
            ));
        }
        out.push(format!(
            "goodput: {:.4} GB/s over {:.3} ms makespan; latency p50 {:.3} ms, \
             p99 {:.3} ms",
            self.goodput_gbps,
            self.makespan.0 as f64 / 1e6,
            self.latency.p50 as f64 / 1e6,
            self.latency.p99 as f64 / 1e6
        ));
        if let Some(f) = &self.flight {
            let worst: Vec<String> = f.exemplars(3).iter().map(u64::to_string).collect();
            out.push(format!(
                "flight: {} jobs traced, {} sampled, {} events dropped; \
                 worst sampled traces [{}] — `hpdr explain` breaks them down",
                f.total_jobs,
                f.sampled,
                f.dropped,
                worst.join(", ")
            ));
        }
        for s in &self.shards {
            out.push(format!(
                "shard {:>2}{}: {:>4} placed, cache {}/{} hit/miss ({:.1}%), \
                 utilization {:.1}%, {} completed",
                s.shard,
                if s.alive { "" } else { " (dead)" },
                s.placed,
                s.cache_hits,
                s.cache_misses,
                s.hit_rate * 100.0,
                s.utilization * 100.0,
                s.report.completed
            ));
        }
        out
    }

    /// Serialize to JSON: the shared `hpdr-verify` envelope over the
    /// cluster counters, with each shard's own `hpdr-serve/v1` document
    /// embedded under `per_shard[].report`. Deterministic: virtual-time
    /// quantities only, fixed float precision.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push('\n');
        s.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        s.push_str(&format!("  \"policy\": \"{}\",\n", self.policy));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"logical_submitted\": {},\n",
            self.logical_submitted
        ));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out));
        s.push_str(&format!("  \"cancelled\": {},\n", self.cancelled));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"steals\": {},\n", self.steals));
        s.push_str(&format!("  \"rerouted\": {},\n", self.rerouted));
        s.push_str(&format!(
            "  \"retries_exhausted\": {},\n",
            self.retries_exhausted
        ));
        s.push_str(&format!("  \"drained\": {},\n", self.drained));
        s.push_str(&format!("  \"lost\": {},\n", self.lost));
        s.push_str(&format!("  \"remote_fetches\": {},\n", self.remote_fetches));
        s.push_str(&format!(
            "  \"remote_fetch_bytes\": {},\n",
            self.remote_fetch_bytes
        ));
        s.push_str(&format!(
            "  \"remote_fetch_ns\": {},\n",
            self.remote_fetch_ns
        ));
        s.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        s.push_str(&format!("  \"cache_misses\": {},\n", self.cache_misses));
        s.push_str(&format!(
            "  \"cache_hit_rate\": {:.6},\n",
            self.cache_hit_rate
        ));
        s.push_str(&format!(
            "  \"completed_bytes\": {},\n",
            self.completed_bytes
        ));
        s.push_str(&format!("  \"makespan_ns\": {},\n", self.makespan.0));
        s.push_str(&format!("  \"goodput_gbps\": {:.6},\n", self.goodput_gbps));
        s.push_str(&format!("  \"latency\": {},\n", self.latency.to_json()));
        match self.failure {
            Some((node, at)) => s.push_str(&format!(
                "  \"failure\": {{\"node\":{},\"at_ns\":{},\"drained\":{}}},\n",
                node, at.0, self.drained
            )),
            None => s.push_str("  \"failure\": null,\n"),
        }
        s.push_str("  \"per_shard\": [");
        for (i, row) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\n      \"shard\": {},\n      \"alive\": {},\n      \
                 \"placed\": {},\n      \"cache_hits\": {},\n      \
                 \"cache_misses\": {},\n      \"hit_rate\": {:.6},\n      \
                 \"utilization\": {:.6},\n      \"report\": ",
                row.shard,
                row.alive,
                row.placed,
                row.cache_hits,
                row.cache_misses,
                row.hit_rate,
                row.utilization
            ));
            let report = row.report.to_json();
            s.push_str(&report.trim_end().replace('\n', "\n      "));
            s.push_str("\n    }");
        }
        s.push_str("\n  ],\n");
        match &self.flight {
            Some(f) => {
                s.push_str("  \"flight\": ");
                s.push_str(&hpdr_flight::to_json(f).trim_end().replace('\n', "\n  "));
                s.push('\n');
            }
            None => s.push_str("  \"flight\": null\n"),
        }
        let mut doc = hpdr_verify::envelope::wrap(CLUSTER_SCHEMA, self.ok(), &s);
        doc.push('\n');
        doc
    }
}

/// Extract the first `"key": <integer>` (optionally negative).
fn json_i64(json: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| !(c.is_ascii_digit() || (i == 0 && c == '-')))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].parse().ok()
}

/// Validate a cluster-report JSON document: the `hpdr-shard/v1`
/// envelope header, required fields, and the cluster zero-lost-jobs
/// invariant (`lost == 0`).
pub fn validate_cluster_json(json: &str) -> Result<(), String> {
    hpdr_verify::envelope::read_header(json, CLUSTER_SCHEMA)?;
    for k in [
        "nodes",
        "logical_submitted",
        "cache_hit_rate",
        "goodput_gbps",
        "makespan_ns",
        "per_shard",
    ] {
        if !json.contains(&format!("\"{k}\"")) {
            return Err(format!("missing field '{k}'"));
        }
    }
    let lost = json_i64(json, "lost").ok_or("missing field 'lost'")?;
    if lost != 0 {
        return Err(format!("cluster lost {lost} jobs"));
    }
    // When the cluster ran with flight recording on, the embedded
    // hpdr-flight/v1 document must satisfy its own invariants too.
    if hpdr_flight::flight_section(json).is_some() {
        hpdr_flight::validate_flight_json(json).map_err(|e| format!("embedded flight: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_i64_handles_negatives() {
        assert_eq!(json_i64("{\"lost\": -2}", "lost"), Some(-2));
        assert_eq!(json_i64("{\"lost\":3,\"x\":1}", "lost"), Some(3));
        assert_eq!(json_i64("{}", "lost"), None);
    }

    #[test]
    fn validator_requires_envelope_and_zero_lost() {
        let good = hpdr_verify::envelope::wrap(
            CLUSTER_SCHEMA,
            true,
            "\"nodes\":2,\"logical_submitted\":4,\"lost\":0,\"cache_hit_rate\":1.0,\
             \"goodput_gbps\":0.1,\"makespan_ns\":10,\"per_shard\":[]",
        );
        validate_cluster_json(&good).unwrap();
        let lossy = good.replace("\"lost\":0", "\"lost\":1");
        assert!(validate_cluster_json(&lossy).unwrap_err().contains("lost"));
        let wrong = good.replace("hpdr-shard/v1", "hpdr-shard/v0");
        assert!(validate_cluster_json(&wrong).is_err());
    }
}
