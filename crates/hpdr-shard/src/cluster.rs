//! The cluster front-end: one logical job queue over N scheduler
//! shards.
//!
//! Each shard is an independent [`hpdr_serve::Scheduler`] (one per
//! simulated node) stepped by this module's event loop on one shared
//! virtual clock. Jobs are placed by [`crate::placement`]: rendezvous
//! hashing with data affinity (or seeded random scatter as the
//! baseline), with byte-weighted least-loaded spill-over when the
//! preferred shard's admission controller backpressures.
//!
//! **Data residency.** Every stored object (a container or progressive
//! component set) has a *home* node — the rendezvous winner for its
//! [`DataKey`] — where reads are local. Each node also keeps a
//! [`PayloadCache`] residency tracker: a job placed where its object is
//! neither home nor cached triggers a cross-node fetch costed through
//! the `hpdr-io` filesystem model ([`FetchCostModel`]) — the job waits
//! out the virtual transfer, the bytes land in the node's cache, and
//! the exchange shows up in the merged trace as an `xfer[…]` span.
//! Concurrent fetches of the same object to the same node coalesce.
//! Granularity is deliberately coarse: one fetch makes the whole
//! object resident (components of a set are not tracked separately).
//!
//! **Failure and recovery.** At most one node can be killed mid-run on
//! the virtual clock. [`Scheduler::fail`] drains its queued and
//! in-flight jobs; the non-cancelled, non-expired ones — plus any jobs
//! parked on in-flight transfers targeting the dead node — are
//! re-placed across the survivors with a bounded per-job retry budget.
//! Every re-placement leaves a `reroute[…]` span, and the accounting
//! distinguishes re-routed jobs (the dead shard's `NODE_FAILURE`
//! records) from real codec failures, so the cluster-level
//! zero-lost-jobs invariant stays checkable.

use crate::placement::{
    data_key, home_of, hrw_pick, placement_bytes, random_pick, DataKey, PlacementPolicy,
};
use hpdr_core::{DeviceAdapter, PoolStats};
use hpdr_flight::{
    analyze, Blackbox, FlightConfig, FlightRecorder, FlightReport, JobEvent as FlightEvent,
    JobEventKind as FlightEventKind, TraceContext,
};
use hpdr_io::{summit_gpfs, FetchCostModel};
use hpdr_serve::{
    JobPayload, JobRequest, JobSource, PayloadCache, Scheduler, ServeConfig, ServeReport, VecSource,
};
use hpdr_sim::{Engine, Ns, OpKind, SpanRecord};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Span-op namespace for cluster-level spans (`xfer[…]`, `reroute[…]`).
/// Matches the namespace [`hpdr_trace::merge_shard_traces`] passes
/// through un-rebased, above every per-shard namespace.
const CLUSTER_OP_BASE: usize = 1 << 42;

/// Cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of scheduler shards (simulated nodes).
    pub nodes: usize,
    pub policy: PlacementPolicy,
    /// Per-shard scheduler configuration. Shards always run unmetered
    /// (`metrics` is forced to `None`): cluster counters live in the
    /// [`crate::report::ClusterReport`].
    pub shard: ServeConfig,
    /// Cost model for cross-node object exchange.
    pub fetch: FetchCostModel,
    /// Kill shard `.0` at virtual instant `.1`.
    pub fail: Option<(usize, Ns)>,
    /// Re-placement budget per job after node failures.
    pub max_retries: u32,
    /// Seed for the random placement policy (and echoed in reports).
    pub seed: u64,
    /// Flight-recorder configuration (`None` disables causal tracing).
    /// [`Cluster::new`] copies it into each shard's own `flight`
    /// setting, so per-shard lifecycle events and cluster-level
    /// placement/transfer/re-route events land in one merged log.
    pub flight: Option<FlightConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            policy: PlacementPolicy::Locality,
            shard: ServeConfig::default(),
            fetch: FetchCostModel::new(summit_gpfs(), 4),
            fail: None,
            max_retries: 3,
            seed: 7,
            flight: Some(FlightConfig::default()),
        }
    }
}

/// An in-flight cross-node fetch: jobs parked until `ready`.
struct Transfer {
    ready: Ns,
    jobs: Vec<(JobRequest, u32)>,
}

/// Everything a cluster run produces; the serializable
/// [`ClusterReport`](crate::report::ClusterReport) is built from this.
pub struct ClusterOutcome {
    pub nodes: usize,
    pub policy: PlacementPolicy,
    pub seed: u64,
    /// Configured devices per shard (utilization denominator).
    pub shard_devices: usize,
    pub reports: Vec<ServeReport>,
    pub alive: Vec<bool>,
    pub placed: Vec<u64>,
    pub cache_hits: Vec<u64>,
    pub cache_misses: Vec<u64>,
    /// Jobs popped from the logical source (each counted once, however
    /// many shards it visits).
    pub logical_submitted: u64,
    /// Placements diverted off the preferred shard by backpressure.
    pub steals: u64,
    /// Re-placements after the node failure.
    pub rerouted: u64,
    /// Jobs dropped because their retry budget ran out (terminal at the
    /// cluster level; still counted, never lost).
    pub retries_exhausted: u64,
    /// `NODE_FAILURE` records drained out of the dead shard.
    pub drained: u64,
    pub remote_fetches: u64,
    pub remote_fetch_bytes: u64,
    pub remote_fetch_ns: u64,
    /// The failure that actually fired, if any.
    pub failure: Option<(usize, Ns)>,
    /// Cluster-level spans (`xfer`, `reroute`) for the merged trace.
    pub extra_spans: Vec<SpanRecord>,
    /// Causal flight analysis of the merged cluster + shard event logs.
    pub flight: Option<FlightReport>,
}

/// The cluster front-end. Owns the shards, their residency caches, the
/// transfer queue and the shared virtual clock.
pub struct Cluster {
    cfg: ClusterConfig,
    shards: Vec<Scheduler>,
    caches: Vec<PayloadCache>,
    alive: Vec<bool>,
    clock: Ns,
    transfers: BTreeMap<(usize, DataKey), Transfer>,
    /// Retry attempt of each submitted job, keyed (shard, local job id).
    attempts: BTreeMap<(usize, u64), u32>,
    placed: Vec<u64>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    logical_submitted: u64,
    steals: u64,
    rerouted: u64,
    retries_exhausted: u64,
    drained: u64,
    remote_fetches: u64,
    remote_fetch_bytes: u64,
    remote_fetch_ns: u64,
    extra_spans: Vec<SpanRecord>,
    span_seq: usize,
    place_seq: u64,
    fired: bool,
    /// Cluster-level flight recorder (placement, transfers, re-routes).
    recorder: Option<FlightRecorder>,
    /// The dead shard's ring buffer, dumped at the failure instant.
    blackbox: Option<Blackbox>,
}

impl Cluster {
    pub fn new(mut cfg: ClusterConfig, work: Arc<dyn DeviceAdapter>) -> Cluster {
        cfg.nodes = cfg.nodes.max(1);
        cfg.shard.metrics = None;
        cfg.shard.flight = cfg.flight;
        let shards: Vec<Scheduler> = (0..cfg.nodes)
            .map(|_| Scheduler::new(cfg.shard.clone(), Arc::clone(&work)))
            .collect();
        Cluster {
            shards,
            caches: (0..cfg.nodes).map(|_| PayloadCache::new()).collect(),
            alive: vec![true; cfg.nodes],
            clock: Ns::ZERO,
            transfers: BTreeMap::new(),
            attempts: BTreeMap::new(),
            placed: vec![0; cfg.nodes],
            hits: vec![0; cfg.nodes],
            misses: vec![0; cfg.nodes],
            logical_submitted: 0,
            steals: 0,
            rerouted: 0,
            retries_exhausted: 0,
            drained: 0,
            remote_fetches: 0,
            remote_fetch_bytes: 0,
            remote_fetch_ns: 0,
            extra_spans: Vec::new(),
            span_seq: 0,
            place_seq: 0,
            fired: false,
            recorder: cfg.flight.map(FlightRecorder::new),
            blackbox: None,
            cfg,
        }
    }

    /// Record a cluster-level flight event for `req` (no-op when
    /// recording is off; `shard` is `u32::MAX` for events with no
    /// target shard).
    fn flight_event(&mut self, at: Ns, shard: u32, req: &JobRequest, kind: FlightEventKind) {
        if let Some(rec) = self.recorder.as_mut() {
            if req.trace.is_assigned() {
                rec.record(FlightEvent {
                    at,
                    trace: req.trace.trace,
                    hop: req.trace.hop,
                    shard,
                    tenant: req.tenant.0,
                    kind,
                });
            }
        }
    }

    fn live(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&s| self.alive[s]).collect()
    }

    /// Drive the logical job stream to completion across the shards.
    pub fn run(mut self, source: &mut dyn JobSource) -> ClusterOutcome {
        loop {
            if let Some((node, at)) = self.cfg.fail {
                if !self.fired && at <= self.clock {
                    self.fire_failure(node);
                }
            }
            self.deliver_due();
            for mut req in source.pop_ready(self.clock) {
                self.logical_submitted += 1;
                if self.recorder.is_some() {
                    // The cluster assigns trace ids: 1-based pop order.
                    req.trace = TraceContext::root(self.logical_submitted);
                    self.flight_event(self.clock, u32::MAX, &req, FlightEventKind::Submit);
                }
                self.place_and_submit(req, 0);
            }
            for s in 0..self.shards.len() {
                if self.alive[s] {
                    self.shards[s].service();
                }
            }
            let mut next: Option<Ns> = None;
            let mut consider = |t: Ns| {
                next = Some(next.map_or(t, |n: Ns| n.min(t)));
            };
            if let Some(t) = source.peek() {
                consider(t.max(self.clock));
            }
            for t in self.transfers.values() {
                consider(t.ready.max(self.clock));
            }
            for (s, sched) in self.shards.iter().enumerate() {
                if self.alive[s] {
                    if let Some(t) = sched.next_event() {
                        consider(t.max(self.clock));
                    }
                }
            }
            if let Some((_, at)) = self.cfg.fail {
                if !self.fired {
                    consider(at.max(self.clock));
                }
            }
            let Some(next) = next else {
                break;
            };
            self.clock = self.clock.max(next);
            let clock = self.clock;
            for s in 0..self.shards.len() {
                if !self.alive[s] {
                    continue;
                }
                for (tenant, at) in self.shards[s].advance_to(clock) {
                    source.on_complete(tenant, at);
                }
            }
        }
        self.finish()
    }

    /// Kill `node` at the current instant and re-place its work.
    fn fire_failure(&mut self, node: usize) {
        self.fired = true;
        if node >= self.shards.len() || !self.alive[node] {
            return;
        }
        self.alive[node] = false;
        let mut to_place: Vec<(JobRequest, u32)> = Vec::new();
        // Fetches targeting the dead node: their jobs were never
        // submitted there, so they re-place like the drained ones.
        let orphaned: Vec<(usize, DataKey)> = self
            .transfers
            .keys()
            .filter(|(t, _)| *t == node)
            .cloned()
            .collect();
        for key in orphaned {
            let tr = self.transfers.remove(&key).expect("key just listed");
            for (req, attempt) in tr.jobs {
                to_place.push((req, attempt + 1));
            }
        }
        let survivors = self.shards[node].fail(self.clock);
        // Black-box dump: the dying shard's ring buffer as it stood
        // when the failure fired (drain terminals included).
        if let Some(mut log) = self.shards[node].flight_snapshot() {
            for e in &mut log.events {
                e.shard = node as u32;
            }
            self.blackbox = Some(Blackbox {
                shard: node as u32,
                log,
            });
        }
        self.drained += survivors.len() as u64;
        for (id, req) in survivors {
            let attempt = self.attempts.remove(&(node, id.0)).unwrap_or(0) + 1;
            to_place.push((req, attempt));
        }
        for (mut req, attempt) in to_place {
            if attempt > self.cfg.max_retries || self.live().is_empty() {
                self.retries_exhausted += 1;
                self.flight_event(self.clock, u32::MAX, &req, FlightEventKind::Failed);
            } else {
                self.rerouted += 1;
                req.trace = req.trace.retry();
                self.flight_event(
                    self.clock,
                    u32::MAX,
                    &req,
                    FlightEventKind::Reroute { attempt },
                );
                self.push_reroute_span(&req, attempt);
                self.place_and_submit(req, attempt);
            }
        }
    }

    /// Deliver every transfer whose virtual completion has been
    /// reached: the object becomes resident and its parked jobs submit.
    fn deliver_due(&mut self) {
        let mut due: Vec<(Ns, usize, DataKey)> = self
            .transfers
            .iter()
            .filter(|(_, t)| t.ready <= self.clock)
            .map(|((s, k), t)| (t.ready, *s, k.clone()))
            .collect();
        due.sort();
        for (_, shard, key) in due {
            let tr = self
                .transfers
                .remove(&(shard, key.clone()))
                .expect("key just listed");
            debug_assert!(self.alive[shard], "transfer delivered to a dead shard");
            if let Some((req, _)) = tr.jobs.first() {
                admit(&mut self.caches[shard], &key, req);
            }
            let ready = tr.ready;
            for (req, attempt) in tr.jobs {
                self.flight_event(ready, shard as u32, &req, FlightEventKind::XferReady);
                self.submit_now(shard, req, attempt);
            }
        }
    }

    /// Place one job: preferred shard by policy, spill-over on
    /// backpressure, then local submit / residency hit / remote fetch.
    fn place_and_submit(&mut self, req: JobRequest, attempt: u32) {
        let live = self.live();
        if live.is_empty() {
            self.retries_exhausted += 1;
            self.flight_event(self.clock, u32::MAX, &req, FlightEventKind::Failed);
            return;
        }
        let bytes = req.payload.raw_bytes();
        let preferred = match self.cfg.policy {
            PlacementPolicy::Locality => hrw_pick(&placement_bytes(&req), &live),
            PlacementPolicy::Random => {
                let s = random_pick(self.cfg.seed, self.place_seq, &live);
                self.place_seq += 1;
                s
            }
        };
        let target = if self.shards[preferred].would_admit(bytes) {
            preferred
        } else {
            // Byte-weighted least-loaded spill-over (ties to lowest id);
            // if every shard backpressures, the preferred one eats the
            // rejection so the loss is accounted where it was aimed.
            match live
                .iter()
                .copied()
                .filter(|&s| self.shards[s].would_admit(bytes))
                .min_by_key(|&s| (self.shards[s].admission().queued_bytes(), s))
            {
                Some(s) => {
                    if s != preferred {
                        self.steals += 1;
                    }
                    s
                }
                None => preferred,
            }
        };
        self.placed[target] += 1;
        self.flight_event(
            self.clock,
            u32::MAX,
            &req,
            FlightEventKind::Place {
                target: target as u32,
                preferred: preferred as u32,
                steal: target != preferred,
            },
        );
        let Some(key) = data_key(&req) else {
            self.submit_now(target, req, attempt);
            return;
        };
        let resident = match key.kind {
            1 => self.caches[target].container_resident(req.codec, key.side),
            _ => self.caches[target].refactoring_resident(req.codec, key.side),
        };
        if resident {
            self.hits[target] += 1;
            self.submit_now(target, req, attempt);
        } else if home_of(&key, &live) == target {
            // The object's home node reads it locally (and it becomes
            // cache-resident, surviving later re-homing).
            self.hits[target] += 1;
            admit(&mut self.caches[target], &key, &req);
            self.submit_now(target, req, attempt);
        } else {
            self.misses[target] += 1;
            let (fb, blk) = fetch_size(&req.payload);
            let (xfer, md) = self.cfg.fetch.fetch_detail(fb, blk);
            self.flight_event(
                self.clock,
                target as u32,
                &req,
                FlightEventKind::XferStart {
                    bytes: fb,
                    xfer_ns: xfer.0,
                    metadata_ns: md.0,
                },
            );
            match self.transfers.get_mut(&(target, key.clone())) {
                Some(tr) => tr.jobs.push((req, attempt)),
                None => {
                    let (fetch_bytes, blocks) = fetch_size(&req.payload);
                    let dur = self.cfg.fetch.fetch_time(fetch_bytes, blocks);
                    let ready = self.clock + dur;
                    self.remote_fetches += 1;
                    self.remote_fetch_bytes += fetch_bytes;
                    self.remote_fetch_ns += dur.0;
                    self.push_xfer_span(target, &key, fetch_bytes, ready);
                    self.transfers.insert(
                        (target, key),
                        Transfer {
                            ready,
                            jobs: vec![(req, attempt)],
                        },
                    );
                }
            }
        }
    }

    fn submit_now(&mut self, shard: usize, req: JobRequest, attempt: u32) {
        match self.shards[shard].try_submit(req) {
            Ok(id) => {
                self.attempts.insert((shard, id.0), attempt);
            }
            Err(_) => {
                // Recorded as a rejection in the shard's own report —
                // terminal at the cluster level too.
            }
        }
    }

    fn push_xfer_span(&mut self, target: usize, key: &DataKey, bytes: u64, ready_at: Ns) {
        let op = CLUSTER_OP_BASE + self.span_seq;
        self.span_seq += 1;
        let kind = if key.kind == 1 {
            "decompress"
        } else {
            "retrieve"
        };
        self.extra_spans.push(SpanRecord {
            op,
            label: format!("xfer[s{target} {kind} {}:{}]", key.codec, key.side),
            engine: Engine::Host,
            queue: None,
            deps: vec![],
            kind: OpKind::Transfer,
            class: None,
            start: self.clock,
            end: ready_at,
            bytes,
            footprint_bytes: 0,
            ready: self.clock,
            wall: Ns::ZERO,
        });
    }

    fn push_reroute_span(&mut self, req: &JobRequest, attempt: u32) {
        let op = CLUSTER_OP_BASE + self.span_seq;
        self.span_seq += 1;
        self.extra_spans.push(SpanRecord {
            op,
            label: format!(
                "reroute[t{} {} {} attempt={attempt}]",
                req.tenant.0,
                req.payload.kind().name(),
                req.codec.label()
            ),
            engine: Engine::Host,
            queue: None,
            deps: vec![],
            kind: OpKind::Fixed,
            class: None,
            start: self.clock,
            end: self.clock,
            bytes: 0,
            footprint_bytes: 0,
            ready: self.clock,
            wall: Ns::ZERO,
        });
    }

    fn finish(self) -> ClusterOutcome {
        debug_assert!(self.transfers.is_empty(), "undelivered transfers at end");
        let policy = self.cfg.shard.policy;
        // Merge each shard's flight log into the cluster-level one,
        // re-stamping shard-recorded events (shard id 0 inside a
        // scheduler) with the shard's cluster index.
        let mut flight_log = self.recorder.map(FlightRecorder::into_log);
        let mut reports: Vec<ServeReport> = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.into_iter().enumerate() {
            let mut outcome = shard.into_outcome(PoolStats::default());
            if let (Some(cluster_log), Some(mut log)) = (flight_log.as_mut(), outcome.flight.take())
            {
                for e in &mut log.events {
                    e.shard = s as u32;
                }
                cluster_log.merge(log);
            }
            reports.push(ServeReport::build(policy, outcome));
        }
        let flight = flight_log.map(|log| {
            analyze(
                &log,
                &self.cfg.flight.unwrap_or_default(),
                self.blackbox.clone(),
            )
        });
        ClusterOutcome {
            nodes: self.cfg.nodes,
            policy: self.cfg.policy,
            seed: self.cfg.seed,
            shard_devices: self.cfg.shard.devices.max(1),
            reports,
            alive: self.alive,
            placed: self.placed,
            cache_hits: self.hits,
            cache_misses: self.misses,
            logical_submitted: self.logical_submitted,
            steals: self.steals,
            rerouted: self.rerouted,
            retries_exhausted: self.retries_exhausted,
            drained: self.drained,
            remote_fetches: self.remote_fetches,
            remote_fetch_bytes: self.remote_fetch_bytes,
            remote_fetch_ns: self.remote_fetch_ns,
            failure: if self.fired { self.cfg.fail } else { None },
            extra_spans: self.extra_spans,
            flight,
        }
    }
}

/// Uncompressed-side residency admit for a delivered (or home) object.
fn admit(cache: &mut PayloadCache, key: &DataKey, req: &JobRequest) {
    match &req.payload {
        JobPayload::Decompress { container } => {
            cache.admit_container(req.codec, key.side, Arc::clone(container));
        }
        JobPayload::Retrieve { set, .. } => {
            cache.admit_refactoring(req.codec, key.side, Arc::clone(set));
        }
        JobPayload::Compress { .. } => {}
    }
}

/// Bytes and block count a cross-node fetch moves: the compressed
/// stream for containers, the fetch plan's picked components for
/// progressive sets (the progressive win applies to exchange too — a
/// loose tolerance ships fewer bytes between nodes).
fn fetch_size(payload: &JobPayload) -> (u64, u64) {
    match payload {
        JobPayload::Decompress { container } => (
            container.total_stream_bytes().max(1),
            container.chunks.len().max(1) as u64,
        ),
        JobPayload::Retrieve { plan, .. } => (plan.bytes.max(1), plan.picks.len().max(1) as u64),
        JobPayload::Compress { .. } => (1, 1),
    }
}

/// Convenience: run a pre-scripted job stream through a fresh cluster.
pub fn run_cluster(
    cfg: ClusterConfig,
    work: Arc<dyn DeviceAdapter>,
    jobs: Vec<JobRequest>,
) -> ClusterOutcome {
    let mut source = VecSource::new(jobs);
    Cluster::new(cfg, work).run(&mut source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ClusterReport;
    use hpdr_core::SerialAdapter;
    use hpdr_serve::parse_script;

    fn work() -> Arc<dyn DeviceAdapter> {
        Arc::new(SerialAdapter::new())
    }

    const SCRIPT: &str = "\
0 0 compress zfp:16 8
10 1 retrieve mgard:1e-5 8 tol=1e-1
20 2 retrieve mgard:1e-5 8 tol=1e-2
30 0 decompress lz4 8
40 1 retrieve mgard:1e-5 8 tol=1e-1
50 2 decompress lz4 8
";

    fn jobs() -> Vec<JobRequest> {
        let w = work();
        parse_script(SCRIPT, w.as_ref()).unwrap()
    }

    #[test]
    fn locality_sends_same_key_jobs_to_one_shard() {
        let outcome = run_cluster(ClusterConfig::default(), work(), jobs());
        let report = ClusterReport::build(outcome);
        assert_eq!(report.lost, 0, "no job may be lost");
        assert_eq!(report.logical_submitted, 6);
        // All three retrieves share one data key: first access is the
        // home hit, the rest are residency hits — zero transfers for
        // them; same for the two lz4 decompresses.
        assert_eq!(report.cache_hits + report.cache_misses, 5);
        assert_eq!(
            report.cache_misses, 0,
            "locality placement must not fetch remotely in this workload"
        );
    }

    #[test]
    fn single_node_cluster_matches_plain_serve_outcomes() {
        let cfg = ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        };
        let outcome = run_cluster(cfg.clone(), work(), jobs());
        assert_eq!(outcome.remote_fetches, 0, "one node: everything is home");
        let cluster_records = &outcome.reports[0].records;

        let mut source = VecSource::new(jobs());
        let plain = hpdr_serve::serve(cfg.shard, work(), &mut source);
        assert_eq!(cluster_records.len(), plain.records.len());
        for (a, b) in cluster_records.iter().zip(&plain.records) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.finished, b.finished);
            assert_eq!(a.tenant, b.tenant);
        }
    }

    #[test]
    fn cluster_report_is_seed_deterministic() {
        let a = ClusterReport::build(run_cluster(ClusterConfig::default(), work(), jobs()));
        let b = ClusterReport::build(run_cluster(ClusterConfig::default(), work(), jobs()));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn random_policy_fetches_remotely_and_costs_time() {
        let cfg = ClusterConfig {
            policy: PlacementPolicy::Random,
            ..ClusterConfig::default()
        };
        let report = ClusterReport::build(run_cluster(cfg, work(), jobs()));
        assert_eq!(report.lost, 0);
        // Scatter placement must produce at least one off-home data job.
        assert!(report.remote_fetches > 0, "random placement never missed");
        assert!(report.remote_fetch_ns > 0, "fetches must cost virtual time");
        let xfers = report
            .trace
            .spans()
            .iter()
            .filter(|s| s.label.starts_with("xfer["))
            .count();
        assert_eq!(xfers as u64, report.remote_fetches);
    }

    #[test]
    fn node_failure_reroutes_without_losing_jobs() {
        let cfg = ClusterConfig {
            nodes: 3,
            fail: Some((0, Ns::from_micros(15))),
            ..ClusterConfig::default()
        };
        let report = ClusterReport::build(run_cluster(cfg, work(), jobs()));
        assert_eq!(report.lost, 0, "failure must not lose jobs");
        assert!(report.ok());
        assert_eq!(report.failure, Some((0, Ns::from_micros(15))));
        assert!(!report.shards[0].alive);
        // Whatever was on shard 0 either completed before the kill or
        // was drained and re-routed.
        assert_eq!(report.rerouted + report.retries_exhausted, report.drained);
    }
}
