//! On-disk storage of a progressive refactoring in the BP container,
//! and the [`ProgressiveReader`] that fetches the minimal component
//! set for a tolerance and refines in place.
//!
//! Layout: one step, one variable block per component (variable
//! `c<level>.<plane>`), plus the framed [`Manifest`] under the
//! `manifest` variable. Each component block is independently
//! decodable, so a reader seeks and reads exactly the blocks its plan
//! selects — `bytes_fetched` counts real `read_block` I/O.

use crate::plan::{plan_fetch, FetchPlan};
use crate::refactoring::{
    level_counts, reconstruct, DecodeState, Manifest, Refactoring, Retrieval,
};
use hpdr_core::{DeviceAdapter, Float, HpdrError, Result, Shape};
use hpdr_io::{BpReader, BpWriter, FetchCostModel};
use hpdr_sim::Ns;
use std::path::Path;

/// BP variable the manifest is stored under.
pub const MANIFEST_VAR: &str = "manifest";

/// Write a refactoring to `dir` as a BP dataset (one block per
/// component, spread round-robin over `aggregators` subfiles).
pub fn write_bp(
    dir: impl AsRef<Path>,
    refactoring: &Refactoring,
    aggregators: usize,
) -> Result<()> {
    let meta = refactoring.meta()?;
    let mut w = BpWriter::create(dir, aggregators)?;
    w.begin_step();
    w.put(
        MANIFEST_VAR,
        &meta,
        &refactoring.manifest.to_bytes(),
        "manifest",
    )?;
    for (c, blob) in refactoring
        .manifest
        .components
        .iter()
        .zip(&refactoring.components)
    {
        w.put(
            &Manifest::var_name(c.level, c.plane),
            &meta,
            blob,
            "huffman-x",
        )?;
    }
    w.end_step()?;
    w.close()
}

/// Progressive reader over a BP dataset: plans fetches against the
/// manifest, reads only the selected component blocks, and keeps all
/// decoded state so `refine` fetches strictly the delta.
pub struct ProgressiveReader {
    bp: BpReader,
    manifest: Manifest,
    state: DecodeState,
    fetched: Vec<bool>,
    level_counts: Vec<usize>,
    bytes_fetched: u64,
    fetch_ops: u64,
    cost: Option<FetchCostModel>,
    io_time: Ns,
}

impl ProgressiveReader {
    pub fn open(dir: impl AsRef<Path>) -> Result<ProgressiveReader> {
        let bp = BpReader::open(dir)?;
        let blocks = bp.blocks(0, MANIFEST_VAR)?;
        let first = blocks
            .first()
            .ok_or_else(|| HpdrError::corrupt("empty progressive manifest variable"))?;
        let manifest = Manifest::from_bytes(&bp.read_block(first)?)?;
        let n = manifest.components.len();
        Ok(ProgressiveReader {
            state: DecodeState::new(&manifest),
            level_counts: level_counts(&manifest)?,
            fetched: vec![false; n],
            bytes_fetched: 0,
            fetch_ops: 0,
            cost: None,
            io_time: Ns::ZERO,
            bp,
            manifest,
        })
    }

    /// Charge every component fetch through a filesystem cost model:
    /// [`io_time`](Self::io_time) then accumulates the virtual time the
    /// retrieval I/O would take on that system, one node's reader
    /// parallelism per fetch.
    pub fn with_cost_model(mut self, model: FetchCostModel) -> ProgressiveReader {
        self.cost = Some(model);
        self
    }

    /// Accumulated virtual I/O time of all component fetches (zero
    /// without a cost model).
    pub fn io_time(&self) -> Ns {
        self.io_time
    }

    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Total bytes read from component blocks so far.
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched
    }

    /// Number of component block reads issued (each component is read
    /// at most once — re-fetches would show up here).
    pub fn fetch_ops(&self) -> u64 {
        self.fetch_ops
    }

    /// Planes held per level (contiguous MSB-first prefix).
    pub fn held(&self) -> Vec<u8> {
        self.state.held()
    }

    /// Guaranteed bound of the currently held state.
    pub fn current_bound(&self) -> f64 {
        self.manifest.bound_with(&self.state.held())
    }

    /// Plan a fetch for `tolerance` against the currently held state.
    pub fn plan(&self, tolerance: f64) -> FetchPlan {
        plan_fetch(&self.manifest, &self.state.held(), tolerance)
    }

    /// Fetch + decode one component by manifest index. Returns `false`
    /// (and performs no I/O) when it is already held.
    pub fn fetch_component(&mut self, adapter: &dyn DeviceAdapter, idx: usize) -> Result<bool> {
        let c = self
            .manifest
            .components
            .get(idx)
            .ok_or_else(|| HpdrError::invalid("component index out of range"))?
            .clone();
        if self.fetched[idx] {
            return Ok(false);
        }
        let blocks = self.bp.blocks(0, &Manifest::var_name(c.level, c.plane))?;
        let info = blocks
            .first()
            .ok_or_else(|| HpdrError::corrupt("missing component block"))?;
        let blob = self.bp.read_block(info)?;
        self.bytes_fetched += blob.len() as u64;
        self.fetch_ops += 1;
        if let Some(model) = &self.cost {
            self.io_time += model.fetch_time(blob.len() as u64, 1);
        }
        let decoded = hpdr_huffman::decompress_u32(adapter, &blob)?;
        self.state.apply(
            c.level,
            c.plane,
            &decoded,
            self.level_counts[c.level as usize],
        )?;
        self.fetched[idx] = true;
        Ok(true)
    }

    /// Reconstruct from the currently held components.
    pub fn reconstruct<T: Float>(&self, adapter: &dyn DeviceAdapter) -> Result<(Vec<T>, Shape)> {
        reconstruct::<T>(adapter, &self.manifest, &self.state)
    }

    /// Fetch the minimal component set for `tolerance` (absolute L∞)
    /// and reconstruct. Already-held components are never re-fetched,
    /// so a second call with the same tolerance performs zero I/O.
    pub fn retrieve<T: Float>(
        &mut self,
        adapter: &dyn DeviceAdapter,
        tolerance: f64,
    ) -> Result<Retrieval<T>> {
        let plan = self.plan(tolerance);
        let before = self.bytes_fetched;
        let mut fetched = 0usize;
        for &idx in &plan.picks {
            if self.fetch_component(adapter, idx)? {
                fetched += 1;
            }
        }
        let (data, shape) = self.reconstruct::<T>(adapter)?;
        Ok(Retrieval {
            data,
            shape,
            bound: self.current_bound(),
            fetched_bytes: self.bytes_fetched - before,
            fetched_components: fetched,
        })
    }

    /// Refine to a tighter tolerance, fetching strictly the delta
    /// components and reusing all already-decoded state.
    pub fn refine<T: Float>(
        &mut self,
        adapter: &dyn DeviceAdapter,
        tolerance: f64,
    ) -> Result<Retrieval<T>> {
        self.retrieve(adapter, tolerance)
    }
}
