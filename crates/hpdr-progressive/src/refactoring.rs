//! Per-(level × bit-plane) component refactoring over the MGARD-X
//! decomposition (HP-MDR style).
//!
//! [`refactor_progressive`] decomposes the array with the multilevel
//! hierarchy, quantizes each level with its geometric bin, and then —
//! instead of one Huffman segment per level — splits each level's
//! quantized magnitudes into **bit-plane groups** of `plane_bits` bits,
//! most-significant first. Every `(level, plane)` pair becomes an
//! independently Huffman-coded *component*; sign bits ride in each
//! level's most-significant plane. A [`Manifest`] records every
//! component's encoded size and error-contribution estimate, which is
//! all a reader needs to plan a minimal fetch for a tolerance.
//!
//! Decoding is order-independent: a component only ORs its bit group
//! into the magnitude accumulator ([`DecodeState::apply`]), so
//! components may arrive out of order; the guaranteed error bound is
//! stated for contiguous MSB-first prefixes, which is what the greedy
//! planner fetches.

use hpdr_core::{
    ArrayMeta, ByteReader, ByteWriter, ContextKey, DType, DeviceAdapter, Float, FrameHeader,
    HpdrError, KernelClass, Result, Shape,
};
use hpdr_huffman::HuffmanConfig;
use hpdr_mgard::decompose::{decompose, recompose};
use hpdr_mgard::quantize::level_bin;
use hpdr_mgard::{context_cache, MgardContext};

const MANIFEST_FRAME: FrameHeader =
    FrameHeader::new(0x4850_4D46 /* "HPMF" */, 1, "progressive manifest");

/// Amplification of per-node coefficient error through recomposition
/// (the `1 + c` multilevel operator factor; see the error analysis in
/// `hpdr-mgard/src/quantize.rs`, `c ≈ 1.2` for multilinear bases).
pub const OPERATOR_GAIN: f64 = 2.2;

/// Configuration for progressive refactoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressiveConfig {
    /// Relative (to data range) L∞ bound achieved when **all**
    /// components are retrieved — the finest quantizer resolution.
    pub rel_bound: f64,
    /// Bits per bit-plane group (1..=8). Smaller groups give finer
    /// fetch granularity at slightly worse entropy-coding efficiency.
    pub plane_bits: u32,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        ProgressiveConfig {
            rel_bound: 1e-6,
            plane_bits: 4,
        }
    }
}

/// One component's manifest record.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentInfo {
    pub level: u8,
    /// Bit-plane index within the level, 0 = most significant.
    pub plane: u8,
    /// Encoded (Huffman) size in bytes.
    pub bytes: u64,
    /// Guaranteed L∞ error-bound reduction from fetching this
    /// component, given all shallower planes of its level are held.
    pub err_drop: f64,
}

/// Self-describing index of a progressive refactoring: everything a
/// reader needs to plan fetches without touching component data.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    pub dtype_tag: u8,
    pub shape: Shape,
    /// Absolute bound at full precision (`rel_bound · range`).
    pub abs_eb: f64,
    /// Data range at refactor time (for relative-tolerance requests).
    pub range: f64,
    pub plane_bits: u32,
    pub levels: u8,
    /// Bit-plane group count per level (0 for an all-zero level).
    pub level_planes: Vec<u8>,
    /// Level-major, plane-minor (MSB first) component records.
    pub components: Vec<ComponentInfo>,
}

impl Manifest {
    pub fn bin(&self, level: usize) -> f64 {
        level_bin(self.abs_eb, self.levels as usize, level)
    }

    /// Guaranteed L∞ contribution of `level` when the first `held`
    /// planes (MSB first) of that level are decoded.
    pub fn level_bound(&self, level: usize, held: u8) -> f64 {
        let planes = self.level_planes[level];
        let rem = self.plane_bits * planes.saturating_sub(held) as u32;
        let quantizer = if rem == 0 {
            // All planes held: only the rounding residual remains.
            0.5
        } else {
            // Unfetched low bits truncate toward zero: error is at most
            // `2^rem − 1` quantization steps plus the rounding residual.
            2f64.powi(rem as i32) - 0.5
        };
        OPERATOR_GAIN * self.bin(level) * quantizer
    }

    /// Total guaranteed L∞ bound when `held[l]` planes of each level
    /// are decoded.
    pub fn bound_with(&self, held: &[u8]) -> f64 {
        (0..self.levels as usize)
            .map(|l| self.level_bound(l, held.get(l).copied().unwrap_or(0)))
            .sum()
    }

    /// Bound before fetching anything / after fetching everything.
    pub fn base_bound(&self) -> f64 {
        self.bound_with(&vec![0; self.levels as usize])
    }
    pub fn full_bound(&self) -> f64 {
        self.bound_with(&self.level_planes.clone())
    }

    /// Index into `components` of `(level, plane)`.
    pub fn component_index(&self, level: u8, plane: u8) -> Option<usize> {
        self.components
            .iter()
            .position(|c| c.level == level && c.plane == plane)
    }

    /// BP variable name a component is stored under.
    pub fn var_name(level: u8, plane: u8) -> String {
        format!("c{level}.{plane}")
    }

    pub fn total_component_bytes(&self) -> u64 {
        self.components.iter().map(|c| c.bytes).sum()
    }

    pub fn dtype(&self) -> Result<DType> {
        DType::from_tag(self.dtype_tag)
            .ok_or_else(|| HpdrError::corrupt("bad dtype in progressive manifest"))
    }

    pub fn meta(&self) -> Result<ArrayMeta> {
        Ok(ArrayMeta::new(self.dtype()?, self.shape.clone()))
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        MANIFEST_FRAME.write(&mut w);
        w.put_u8(self.dtype_tag);
        w.put_u8(self.shape.ndims() as u8);
        for &d in self.shape.dims() {
            w.put_u64(d as u64);
        }
        w.put_f64(self.abs_eb);
        w.put_f64(self.range);
        w.put_u8(self.plane_bits as u8);
        w.put_u8(self.levels);
        for &p in &self.level_planes {
            w.put_u8(p);
        }
        w.put_u32(self.components.len() as u32);
        for c in &self.components {
            w.put_u8(c.level);
            w.put_u8(c.plane);
            w.put_u64(c.bytes);
            w.put_f64(c.err_drop);
        }
        w.into_vec()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest> {
        let mut r = ByteReader::new(bytes);
        MANIFEST_FRAME.read(&mut r)?;
        let dtype_tag = r.get_u8()?;
        if DType::from_tag(dtype_tag).is_none() {
            return Err(HpdrError::corrupt("bad dtype in progressive manifest"));
        }
        let nd = r.get_u8()? as usize;
        if !(1..=4).contains(&nd) {
            return Err(HpdrError::corrupt("bad rank in progressive manifest"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        let shape = Shape::try_new(&dims)?;
        let abs_eb = r.get_f64()?;
        if abs_eb <= 0.0 || !abs_eb.is_finite() {
            return Err(HpdrError::corrupt("bad bound in progressive manifest"));
        }
        let range = r.get_f64()?;
        if range <= 0.0 || !range.is_finite() {
            return Err(HpdrError::corrupt("bad range in progressive manifest"));
        }
        let plane_bits = r.get_u8()? as u32;
        if !(1..=8).contains(&plane_bits) {
            return Err(HpdrError::corrupt("bad plane bits in progressive manifest"));
        }
        let levels = r.get_u8()?;
        if levels == 0 || levels > 64 {
            return Err(HpdrError::corrupt(
                "bad level count in progressive manifest",
            ));
        }
        let mut level_planes = Vec::with_capacity(levels as usize);
        for _ in 0..levels {
            let p = r.get_u8()?;
            if p as u32 * plane_bits > 72 {
                return Err(HpdrError::corrupt(
                    "bad plane count in progressive manifest",
                ));
            }
            level_planes.push(p);
        }
        let n = r.get_u32()? as usize;
        let expected: usize = level_planes.iter().map(|&p| p as usize).sum();
        if n != expected {
            return Err(HpdrError::corrupt("component count mismatch in manifest"));
        }
        let mut components = Vec::with_capacity(n);
        for _ in 0..n {
            let level = r.get_u8()?;
            let plane = r.get_u8()?;
            if level >= levels || plane >= *level_planes.get(level as usize).unwrap_or(&0) {
                return Err(HpdrError::corrupt("component out of range in manifest"));
            }
            let bytes = r.get_u64()?;
            let err_drop = r.get_f64()?;
            if err_drop < 0.0 || !err_drop.is_finite() {
                return Err(HpdrError::corrupt("bad error contribution in manifest"));
            }
            components.push(ComponentInfo {
                level,
                plane,
                bytes,
                err_drop,
            });
        }
        r.expect_exhausted()?;
        Ok(Manifest {
            dtype_tag,
            shape,
            abs_eb,
            range,
            plane_bits,
            levels,
            level_planes,
            components,
        })
    }
}

/// A refactored array held in memory: the manifest plus every encoded
/// component, parallel to `manifest.components`.
#[derive(Debug, Clone, PartialEq)]
pub struct Refactoring {
    pub manifest: Manifest,
    pub components: Vec<Vec<u8>>,
}

/// Result of one retrieval / refinement.
#[derive(Debug, Clone)]
pub struct Retrieval<T> {
    pub data: Vec<T>,
    pub shape: Shape,
    /// Guaranteed L∞ bound of this reconstruction.
    pub bound: f64,
    /// Bytes fetched **by this call** (zero for already-held state).
    pub fetched_bytes: u64,
    /// Components fetched by this call.
    pub fetched_components: usize,
}

impl Refactoring {
    pub fn meta(&self) -> Result<ArrayMeta> {
        self.manifest.meta()
    }

    pub fn total_bytes(&self) -> u64 {
        self.manifest.total_component_bytes()
    }

    /// Decode the minimal component set for `tolerance` (absolute L∞)
    /// and reconstruct. In-memory counterpart of
    /// [`crate::ProgressiveReader::retrieve`]; "fetched" bytes count
    /// the components decoded.
    pub fn retrieve<T: Float>(
        &self,
        adapter: &dyn DeviceAdapter,
        tolerance: f64,
    ) -> Result<Retrieval<T>> {
        let plan = crate::plan_fetch(
            &self.manifest,
            &vec![0; self.manifest.levels as usize],
            tolerance,
        );
        let counts = level_counts(&self.manifest)?;
        let mut state = DecodeState::new(&self.manifest);
        let mut bytes = 0u64;
        for &idx in &plan.picks {
            let c = &self.manifest.components[idx];
            let decoded = hpdr_huffman::decompress_u32(adapter, &self.components[idx])?;
            state.apply(c.level, c.plane, &decoded, counts[c.level as usize])?;
            bytes += c.bytes;
        }
        let (data, shape) = reconstruct::<T>(adapter, &self.manifest, &state)?;
        Ok(Retrieval {
            data,
            shape,
            bound: self.manifest.bound_with(&state.held()),
            fetched_bytes: bytes,
            fetched_components: plan.picks.len(),
        })
    }
}

/// Decoded-component accumulator: per level, the sign bits (carried by
/// plane 0) and the magnitude bits ORed in by each applied plane.
#[derive(Debug, Clone)]
pub struct DecodeState {
    plane_bits: u32,
    level_planes: Vec<u8>,
    signs: Vec<Vec<bool>>,
    mags: Vec<Vec<u64>>,
    applied: Vec<Vec<bool>>,
}

impl DecodeState {
    pub fn new(manifest: &Manifest) -> DecodeState {
        let levels = manifest.levels as usize;
        DecodeState {
            plane_bits: manifest.plane_bits,
            level_planes: manifest.level_planes.clone(),
            signs: vec![Vec::new(); levels],
            mags: vec![Vec::new(); levels],
            applied: manifest
                .level_planes
                .iter()
                .map(|&p| vec![false; p as usize])
                .collect(),
        }
    }

    /// Fold one decoded component into the accumulator. Idempotent
    /// rejection of duplicates, order-independent across planes.
    pub fn apply(&mut self, level: u8, plane: u8, decoded: &[u32], nodes: usize) -> Result<()> {
        let l = level as usize;
        if l >= self.level_planes.len() || plane >= self.level_planes[l] {
            return Err(HpdrError::invalid("component out of range"));
        }
        if decoded.len() != nodes {
            return Err(HpdrError::corrupt("component length mismatch"));
        }
        if self.applied[l][plane as usize] {
            return Ok(());
        }
        if self.mags[l].is_empty() {
            self.mags[l] = vec![0; nodes];
            self.signs[l] = vec![false; nodes];
        }
        let g = self.plane_bits;
        let planes = self.level_planes[l] as u32;
        let shift = g * (planes - 1 - plane as u32);
        let mask = (1u64 << g) - 1;
        for (i, &sym) in decoded.iter().enumerate() {
            let (group, sign) = if plane == 0 {
                ((sym >> 1) as u64 & mask, sym & 1 == 1)
            } else {
                (sym as u64 & mask, false)
            };
            if plane == 0 {
                self.signs[l][i] = sign;
            }
            self.mags[l][i] |= group << shift;
        }
        self.applied[l][plane as usize] = true;
        Ok(())
    }

    /// Contiguous MSB-first planes held for `level` (the prefix the
    /// error bound is stated for).
    pub fn planes_held(&self, level: usize) -> u8 {
        self.applied[level].iter().take_while(|&&a| a).count() as u8
    }

    pub fn held(&self) -> Vec<u8> {
        (0..self.applied.len())
            .map(|l| self.planes_held(l))
            .collect()
    }

    pub fn is_applied(&self, level: u8, plane: u8) -> bool {
        self.applied
            .get(level as usize)
            .and_then(|p| p.get(plane as usize))
            .copied()
            .unwrap_or(false)
    }

    fn value(&self, level: usize, cursor: usize) -> i64 {
        if self.mags[level].is_empty() {
            return 0;
        }
        let m = self.mags[level][cursor] as i64;
        if self.signs[level][cursor] {
            -m
        } else {
            m
        }
    }
}

pub(crate) fn effective_shape(shape: &Shape) -> Shape {
    let d = shape.dims();
    if d.len() == 4 {
        Shape::new(&[d[0] * d[1], d[2], d[3]])
    } else {
        shape.clone()
    }
}

fn context_key(dtype: DType, eff: &Shape) -> ContextKey {
    ContextKey {
        algorithm: "hpdr-progressive",
        dtype,
        shape: eff.dims().to_vec(),
        config_hash: 0,
        device: 0,
    }
}

/// Nodes per level for the manifest's (effective) hierarchy.
pub fn level_counts(manifest: &Manifest) -> Result<Vec<usize>> {
    let eff = effective_shape(&manifest.shape);
    let key = context_key(manifest.dtype()?, &eff);
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let ctx = ctx.lock();
    if ctx.hierarchy.total_levels() != manifest.levels as usize {
        return Err(HpdrError::corrupt("level count mismatch with shape"));
    }
    let mut counts = vec![0usize; manifest.levels as usize];
    for &l in &ctx.node_levels {
        counts[l as usize] += 1;
    }
    Ok(counts)
}

/// Refactor `data` into per-(level, bit-plane) Huffman components.
pub fn refactor_progressive<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    shape: &Shape,
    cfg: &ProgressiveConfig,
) -> Result<Refactoring> {
    if data.len() != shape.num_elements() {
        return Err(HpdrError::invalid("data length does not match shape"));
    }
    if cfg.rel_bound <= 0.0 || !cfg.rel_bound.is_finite() {
        return Err(HpdrError::invalid("bound must be positive"));
    }
    if !(1..=8).contains(&cfg.plane_bits) {
        return Err(HpdrError::invalid("plane_bits must be in 1..=8"));
    }
    for &v in data {
        if !v.is_finite() {
            return Err(HpdrError::invalid("non-finite input"));
        }
    }
    let (mn, mx) = hpdr_kernels::min_max(adapter, data);
    let range = (mx.to_f64() - mn.to_f64()).max(f64::MIN_POSITIVE);
    let abs_eb = cfg.rel_bound * range;
    let eff = effective_shape(shape);

    let key = context_key(T::DTYPE, &eff);
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let mut ctx = ctx.lock();
    let levels = ctx.hierarchy.total_levels();
    let MgardContext {
        hierarchy,
        node_levels,
        work,
    } = &mut *ctx;
    work.clear();
    work.extend(data.iter().map(|v| v.to_f64()));
    decompose(adapter, work, hierarchy);

    let bins: Vec<f64> = (0..levels).map(|l| level_bin(abs_eb, levels, l)).collect();

    // Quantize each node against its level's bin, split by level in
    // node order (the order every decoder reproduces via cursors).
    let mut per_level_q: Vec<Vec<i64>> = vec![Vec::new(); levels];
    for (i, &v) in work.iter().enumerate() {
        let l = node_levels[i] as usize;
        per_level_q[l].push((v / bins[l]).round() as i64);
    }

    let g = cfg.plane_bits;
    let mut level_planes = Vec::with_capacity(levels);
    let mut infos = Vec::new();
    let mut blobs = Vec::new();
    for (l, q) in per_level_q.iter().enumerate() {
        let max_m = q.iter().map(|&x| x.unsigned_abs()).max().unwrap_or(0);
        let bits = 64 - max_m.leading_zeros();
        let planes = bits.div_ceil(g) as u8;
        level_planes.push(planes);
        let total_bits = planes as u32 * g;
        let mask = (1u64 << g) - 1;
        for p in 0..planes {
            let shift = total_bits - (p as u32 + 1) * g;
            let syms: Vec<u32> = q
                .iter()
                .map(|&x| {
                    let group = (x.unsigned_abs() >> shift) & mask;
                    if p == 0 {
                        ((group as u32) << 1) | u32::from(x < 0)
                    } else {
                        group as u32
                    }
                })
                .collect();
            let dict_size = 1u32 << if p == 0 { g + 1 } else { g };
            let hcfg = HuffmanConfig {
                dict_size,
                chunk_elems: 1 << 16,
            };
            let blob = hpdr_huffman::compress_u32(adapter, &syms, &hcfg)?;
            infos.push((l as u8, p, blob.len() as u64));
            blobs.push(blob);
        }
    }
    adapter.charge(KernelClass::Mgard, (data.len() * T::BYTES) as u64);

    let mut manifest = Manifest {
        dtype_tag: T::DTYPE.tag(),
        shape: shape.clone(),
        abs_eb,
        range,
        plane_bits: g,
        levels: levels as u8,
        level_planes,
        components: Vec::with_capacity(infos.len()),
    };
    for (level, plane, bytes) in infos {
        let err_drop = manifest.level_bound(level as usize, plane)
            - manifest.level_bound(level as usize, plane + 1);
        manifest.components.push(ComponentInfo {
            level,
            plane,
            bytes,
            err_drop,
        });
    }
    Ok(Refactoring {
        manifest,
        components: blobs,
    })
}

/// Reconstruct from whatever components `state` holds (zero planes of
/// a level read as zero coefficients).
pub fn reconstruct<T: Float>(
    adapter: &dyn DeviceAdapter,
    manifest: &Manifest,
    state: &DecodeState,
) -> Result<(Vec<T>, Shape)> {
    if manifest.dtype_tag != T::DTYPE.tag() {
        return Err(HpdrError::invalid("dtype mismatch"));
    }
    let shape = manifest.shape.clone();
    let eff = effective_shape(&shape);
    let key = context_key(T::DTYPE, &eff);
    let ctx = context_cache().get_or_create(&key, || MgardContext::new(&eff));
    let mut ctx = ctx.lock();
    if ctx.hierarchy.total_levels() != manifest.levels as usize {
        return Err(HpdrError::corrupt("level count mismatch with shape"));
    }
    let levels = manifest.levels as usize;
    let bins: Vec<f64> = (0..levels).map(|l| manifest.bin(l)).collect();
    let n = eff.num_elements();
    let MgardContext {
        hierarchy,
        node_levels,
        work,
    } = &mut *ctx;
    work.clear();
    work.resize(n, 0.0);
    let mut cursors = vec![0usize; levels];
    for i in 0..n {
        let l = node_levels[i] as usize;
        let c = cursors[l];
        cursors[l] += 1;
        work[i] = state.value(l, c) as f64 * bins[l];
    }
    recompose(adapter, work, hierarchy);
    adapter.charge(KernelClass::Mgard, (n * T::BYTES) as u64);
    Ok((work.iter().map(|&v| T::from_f64(v)).collect(), shape))
}

/// Type-erased reconstruction for byte-level pipelines: dispatches on
/// the manifest dtype and returns raw little-endian bytes + metadata.
pub fn reconstruct_bytes(
    adapter: &dyn DeviceAdapter,
    manifest: &Manifest,
    state: &DecodeState,
) -> Result<(Vec<u8>, ArrayMeta)> {
    let meta = manifest.meta()?;
    let bytes = match meta.dtype {
        DType::F32 => {
            let (v, _) = reconstruct::<f32>(adapter, manifest, state)?;
            v.iter().flat_map(|x| x.to_le_bytes()).collect()
        }
        DType::F64 => {
            let (v, _) = reconstruct::<f64>(adapter, manifest, state)?;
            v.iter().flat_map(|x| x.to_le_bytes()).collect()
        }
    };
    Ok((bytes, meta))
}
