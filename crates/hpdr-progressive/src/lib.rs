//! # hpdr-progressive — multi-fidelity refactoring & progressive retrieval
//!
//! The paper positions HPDR as the substrate for downstream
//! refactoring/retrieval stacks; this crate is that layer (HP-MDR
//! style). It refactors MGARD-X output into per-**(level × bit-plane)
//! components**, each independently Huffman-coded, stored as separate
//! variable blocks in the `hpdr-io` BP container next to a [`Manifest`]
//! recording every component's size and error-contribution estimate.
//!
//! A [`ProgressiveReader`] plans the minimal fetch for a tolerance
//! (greedy by error-contribution per byte), reads exactly those blocks,
//! and [`ProgressiveReader::refine`]s to tighter tolerances by fetching
//! strictly the delta while reusing all decoded state — one stored
//! container serves every reader at the fidelity it needs.
//!
//! Retrieval also exists as a scheduled op DAG ([`RetrieveJob`],
//! [`plan_retrieve`]) with declared buffer effects, so `hpdr verify`
//! and `hpdr audit` certify progressive schedules exactly like the
//! compress/decompress pipelines, and `hpdr-serve` batches
//! `JobKind::Retrieve` jobs through the same machinery.

pub mod batch;
pub mod job;
pub mod plan;
pub mod refactoring;
pub mod store;

pub use batch::RetrieveBatchItem;
pub use job::{plan_retrieve, RetrieveJob};
pub use plan::{plan_fetch, FetchPlan};
pub use refactoring::{
    level_counts, reconstruct, reconstruct_bytes, refactor_progressive, ComponentInfo, DecodeState,
    Manifest, ProgressiveConfig, Refactoring, Retrieval, OPERATOR_GAIN,
};
pub use store::{write_bp, ProgressiveReader, MANIFEST_VAR};
