//! Greedy fetch planning over a component manifest.
//!
//! Candidates are the next unfetched plane of each level (planes must
//! be consumed MSB-first for the error bound to hold); the planner
//! repeatedly picks the candidate with the best **error-contribution
//! per byte** until the guaranteed bound meets the tolerance or every
//! component is planned.

use crate::refactoring::Manifest;

/// A planned fetch: which components, in which order, and what the
/// bound will be once they are all decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchPlan {
    /// Absolute tolerance the plan was built for.
    pub tolerance: f64,
    /// Indices into `manifest.components`, in fetch order.
    pub picks: Vec<usize>,
    /// Total bytes the plan will fetch.
    pub bytes: u64,
    /// Guaranteed L∞ bound after the plan completes (may exceed the
    /// tolerance only when every component is already planned/held —
    /// the refactoring's full-precision floor).
    pub bound: f64,
}

/// Plan the minimal greedy fetch reaching `tolerance` (absolute L∞),
/// given `held[l]` planes of each level are already decoded.
pub fn plan_fetch(manifest: &Manifest, held: &[u8], tolerance: f64) -> FetchPlan {
    let levels = manifest.levels as usize;
    let mut held: Vec<u8> = (0..levels)
        .map(|l| held.get(l).copied().unwrap_or(0))
        .collect();
    let mut picks = Vec::new();
    let mut bytes = 0u64;
    let mut bound = manifest.bound_with(&held);
    while bound > tolerance {
        // Next unfetched plane of each level, scored by drop per byte.
        let mut best: Option<(f64, usize, usize)> = None;
        for (l, &h) in held.iter().enumerate() {
            if h >= manifest.level_planes[l] {
                continue;
            }
            let idx = manifest
                .component_index(l as u8, h)
                .expect("manifest missing a (level, plane) component");
            let c = &manifest.components[idx];
            let gain = c.err_drop / c.bytes.max(1) as f64;
            if best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, l, idx));
            }
        }
        let Some((_, l, idx)) = best else {
            break; // everything planned: bound is the precision floor
        };
        held[l] += 1;
        bytes += manifest.components[idx].bytes;
        picks.push(idx);
        bound = manifest.bound_with(&held);
    }
    FetchPlan {
        tolerance,
        picks,
        bytes,
        bound,
    }
}
