//! Shared-launch adapter: progressive retrieval as an
//! [`hpdr_pipeline::BatchItem`], so the serving layer folds
//! `Retrieve` jobs into continuous batches alongside compress and
//! decompress work. Components interleave round-robin with other
//! jobs' chunks exactly like pipeline chunks do.

use crate::job::RetrieveJob;
use crate::refactoring::Refactoring;
use hpdr_core::{ArrayMeta, DeviceAdapter, Result};
use hpdr_pipeline::{BatchItem, ExternalBatchJob, SubmittedBatchJob};
use hpdr_sim::{DeviceId, Sim};
use std::sync::Arc;

/// A progressive-retrieval request ready to ride in a shared launch.
pub struct RetrieveBatchItem {
    pub set: Arc<Refactoring>,
    /// Absolute L∞ tolerance the retrieval plans for.
    pub tolerance: f64,
}

impl RetrieveBatchItem {
    /// Wrap into a [`BatchItem`] for [`hpdr_pipeline::run_batch`].
    pub fn into_item(self) -> BatchItem {
        BatchItem::External(Box::new(self))
    }
}

impl ExternalBatchJob for RetrieveBatchItem {
    fn raw_bytes(&self) -> u64 {
        self.set
            .manifest
            .meta()
            .map(|m| m.num_bytes() as u64)
            .unwrap_or(0)
    }

    fn build(
        self: Box<Self>,
        sim: &mut Sim,
        dev: DeviceId,
        work: Arc<dyn DeviceAdapter>,
    ) -> Result<Box<dyn SubmittedBatchJob>> {
        let job = RetrieveJob::new(sim, dev, work, self.set, self.tolerance)?;
        Ok(Box::new(job))
    }
}

impl SubmittedBatchJob for RetrieveJob {
    fn num_chunks(&self) -> usize {
        self.num_components()
    }

    fn submit_chunk(&mut self, sim: &mut Sim, k: usize) {
        RetrieveJob::submit_component(self, sim, k);
    }

    fn finish_submission(&mut self, sim: &mut Sim) {
        RetrieveJob::finish_submission(self, sim);
    }

    fn finish(self: Box<Self>) -> Result<(Vec<u8>, ArrayMeta)> {
        (*self).finish()
    }
}
