//! Retrieval as a scheduled op DAG: fetch (H2D) → Huffman decode per
//! component, then one recomposition kernel and an output D2H, with
//! declared buffer effects so the static verifier and the dynamic
//! auditor certify every progressive plan exactly like the
//! compress/decompress pipelines.
//!
//! Components rotate through two staging buffers and three queues;
//! `H2D[k]` carries an anti-dependency on `decode[k − 2]` (the op that
//! last read its buffer), the same Fig. 9 discipline the pipeline
//! runner uses.

use crate::plan::{plan_fetch, FetchPlan};
use crate::refactoring::{level_counts, reconstruct_bytes, DecodeState, Refactoring};
use hpdr_core::{ArrayMeta, DeviceAdapter, HpdrError, KernelClass, Result};
use hpdr_sim::{BufId, Cost, DeviceId, DeviceSpec, Effects, Engine, OpId, OpSpec, QueueId, Sim};
use parking_lot::Mutex;
use std::sync::Arc;

type OutputSlot = Arc<Mutex<Option<(Vec<u8>, ArrayMeta)>>>;

/// State shared between the DAG payloads of one retrieval.
pub struct RetrieveJob {
    pub dev: DeviceId,
    queues: [QueueId; 3],
    in_bufs: Vec<BufId>,
    out_buf: BufId,
    set: Arc<Refactoring>,
    plan: FetchPlan,
    level_counts: Vec<usize>,
    state: Arc<Mutex<DecodeState>>,
    work: Arc<dyn DeviceAdapter>,
    output: OutputSlot,
    error: Arc<Mutex<Option<HpdrError>>>,
    decode_ops: Vec<OpId>,
    meta: ArrayMeta,
}

impl RetrieveJob {
    pub fn new(
        sim: &mut Sim,
        dev: DeviceId,
        work: Arc<dyn DeviceAdapter>,
        set: Arc<Refactoring>,
        tolerance: f64,
    ) -> Result<RetrieveJob> {
        if tolerance <= 0.0 || !tolerance.is_finite() {
            return Err(HpdrError::invalid("tolerance must be positive"));
        }
        let manifest = &set.manifest;
        let plan = plan_fetch(manifest, &vec![0; manifest.levels as usize], tolerance);
        let counts = level_counts(manifest)?;
        let meta = manifest.meta()?;
        let max_comp = plan
            .picks
            .iter()
            .map(|&i| set.components[i].len())
            .max()
            .unwrap_or(1);
        let queues = [sim.add_queue(), sim.add_queue(), sim.add_queue()];
        let in_bufs = (0..2).map(|_| sim.create_buffer(dev, max_comp)).collect();
        let out_buf = sim.create_buffer(dev, meta.num_bytes());
        Ok(RetrieveJob {
            dev,
            queues,
            in_bufs,
            out_buf,
            state: Arc::new(Mutex::new(DecodeState::new(manifest))),
            plan,
            level_counts: counts,
            set,
            work,
            output: Arc::new(Mutex::new(None)),
            error: Arc::new(Mutex::new(None)),
            decode_ops: Vec::new(),
            meta,
        })
    }

    pub fn num_components(&self) -> usize {
        self.plan.picks.len()
    }

    /// Bytes the plan fetches (the job's transfer volume).
    pub fn planned_bytes(&self) -> u64 {
        self.plan.bytes
    }

    /// Guaranteed bound once the plan completes.
    pub fn bound(&self) -> f64 {
        self.plan.bound
    }

    /// Submit component `k`'s ops (fetch H2D → Huffman decode).
    pub fn submit_component(&mut self, sim: &mut Sim, k: usize) {
        let idx = self.plan.picks[k];
        let c = self.set.manifest.components[idx].clone();
        let blob_len = self.set.components[idx].len();
        let q = self.queues[k % 3];
        let n_buf = self.in_bufs.len();
        let in_buf = self.in_bufs[k % n_buf];

        // Buffer anti-dependency: the previous tenant of this staging
        // buffer must have been consumed before we overwrite it.
        let mut deps = Vec::new();
        if k >= n_buf {
            deps.push(self.decode_ops[k - n_buf]);
        }
        let set = Arc::clone(&self.set);
        let h2d = sim.push(
            OpSpec {
                engine: Engine::H2D(self.dev),
                queue: Some(q),
                deps,
                cost: Cost::Transfer {
                    bytes: blob_len as u64,
                },
                label: format!("F[{k}:c{}.{}]", c.level, c.plane),
                effects: Effects::write(in_buf),
            },
            Some(Box::new(move |pool| {
                pool.resize(in_buf, blob_len);
                pool.get_mut(in_buf).copy_from_slice(&set.components[idx]);
            })),
        );

        let state = Arc::clone(&self.state);
        let work = Arc::clone(&self.work);
        let error = Arc::clone(&self.error);
        let nodes = self.level_counts[c.level as usize];
        let decode = sim.push(
            OpSpec {
                engine: Engine::Compute(self.dev),
                queue: Some(q),
                deps: vec![h2d],
                cost: Cost::Kernel {
                    class: KernelClass::Huffman,
                    bytes: blob_len as u64,
                },
                label: format!("Dec[{k}:c{}.{}]", c.level, c.plane),
                effects: Effects::read(in_buf),
            },
            Some(Box::new(move |pool| {
                let blob: Vec<u8> = pool.get(in_buf)[..blob_len].to_vec();
                let result = hpdr_huffman::decompress_u32(work.as_ref(), &blob)
                    .and_then(|decoded| state.lock().apply(c.level, c.plane, &decoded, nodes));
                if let Err(e) = result {
                    let mut slot = error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            })),
        );
        self.decode_ops.push(decode);
    }

    /// Submit the trailing recomposition + output copy (call after the
    /// last component).
    pub fn finish_submission(&mut self, sim: &mut Sim) {
        let set = Arc::clone(&self.set);
        let state = Arc::clone(&self.state);
        let work = Arc::clone(&self.work);
        let error = Arc::clone(&self.error);
        let out_buf = self.out_buf;
        let out_bytes = self.meta.num_bytes();
        let rec = sim.push(
            OpSpec {
                engine: Engine::Compute(self.dev),
                queue: Some(self.queues[0]),
                deps: self.decode_ops.clone(),
                cost: Cost::Kernel {
                    class: KernelClass::Mgard,
                    bytes: out_bytes as u64,
                },
                label: "Rec".to_string(),
                effects: Effects::write(out_buf),
            },
            Some(Box::new(move |pool| {
                match reconstruct_bytes(work.as_ref(), &set.manifest, &state.lock()) {
                    Ok((bytes, _)) => {
                        pool.resize(out_buf, bytes.len());
                        pool.get_mut(out_buf).copy_from_slice(&bytes);
                    }
                    Err(e) => {
                        let mut slot = error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            })),
        );
        let output = Arc::clone(&self.output);
        let meta = self.meta.clone();
        sim.push(
            OpSpec {
                engine: Engine::D2H(self.dev),
                queue: Some(self.queues[0]),
                deps: vec![rec],
                cost: Cost::Transfer {
                    bytes: out_bytes as u64,
                },
                label: "D2Hout".to_string(),
                effects: Effects::read(out_buf),
            },
            Some(Box::new(move |pool| {
                *output.lock() = Some((pool.get(out_buf).to_vec(), meta));
            })),
        );
    }

    /// Collect the reconstructed bytes after `sim.run()`.
    pub fn finish(self) -> Result<(Vec<u8>, ArrayMeta)> {
        if let Some(e) = self.error.lock().take() {
            return Err(e);
        }
        self.output
            .lock()
            .take()
            .ok_or_else(|| HpdrError::invalid("retrieval payload never executed"))
    }
}

/// Build and submit a full retrieval DAG **without executing it** —
/// the schedule goes to [`hpdr_sim::Sim::dag`] for offline
/// verification and auditing, exactly like `plan_compress`.
pub fn plan_retrieve(
    spec: &DeviceSpec,
    work: Arc<dyn DeviceAdapter>,
    set: Arc<Refactoring>,
    tolerance: f64,
) -> Result<Sim> {
    let mut sim = Sim::new();
    let rt = sim.add_runtime();
    let dev = sim.add_device(spec.clone(), rt);
    let mut job = RetrieveJob::new(&mut sim, dev, work, set, tolerance)?;
    for k in 0..job.num_components() {
        job.submit_component(&mut sim, k);
    }
    job.finish_submission(&mut sim);
    Ok(sim)
}
