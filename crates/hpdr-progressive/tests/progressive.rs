//! Acceptance properties of progressive retrieval:
//!
//! * measured error ≤ the requested tolerance, at every fidelity;
//! * the guaranteed bound (and, within slack, the measured error) is
//!   monotonically non-increasing as components are added;
//! * a loose tolerance fetches strictly fewer bytes than the full
//!   container; `refine` fetches strictly the delta with **zero**
//!   re-fetches of already-held components;
//! * on-disk BP round-trip survives out-of-order component fetch;
//! * the retrieval op DAG verifies clean and reproduces the direct
//!   reconstruction byte-for-byte.

use hpdr_core::{CpuParallelAdapter, DeviceAdapter, SerialAdapter, Shape};
use hpdr_progressive::{
    plan_fetch, plan_retrieve, refactor_progressive, Manifest, ProgressiveConfig,
    ProgressiveReader, Refactoring,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hpdr-progressive-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn smooth(dims: &[usize]) -> (Vec<f64>, Shape) {
    let shape = Shape::new(dims);
    let data = (0..shape.num_elements())
        .map(|i| {
            let idx = shape.unravel(i);
            idx.iter()
                .enumerate()
                .map(|(d, &x)| ((x as f64 / dims[d] as f64) * (2.0 + d as f64)).sin())
                .sum::<f64>()
        })
        .collect();
    (data, shape)
}

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn max_err_f32(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

#[test]
fn full_fetch_meets_the_full_bound() {
    let adapter = CpuParallelAdapter::new(4);
    let (data, shape) = smooth(&[17, 17]);
    let r = refactor_progressive(&adapter, &data, &shape, &ProgressiveConfig::default()).unwrap();
    let tol = r.manifest.full_bound();
    let out = r.retrieve::<f64>(&adapter, tol).unwrap();
    assert_eq!(out.shape, shape);
    assert!(out.bound <= tol * (1.0 + 1e-12));
    let err = max_err(&data, &out.data);
    assert!(err <= tol, "err {err} > bound {tol}");
    // Full precision is genuinely tight (rel_bound 1e-6 of range ~4).
    assert!(tol < 1e-4, "full bound {tol}");
}

#[test]
fn nyx_32cube_progressive_acceptance() {
    // The headline scenario: one stored 32³ NYX container, three
    // fidelities, each fetch minimal, refine strictly delta.
    let adapter = CpuParallelAdapter::new(4);
    let d = hpdr_data::nyx_density(32, 7);
    let data: Vec<f32> = d
        .bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let r = refactor_progressive(&adapter, &data, &d.shape, &ProgressiveConfig::default()).unwrap();
    let total = r.total_bytes();
    let range = r.manifest.range;

    let dir = tmpdir("nyx32");
    hpdr_progressive::write_bp(&dir, &r, 2).unwrap();
    let mut reader = ProgressiveReader::open(&dir).unwrap();

    // Loose bound: strictly fewer bytes than the full container.
    let loose = 1e-2 * range;
    let first = reader.retrieve::<f32>(&adapter, loose).unwrap();
    assert!(
        reader.bytes_fetched() < total,
        "loose fetch {} should be < total {}",
        reader.bytes_fetched(),
        total
    );
    assert!(first.fetched_bytes > 0);
    let err = max_err_f32(&data, &first.data);
    assert!(err <= loose, "loose err {err} > {loose}");

    // Refine: strictly the delta, zero re-fetches.
    let tight = 1e-4 * range;
    let ops_before = reader.fetch_ops();
    let bytes_before = reader.bytes_fetched();
    let refined = reader.refine::<f32>(&adapter, tight).unwrap();
    let err = max_err_f32(&data, &refined.data);
    assert!(err <= tight, "tight err {err} > {tight}");
    assert!(refined.fetched_bytes > 0, "refine must fetch the delta");
    // Every fetch op since the first call touched a *new* component:
    // ops grew exactly by the number of newly fetched components.
    assert_eq!(
        reader.fetch_ops() - ops_before,
        refined.fetched_components as u64,
        "refine re-fetched an already-held component"
    );
    assert_eq!(reader.bytes_fetched() - bytes_before, refined.fetched_bytes);

    // Same tolerance again: zero I/O, state fully reused.
    let again = reader.refine::<f32>(&adapter, tight).unwrap();
    assert_eq!(again.fetched_bytes, 0);
    assert_eq!(again.fetched_components, 0);
    assert_eq!(
        reader.fetch_ops(),
        ops_before + refined.fetched_components as u64
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn out_of_order_component_fetch_roundtrips_on_disk() {
    let adapter = SerialAdapter::new();
    let (data, shape) = smooth(&[9, 17, 5]);
    let cfg = ProgressiveConfig {
        rel_bound: 1e-5,
        plane_bits: 3,
    };
    let r = refactor_progressive(&adapter, &data, &shape, &cfg).unwrap();
    let dir = tmpdir("ooo");
    hpdr_progressive::write_bp(&dir, &r, 3).unwrap();

    // Fetch *every* component in reverse manifest order — decoding is
    // order-independent, so the result must equal the in-order one.
    let mut reader = ProgressiveReader::open(&dir).unwrap();
    assert_eq!(reader.manifest(), &r.manifest);
    for idx in (0..r.manifest.components.len()).rev() {
        assert!(reader.fetch_component(&adapter, idx).unwrap());
    }
    assert_eq!(reader.bytes_fetched(), r.total_bytes());
    let (ooo, s) = reader.reconstruct::<f64>(&adapter).unwrap();
    assert_eq!(s, shape);

    let full = r
        .retrieve::<f64>(&adapter, r.manifest.full_bound())
        .unwrap();
    assert_eq!(ooo, full.data, "out-of-order decode must be bit-identical");
    assert!(max_err(&data, &ooo) <= r.manifest.full_bound());

    // Re-fetching a held component is a no-op.
    assert!(!reader.fetch_component(&adapter, 0).unwrap());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_roundtrip_and_corruption() {
    let adapter = SerialAdapter::new();
    let (data, shape) = smooth(&[17, 9]);
    let r = refactor_progressive(&adapter, &data, &shape, &ProgressiveConfig::default()).unwrap();
    let bytes = r.manifest.to_bytes();
    let parsed = Manifest::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, r.manifest);
    for cut in [0usize, 3, 7, bytes.len() / 2, bytes.len() - 1] {
        assert!(Manifest::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
    }
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF; // magic
    assert!(Manifest::from_bytes(&bad).is_err());
    // Error-contribution estimates are recorded and positive.
    assert!(!parsed.components.is_empty());
    assert!(parsed
        .components
        .iter()
        .all(|c| c.err_drop > 0.0 && c.bytes > 0));
}

#[test]
fn dtype_mismatch_rejected() {
    let adapter = SerialAdapter::new();
    let (data, shape) = smooth(&[9, 9]);
    let r = refactor_progressive(&adapter, &data, &shape, &ProgressiveConfig::default()).unwrap();
    assert!(r.retrieve::<f32>(&adapter, 1.0).is_err());
}

#[test]
fn greedy_plan_prefers_error_per_byte_and_respects_prefixes() {
    let adapter = SerialAdapter::new();
    let (data, shape) = smooth(&[33, 17]);
    let r = refactor_progressive(&adapter, &data, &shape, &ProgressiveConfig::default()).unwrap();
    let m = &r.manifest;
    let plan = plan_fetch(m, &vec![0; m.levels as usize], m.full_bound());
    // Planes of each level appear MSB-first within the plan.
    let mut seen = vec![0u8; m.levels as usize];
    for &idx in &plan.picks {
        let c = &m.components[idx];
        assert_eq!(c.plane, seen[c.level as usize], "non-prefix fetch order");
        seen[c.level as usize] += 1;
    }
    // A looser plan is a prefix-compatible subset with fewer bytes.
    let loose = plan_fetch(m, &vec![0; m.levels as usize], m.base_bound() / 4.0);
    assert!(loose.bytes < plan.bytes);
    assert!(loose.picks.len() < plan.picks.len());
    // Held state shrinks the plan to the strict delta.
    let held = {
        let mut h = vec![0u8; m.levels as usize];
        for &idx in &loose.picks {
            h[m.components[idx].level as usize] += 1;
        }
        h
    };
    let delta = plan_fetch(m, &held, plan.bound);
    for &idx in &delta.picks {
        assert!(
            !loose.picks.contains(&idx),
            "delta re-plans a held component"
        );
    }
}

#[test]
fn retrieve_dag_matches_direct_reconstruction_and_verifies_clean() {
    let adapter: Arc<dyn DeviceAdapter> = Arc::new(SerialAdapter::new());
    let (data, shape) = smooth(&[17, 17]);
    let r = Arc::new(
        refactor_progressive(
            adapter.as_ref(),
            &data,
            &shape,
            &ProgressiveConfig::default(),
        )
        .unwrap(),
    );
    let tol = 8.0 * r.manifest.full_bound();

    let sim = plan_retrieve(&hpdr_sim::v100(), Arc::clone(&adapter), Arc::clone(&r), tol).unwrap();
    // Static verification: zero hazards, zero lint findings.
    let dag = sim.dag();
    let report = hpdr_verify::check(
        &dag,
        &hpdr_verify::LintConfig {
            direction: hpdr_verify::Direction::Decompress,
            two_buffers: false,
            cmm: true,
            deser_first: false,
            serial_queue: false,
        },
    );
    assert!(report.is_clean(), "{}", report.describe(&dag));

    // Executing the DAG reproduces the direct path byte-for-byte.
    let mut job_sim = Sim2::build(&adapter, &r, tol);
    let timeline = job_sim.sim.run();
    assert!(timeline.makespan().0 > 0);
    let (bytes, meta) = job_sim.job.finish().unwrap();
    assert_eq!(meta, r.meta().unwrap());
    let direct = r.retrieve::<f64>(adapter.as_ref(), tol).unwrap();
    let direct_bytes: Vec<u8> = direct.data.iter().flat_map(|v| v.to_le_bytes()).collect();
    assert_eq!(bytes, direct_bytes);
}

/// Helper pairing a Sim with its RetrieveJob (plan_retrieve consumes
/// the job internally, so tests that need `finish()` build their own).
struct Sim2 {
    sim: hpdr_sim::Sim,
    job: hpdr_progressive::RetrieveJob,
}

impl Sim2 {
    fn build(adapter: &Arc<dyn DeviceAdapter>, set: &Arc<Refactoring>, tol: f64) -> Sim2 {
        let mut sim = hpdr_sim::Sim::new();
        let rt = sim.add_runtime();
        let dev = sim.add_device(hpdr_sim::v100(), rt);
        let mut job = hpdr_progressive::RetrieveJob::new(
            &mut sim,
            dev,
            Arc::clone(adapter),
            Arc::clone(set),
            tol,
        )
        .unwrap();
        for k in 0..job.num_components() {
            job.submit_component(&mut sim, k);
        }
        job.finish_submission(&mut sim);
        Sim2 { sim, job }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property (satellite): at every greedy prefix, the measured error
    /// is ≤ the guaranteed bound (hence ≤ any tolerance that prefix was
    /// planned for), and the bound is monotonically non-increasing as
    /// components are added; the measured error is non-increasing
    /// within the same slack the level-prefix refactor tests use.
    #[test]
    fn error_monotone_under_component_addition(
        dsel in 0usize..4,
        seed in 1u64..500,
    ) {
        let dims: &[usize] = match dsel {
            0 => &[17, 17],
            1 => &[9, 9, 9],
            2 => &[33, 5],
            _ => &[65],
        };
        let shape = Shape::new(dims);
        let data: Vec<f64> = (0..shape.num_elements())
            .map(|i| {
                let x = i as f64 / shape.num_elements() as f64;
                ((x * 13.7 + seed as f64).sin() + (x * 5.1).cos()) * 2.0
            })
            .collect();
        let adapter = SerialAdapter::new();
        let cfg = ProgressiveConfig { rel_bound: 1e-6, plane_bits: 4 };
        let r = refactor_progressive(&adapter, &data, &shape, &cfg).unwrap();
        let m = r.manifest.clone();
        let dir = tmpdir(&format!("prop-{dsel}-{seed}"));
        hpdr_progressive::write_bp(&dir, &r, 1).unwrap();
        let mut reader = ProgressiveReader::open(&dir).unwrap();

        // Greedy full order.
        let plan = plan_fetch(&m, &vec![0; m.levels as usize], 0.0);
        let mut last_bound = reader.current_bound();
        let mut last_err = f64::INFINITY;
        // Check the empty state, then every third prefix (cheaper).
        for (k, &idx) in plan.picks.iter().enumerate() {
            prop_assert!(reader.fetch_component(&adapter, idx).unwrap());
            if k % 3 != 0 && k + 1 != plan.picks.len() {
                continue;
            }
            let bound = reader.current_bound();
            prop_assert!(bound <= last_bound * (1.0 + 1e-12),
                "bound grew: {bound} > {last_bound}");
            let (out, _) = reader.reconstruct::<f64>(&adapter).unwrap();
            let err = max_err(&data, &out);
            prop_assert!(err <= bound, "err {err} > guaranteed bound {bound}");
            // Measured error tracks the monotone bound; cancellation in
            // the recomposition allows small transient rises, so the
            // hard guarantee is err ≤ bound (above) and the trend check
            // carries generous slack.
            prop_assert!(err <= last_err * 1.5 + 1e-12,
                "error grew adding component {k}: {err} > {last_err}");
            last_bound = bound;
            last_err = err;
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
