//! ZFP's embedded bit-plane coder: group-tested, budgeted encoding of
//! negabinary coefficient planes, MSB→LSB. Faithful port of zfp's
//! `encode_ints` / `decode_ints` control flow, including its behaviour at
//! budget exhaustion (encoder and decoder decrement the same budget
//! counter in lock-step, so truncation points always agree).
//!
//! Coefficients must already be in sequency order so significance grows
//! monotonically along the array — that is what makes the unary group
//! tests cheap.

use hpdr_core::Result;
use hpdr_kernels::{BitReader, BitWriter};

#[inline]
fn shr(x: u64, m: u32) -> u64 {
    if m >= 64 {
        0
    } else {
        x >> m
    }
}

/// Natural output bound for [`encode_ints`]: each of the 64 planes emits
/// at most `size` verbatim bits plus `size + 1` group/value bits, so
/// `64 × (2·64 + 1)` bits ⇒ 130 words cover every possible stream.
const EMIT_WORDS: usize = 130;

/// Local bit accumulator for [`encode_ints`]: collects the stream in a
/// stack buffer with one branch per append, then hands whole words to the
/// (bounds-checked, spill-handling) `BitWriter` in a single pass. The
/// plane loop appends a handful of bits at a time, so routing every group
/// test through `BitWriter::write_bits` costs more than the coding itself.
struct Emit {
    buf: [u64; EMIT_WORDS],
    acc: u64,
    /// Bits resident in `acc` (< 64 between pushes).
    nacc: u32,
    nwords: usize,
}

impl Emit {
    #[inline]
    fn new() -> Emit {
        Emit {
            buf: [0; EMIT_WORDS],
            acc: 0,
            nacc: 0,
            nwords: 0,
        }
    }

    /// Append the low `nbits` of `value` (LSB first, `value` pre-masked).
    #[inline]
    fn push(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        debug_assert!(nbits == 64 || value >> nbits == 0);
        self.acc |= value << self.nacc;
        let total = self.nacc + nbits;
        if total >= 64 {
            self.buf[self.nwords] = self.acc;
            self.nwords += 1;
            self.acc = if self.nacc == 0 {
                0
            } else {
                value >> (64 - self.nacc)
            };
            self.nacc = total - 64;
        } else {
            self.nacc = total;
        }
    }

    /// Flush into `w`. `total_bits` must equal the number of pushed bits,
    /// so `buf[..nwords]` holds the full words and `acc` the partial tail.
    fn flush_to(self, w: &mut BitWriter, total_bits: u32) {
        debug_assert_eq!(self.nwords, (total_bits / 64) as usize);
        for &word in &self.buf[..self.nwords] {
            w.write_bits(word, 64);
        }
        let rem = total_bits % 64;
        if rem > 0 {
            w.write_bits(self.acc, rem);
        }
    }
}

/// Encode `data` (negabinary, sequency-ordered, `len <= 64`) using at most
/// `maxbits` bits of `w`, covering bit planes `kmin..64`. Returns the
/// number of bits written.
///
/// The group-test coding follows zfp's `encode_ints` control flow, but
/// each unary run is emitted in closed form: a run of `tz` insignificant
/// coefficients followed by a significant one always serializes as the
/// word `1 | 1 << (tz + 1)` (test bit, `tz` zeros, terminating one), so a
/// single trailing-zeros count replaces the per-bit inner loop. Budget
/// exhaustion truncates that word's low bits — identical to stopping the
/// reference loop mid-run.
pub fn encode_ints(w: &mut BitWriter, maxbits: u32, kmin: u32, data: &[u64]) -> u32 {
    let size = data.len();
    debug_assert!((1..=64).contains(&size));
    // Extract all 64 bit planes at once: one 64×64 bit transpose turns
    // coefficient words into plane words (`planes[k]` bit `i` == `data[i]`
    // bit `k`), replacing the per-plane 64-iteration gather loop.
    let mut planes = [0u64; 64];
    planes[..size].copy_from_slice(data);
    (hpdr_kernels::kernels().bit_transpose64)(&mut planes);
    let mut e = Emit::new();
    let mut bits = maxbits.min(64 * (2 * 64 + 1));
    let clamped = maxbits - bits; // re-added at return; never emitted
    let mut n: usize = 0;
    let mut k = 64u32;
    'planes: while bits > 0 && k > kmin {
        k -= 1;
        // Step 1: bit plane #k.
        let x: u64 = planes[k as usize];
        // Step 2: verbatim bits for the n already-significant coefficients.
        let m = (n as u32).min(bits);
        bits -= m;
        e.push(if m == 64 { x } else { x & !(u64::MAX << m) }, m);
        let mut x = shr(x, m);
        // Step 3: group-test the remainder of the plane, one run at a time.
        loop {
            if n >= size || bits == 0 {
                break;
            }
            if x == 0 {
                // Group test 0: no significant coefficients remain.
                bits -= 1;
                e.push(0, 1);
                break;
            }
            // `x` has `size - n` live bits, so `tz <= size - n - 1`.
            let tz = x.trailing_zeros() as usize;
            let (chunk, chunk_len) = if tz < size - 1 - n {
                // Test 1, `tz` zeros, terminating 1.
                (1u64 | (1u64 << (tz + 1)), tz as u32 + 2)
            } else {
                // Final coefficient's run: its terminating 1 is implied
                // (the reference inner loop stops at `size - 1`).
                (1u64, (size - n) as u32)
            };
            if bits < chunk_len {
                // Budget exhausts mid-run: emit the run's first `bits`
                // bits (test bit + zeros) and stop everything.
                e.push(chunk & !(u64::MAX << bits), bits);
                bits = 0;
                break 'planes;
            }
            bits -= chunk_len;
            e.push(chunk, chunk_len);
            if tz < size - 1 - n {
                x >>= tz + 1;
                n += tz + 1;
            } else {
                n = size;
                break;
            }
        }
    }
    let written = maxbits - clamped - bits;
    e.flush_to(w, written);
    written
}

/// Decode the planes written by [`encode_ints`] with identical `maxbits`
/// and `kmin`. Returns the reconstructed negabinary coefficients.
pub fn decode_ints(
    r: &mut BitReader<'_>,
    maxbits: u32,
    kmin: u32,
    size: usize,
) -> Result<Vec<u64>> {
    debug_assert!((1..=64).contains(&size));
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut planes = [0u64; 64];
    let mut k = 64u32;
    while bits > 0 && k > kmin {
        k -= 1;
        let m = (n as u32).min(bits);
        bits -= m;
        let mut x = r.read_bits(m)?;
        loop {
            if n >= size || bits == 0 {
                break;
            }
            bits -= 1;
            if !r.read_bit()? {
                break;
            }
            loop {
                if n >= size - 1 || bits == 0 {
                    break;
                }
                bits -= 1;
                if r.read_bit()? {
                    break;
                }
                n += 1;
            }
            x += 1u64 << n;
            n += 1;
        }
        planes[k as usize] = x;
    }
    // One transpose deposits every decoded plane into its coefficients
    // (`out[i]` bit `k` == `planes[k]` bit `i`); undecoded planes are 0.
    (hpdr_kernels::kernels().bit_transpose64)(&mut planes);
    Ok(planes[..size].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u64], maxbits: u32, kmin: u32) -> Vec<u64> {
        let mut w = BitWriter::new();
        let used = encode_ints(&mut w, maxbits, kmin, data);
        assert!(used as u64 <= maxbits as u64);
        assert_eq!(used as u64, w.bit_len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        decode_ints(&mut r, maxbits, kmin, data.len()).unwrap()
    }

    #[test]
    fn lossless_with_full_budget() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0x0F, 0x3, 0x100, 0, 0xFFFF, 1, 2, 3],
            vec![0; 16],
            vec![u64::MAX >> 1; 4],
            (0..64u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7) >> 1)
                .collect(),
            vec![1u64 << 62],
            vec![0, 0, 0, 1],
        ];
        for data in cases {
            let out = roundtrip(&data, 1 << 20, 0);
            assert_eq!(out, data);
        }
    }

    #[test]
    fn truncation_bounds_error_per_plane() {
        // With kmin = K all planes below K are dropped; reconstruction
        // must agree on every plane >= K.
        let data: Vec<u64> = (0..16u64).map(|i| (i * 0x1234_5678) ^ (i << 40)).collect();
        for kmin in [8u32, 16, 32, 48] {
            let out = roundtrip(&data, 1 << 20, kmin);
            for (a, b) in data.iter().zip(&out) {
                assert_eq!(a >> kmin, b >> kmin, "kmin={kmin}");
            }
        }
    }

    #[test]
    fn budget_is_respected_and_deterministic() {
        let data: Vec<u64> = (0..64u64).map(|i| 1u64 << (i % 60)).collect();
        for maxbits in [17u32, 64, 256, 512, 1024] {
            let mut w = BitWriter::new();
            let used = encode_ints(&mut w, maxbits, 0, &data);
            assert!(used <= maxbits);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            // Decoding with the same budget must not error even when the
            // stream was truncated by the budget.
            decode_ints(&mut r, maxbits, 0, data.len()).unwrap();
        }
    }

    /// The original per-bit emission loop, kept verbatim as the oracle
    /// for the closed-form run emission in [`encode_ints`].
    fn encode_ints_reference(w: &mut BitWriter, maxbits: u32, kmin: u32, data: &[u64]) -> u32 {
        let size = data.len();
        let mut planes = [0u64; 64];
        planes[..size].copy_from_slice(data);
        (hpdr_kernels::kernels().bit_transpose64)(&mut planes);
        let mut bits = maxbits;
        let mut n: usize = 0;
        let mut k = 64u32;
        while bits > 0 && k > kmin {
            k -= 1;
            let x: u64 = planes[k as usize];
            let m = (n as u32).min(bits);
            bits -= m;
            w.write_bits(x, m);
            let mut x = shr(x, m);
            loop {
                if n >= size || bits == 0 {
                    break;
                }
                bits -= 1;
                let any = x != 0;
                w.write_bit(any);
                if !any {
                    break;
                }
                loop {
                    if n >= size - 1 || bits == 0 {
                        break;
                    }
                    bits -= 1;
                    let bit = (x & 1) == 1;
                    w.write_bit(bit);
                    if bit {
                        break;
                    }
                    x >>= 1;
                    n += 1;
                }
                x >>= 1;
                n += 1;
            }
        }
        maxbits - bits
    }

    #[test]
    fn closed_form_emission_matches_reference_bit_for_bit() {
        // Pseudo-random blocks over every size, a spread of budgets that
        // exercises truncation at every alignment, and kmin truncation.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for size in 1..=64usize {
            for case in 0..8 {
                let data: Vec<u64> = (0..size)
                    .map(|_| {
                        let v = rng();
                        // Mix sparse, dense, and small-magnitude words.
                        match case % 4 {
                            0 => v,
                            1 => v & rng() & rng(),
                            2 => v >> (v % 50),
                            _ => 0,
                        }
                    })
                    .collect();
                for maxbits in [1u32, 7, 17, 63, 64, 65, 129, 1007, 4096, 1 << 24] {
                    for kmin in [0u32, 13, 52] {
                        let mut wa = BitWriter::new();
                        let ua = encode_ints(&mut wa, maxbits, kmin, &data);
                        let mut wb = BitWriter::new();
                        let ub = encode_ints_reference(&mut wb, maxbits, kmin, &data);
                        assert_eq!(ua, ub, "size={size} maxbits={maxbits} kmin={kmin}");
                        assert_eq!(
                            wa.clone().into_bytes(),
                            wb.clone().into_bytes(),
                            "size={size} maxbits={maxbits} kmin={kmin}"
                        );
                        assert_eq!(wa.bit_len(), wb.bit_len());
                    }
                }
            }
        }
    }

    #[test]
    fn zero_block_costs_one_bit_per_plane() {
        let data = vec![0u64; 16];
        let mut w = BitWriter::new();
        let used = encode_ints(&mut w, 4096, 0, &data);
        assert_eq!(used, 64); // one group-test bit per plane
    }

    #[test]
    fn higher_budget_never_increases_plane_error() {
        let data: Vec<u64> = (0..16u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 4)
            .collect();
        let mut prev_err: Option<u64> = None;
        for maxbits in [32u32, 64, 128, 256, 512, 1024, 2048] {
            let out = roundtrip(&data, maxbits, 0);
            let err: u64 = data
                .iter()
                .zip(&out)
                .map(|(a, b)| a.max(b) - a.min(b))
                .max()
                .unwrap();
            if let Some(p) = prev_err {
                assert!(err <= p, "error grew with budget {maxbits}: {err} > {p}");
            }
            prev_err = Some(err);
        }
    }
}
