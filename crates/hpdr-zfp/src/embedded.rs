//! ZFP's embedded bit-plane coder: group-tested, budgeted encoding of
//! negabinary coefficient planes, MSB→LSB. Faithful port of zfp's
//! `encode_ints` / `decode_ints` control flow, including its behaviour at
//! budget exhaustion (encoder and decoder decrement the same budget
//! counter in lock-step, so truncation points always agree).
//!
//! Coefficients must already be in sequency order so significance grows
//! monotonically along the array — that is what makes the unary group
//! tests cheap.

use hpdr_core::Result;
use hpdr_kernels::{BitReader, BitWriter};

#[inline]
fn shr(x: u64, m: u32) -> u64 {
    if m >= 64 {
        0
    } else {
        x >> m
    }
}

/// Encode `data` (negabinary, sequency-ordered, `len <= 64`) using at most
/// `maxbits` bits of `w`, covering bit planes `kmin..64`. Returns the
/// number of bits written.
pub fn encode_ints(w: &mut BitWriter, maxbits: u32, kmin: u32, data: &[u64]) -> u32 {
    let size = data.len();
    debug_assert!((1..=64).contains(&size));
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut k = 64u32;
    while bits > 0 && k > kmin {
        k -= 1;
        // Step 1: extract bit plane #k into x.
        let mut x: u64 = 0;
        for (i, &v) in data.iter().enumerate() {
            x += ((v >> k) & 1) << i;
        }
        // Step 2: verbatim bits for the n already-significant coefficients.
        let m = (n as u32).min(bits);
        bits -= m;
        w.write_bits(x, m);
        let mut x = shr(x, m);
        // Step 3: unary run-length encode the remainder of the plane.
        loop {
            // Outer condition: n < size && bits && write group-test bit.
            if n >= size || bits == 0 {
                break;
            }
            bits -= 1;
            let any = x != 0;
            w.write_bit(any);
            if !any {
                break;
            }
            // Inner: emit value bits until the run's terminating 1.
            loop {
                if n >= size - 1 || bits == 0 {
                    break;
                }
                bits -= 1;
                let bit = (x & 1) == 1;
                w.write_bit(bit);
                if bit {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            // Outer increment (consumes the significant coefficient).
            x >>= 1;
            n += 1;
        }
    }
    maxbits - bits
}

/// Decode the planes written by [`encode_ints`] with identical `maxbits`
/// and `kmin`. Returns the reconstructed negabinary coefficients.
pub fn decode_ints(
    r: &mut BitReader<'_>,
    maxbits: u32,
    kmin: u32,
    size: usize,
) -> Result<Vec<u64>> {
    debug_assert!((1..=64).contains(&size));
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut data = vec![0u64; size];
    let mut k = 64u32;
    while bits > 0 && k > kmin {
        k -= 1;
        let m = (n as u32).min(bits);
        bits -= m;
        let mut x = r.read_bits(m)?;
        loop {
            if n >= size || bits == 0 {
                break;
            }
            bits -= 1;
            if !r.read_bit()? {
                break;
            }
            loop {
                if n >= size - 1 || bits == 0 {
                    break;
                }
                bits -= 1;
                if r.read_bit()? {
                    break;
                }
                n += 1;
            }
            x += 1u64 << n;
            n += 1;
        }
        // Deposit plane k.
        let mut xx = x;
        let mut i = 0usize;
        while xx != 0 {
            if xx & 1 == 1 {
                data[i] |= 1u64 << k;
            }
            xx >>= 1;
            i += 1;
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u64], maxbits: u32, kmin: u32) -> Vec<u64> {
        let mut w = BitWriter::new();
        let used = encode_ints(&mut w, maxbits, kmin, data);
        assert!(used as u64 <= maxbits as u64);
        assert_eq!(used as u64, w.bit_len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        decode_ints(&mut r, maxbits, kmin, data.len()).unwrap()
    }

    #[test]
    fn lossless_with_full_budget() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0x0F, 0x3, 0x100, 0, 0xFFFF, 1, 2, 3],
            vec![0; 16],
            vec![u64::MAX >> 1; 4],
            (0..64u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7) >> 1)
                .collect(),
            vec![1u64 << 62],
            vec![0, 0, 0, 1],
        ];
        for data in cases {
            let out = roundtrip(&data, 1 << 20, 0);
            assert_eq!(out, data);
        }
    }

    #[test]
    fn truncation_bounds_error_per_plane() {
        // With kmin = K all planes below K are dropped; reconstruction
        // must agree on every plane >= K.
        let data: Vec<u64> = (0..16u64).map(|i| (i * 0x1234_5678) ^ (i << 40)).collect();
        for kmin in [8u32, 16, 32, 48] {
            let out = roundtrip(&data, 1 << 20, kmin);
            for (a, b) in data.iter().zip(&out) {
                assert_eq!(a >> kmin, b >> kmin, "kmin={kmin}");
            }
        }
    }

    #[test]
    fn budget_is_respected_and_deterministic() {
        let data: Vec<u64> = (0..64u64).map(|i| 1u64 << (i % 60)).collect();
        for maxbits in [17u32, 64, 256, 512, 1024] {
            let mut w = BitWriter::new();
            let used = encode_ints(&mut w, maxbits, 0, &data);
            assert!(used <= maxbits);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            // Decoding with the same budget must not error even when the
            // stream was truncated by the budget.
            decode_ints(&mut r, maxbits, 0, data.len()).unwrap();
        }
    }

    #[test]
    fn zero_block_costs_one_bit_per_plane() {
        let data = vec![0u64; 16];
        let mut w = BitWriter::new();
        let used = encode_ints(&mut w, 4096, 0, &data);
        assert_eq!(used, 64); // one group-test bit per plane
    }

    #[test]
    fn higher_budget_never_increases_plane_error() {
        let data: Vec<u64> = (0..16u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 4)
            .collect();
        let mut prev_err: Option<u64> = None;
        for maxbits in [32u32, 64, 128, 256, 512, 1024, 2048] {
            let out = roundtrip(&data, maxbits, 0);
            let err: u64 = data
                .iter()
                .zip(&out)
                .map(|(a, b)| a.max(b) - a.min(b))
                .max()
                .unwrap();
            if let Some(p) = prev_err {
                assert!(err <= p, "error grew with budget {maxbits}: {err} > {p}");
            }
            prev_err = Some(err);
        }
    }
}
