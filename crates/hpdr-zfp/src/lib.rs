//! # hpdr-zfp — ZFP-X
//!
//! Portable fixed-rate block-transform compressor on the HPDR
//! abstractions (paper §IV-C, Algorithm 3). Every 4^d block is exponent
//! aligned, converted to fixed point, decorrelated with the
//! near-orthogonal lifting transform, reordered by sequency, converted to
//! negabinary and serialized with the embedded group-tested bit-plane
//! coder under a fixed per-block bit budget.
//!
//! Fix-accuracy mode is included as the extension the paper mentions;
//! fix-rate is the evaluated mode. Streams are adapter-independent.

// The block transform kernels write disjoint index sets of shared outputs through
// `hpdr_core::SharedSlice` (each site documents its disjointness
// argument) — part of the workspace's sanctioned `unsafe` island under
// `unsafe_code = "deny"`.
#![allow(unsafe_code)]

pub mod codec;
pub mod embedded;
pub mod negabinary;
pub mod transform;

pub use codec::{compress, decompress, ZfpConfig, ZfpMode};
pub mod reducer;
pub use reducer::ZfpReducer;
