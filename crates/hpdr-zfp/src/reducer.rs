//! [`Reducer`] implementation for ZFP-X.

use crate::codec::{compress, decompress, ZfpConfig};
use hpdr_core::{ArrayMeta, DType, DeviceAdapter, Float, HpdrError, KernelClass, Reducer, Result};

/// ZFP-X as a byte-level reduction pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ZfpReducer(pub ZfpConfig);

fn peek_dtype(stream: &[u8]) -> Result<DType> {
    let tag = *stream
        .get(5)
        .ok_or_else(|| HpdrError::corrupt("stream too short for header"))?;
    DType::from_tag(tag).ok_or_else(|| HpdrError::corrupt("unknown dtype tag"))
}

impl Reducer for ZfpReducer {
    fn name(&self) -> &'static str {
        "zfp-x"
    }

    fn kernel_class(&self) -> KernelClass {
        KernelClass::Zfp
    }

    fn is_lossless(&self) -> bool {
        false
    }

    fn compress(
        &self,
        adapter: &dyn DeviceAdapter,
        bytes: &[u8],
        meta: &ArrayMeta,
    ) -> Result<Vec<u8>> {
        if bytes.len() != meta.num_bytes() {
            return Err(HpdrError::invalid("byte length does not match metadata"));
        }
        match meta.dtype {
            DType::F32 => compress(adapter, &f32::bytes_to_vec(bytes), &meta.shape, &self.0),
            DType::F64 => compress(adapter, &f64::bytes_to_vec(bytes), &meta.shape, &self.0),
        }
    }

    fn decompress(
        &self,
        adapter: &dyn DeviceAdapter,
        stream: &[u8],
    ) -> Result<(Vec<u8>, ArrayMeta)> {
        match peek_dtype(stream)? {
            DType::F32 => {
                let (data, shape) = decompress::<f32>(adapter, stream)?;
                Ok((
                    f32::slice_to_bytes(&data),
                    ArrayMeta::new(DType::F32, shape),
                ))
            }
            DType::F64 => {
                let (data, shape) = decompress::<f64>(adapter, stream)?;
                Ok((
                    f64::slice_to_bytes(&data),
                    ArrayMeta::new(DType::F64, shape),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{SerialAdapter, Shape};

    #[test]
    fn byte_level_roundtrip_fixed_rate() {
        let adapter = SerialAdapter::new();
        let shape = Shape::new(&[8, 8, 8]);
        let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.02).cos()).collect();
        let meta = ArrayMeta::new(DType::F64, shape.clone());
        let r = ZfpReducer(ZfpConfig::fixed_rate(24));
        let stream = r
            .compress(&adapter, &f64::slice_to_bytes(&data), &meta)
            .unwrap();
        // Fixed rate 24 of 64 bits: ~2.7× smaller payload.
        assert!(stream.len() < data.len() * 8 / 2);
        let (bytes, meta2) = r.decompress(&adapter, &stream).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(bytes.len(), 512 * 8);
    }
}
