//! ZFP's near-orthogonal integer lifting transform over 4^d blocks
//! (paper §IV-C "customized near-orthogonal transformation").
//!
//! The forward lift averages/differences pairs with arithmetic shifts;
//! the inverse reconstructs up to one fixed-point ulp per lift (the
//! transform is *near*-orthogonal, not bit-reversible). Fixed-point
//! headroom below the float mantissa absorbs the roundoff.

/// Forward lift of one 4-vector at stride `s` starting at `p[0]`.
///
/// Arithmetic is wrapping: well-formed inputs never overflow (fixed-point
/// headroom), and corrupt-stream decoding must degrade to garbage values
/// rather than panic.
#[inline]
pub fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    // Pairwise average/difference ladder (zfp decorrelating transform).
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse lift of one 4-vector at stride `s`.
#[inline]
pub fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w = w.wrapping_shl(1);
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z = z.wrapping_shl(1);
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x = x.wrapping_shl(1);
    x = x.wrapping_sub(w);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Forward transform of a 4^d block (row-major, d = 1..=3).
///
/// Dispatches through [`hpdr_kernels::simd`] — the SIMD tiers run the
/// identical wrapping-integer ladder 4 vectors at a time (byte-identical
/// results); [`fwd_lift`] above stays as the per-vector reference.
pub fn fwd_transform(block: &mut [i64], d: usize) {
    (hpdr_kernels::kernels().zfp_fwd_transform)(block, d)
}

/// Inverse transform of a 4^d block (reverse axis order).
pub fn inv_transform(block: &mut [i64], d: usize) {
    (hpdr_kernels::kernels().zfp_inv_transform)(block, d)
}

/// Coefficient permutation ordering a 4^d block by total sequency
/// (low-frequency coefficients first), ties broken by index — the
/// serialization order used before bit-plane truncation.
pub fn sequency_order(d: usize) -> Vec<usize> {
    let n = 4usize.pow(d as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let degree = |i: usize| -> usize {
        let mut rem = i;
        let mut sum = 0;
        for _ in 0..d {
            sum += rem % 4;
            rem /= 4;
        }
        sum
    };
    idx.sort_by_key(|&i| (degree(i), i));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(vals: [i64; 4]) -> i64 {
        let mut p = vals.to_vec();
        fwd_lift(&mut p, 0, 1);
        inv_lift(&mut p, 0, 1);
        vals.iter()
            .zip(&p)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap()
    }

    #[test]
    fn lift_roundtrip_within_one_ulp_ladder() {
        // The pair ladder loses at most a couple of fixed-point units.
        for vals in [
            [0i64, 0, 0, 0],
            [100, 200, 300, 400],
            [-5, 7, -11, 13],
            [1 << 40, -(1 << 39), 12345, -6789],
            [i64::MAX >> 8, i64::MIN >> 8, 0, 1],
        ] {
            assert!(roundtrip_error(vals) <= 4, "vals {vals:?}");
        }
    }

    #[test]
    fn lift_exact_on_smooth_ramp() {
        let mut p = vec![0i64, 8, 16, 24];
        let orig = p.clone();
        fwd_lift(&mut p, 0, 1);
        inv_lift(&mut p, 0, 1);
        let err: i64 = orig
            .iter()
            .zip(&p)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap();
        assert!(err <= 2);
    }

    #[test]
    fn fwd_concentrates_energy_on_smooth_data() {
        // A linear ramp should decorrelate to (mean, slope-ish, ~0, ~0).
        let mut p: Vec<i64> = vec![1000, 2000, 3000, 4000];
        fwd_lift(&mut p, 0, 1);
        assert!(p[0].abs() > p[2].abs());
        assert!(p[0].abs() > p[3].abs());
        // The quadratic/cubic coefficients vanish on linear input.
        assert!(p[2].abs() <= 2 && p[3].abs() <= 2, "{p:?}");
    }

    #[test]
    fn transform_roundtrip_3d_bounded_error() {
        let mut block: Vec<i64> = (0..64)
            .map(|i| ((i as i64 * 977) % 4001 - 2000) << 20)
            .collect();
        let orig = block.clone();
        fwd_transform(&mut block, 3);
        inv_transform(&mut block, 3);
        let max_err = orig
            .iter()
            .zip(&block)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap();
        // Error stays within a few fixed-point units per lift pass.
        assert!(max_err <= 32, "max_err={max_err}");
    }

    #[test]
    fn transform_roundtrip_2d_and_1d() {
        for d in [1usize, 2] {
            let n = 4usize.pow(d as u32);
            let mut block: Vec<i64> = (0..n).map(|i| ((i as i64 * 31) % 97 - 48) << 24).collect();
            let orig = block.clone();
            fwd_transform(&mut block, d);
            inv_transform(&mut block, d);
            let max_err = orig
                .iter()
                .zip(&block)
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap();
            assert!(max_err <= 16, "d={d} max_err={max_err}");
        }
    }

    #[test]
    fn sequency_order_is_a_permutation() {
        for d in 1..=3usize {
            let n = 4usize.pow(d as u32);
            let perm = sequency_order(d);
            let mut seen = vec![false; n];
            for &p in &perm {
                assert!(!seen[p]);
                seen[p] = true;
            }
            assert!(seen.into_iter().all(|b| b));
            // DC coefficient first.
            assert_eq!(perm[0], 0);
            // Last coefficient is the all-high corner.
            assert_eq!(perm[n - 1], n - 1);
        }
    }
}
