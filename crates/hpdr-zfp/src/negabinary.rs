//! Two's-complement ↔ negabinary conversion.
//!
//! ZFP serializes transform coefficients in negabinary so that truncating
//! low bit planes rounds symmetrically around zero (no sign plane needed).

pub use hpdr_kernels::simd::{int_to_negabinary, negabinary_to_int};

/// Slice negabinary conversion through the SIMD dispatch table
/// (`dst[i] = negabinary(src[i])`; lengths must match).
#[inline]
pub fn int_to_negabinary_slice(src: &[i64], dst: &mut [u64]) {
    (hpdr_kernels::kernels().negabinary_fwd)(src, dst)
}

/// Slice inverse of [`int_to_negabinary_slice`].
#[inline]
pub fn negabinary_to_int_slice(src: &[u64], dst: &mut [i64]) {
    (hpdr_kernels::kernels().negabinary_inv)(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exhaustive_small() {
        for x in -1000i64..=1000 {
            assert_eq!(negabinary_to_int(int_to_negabinary(x)), x);
        }
    }

    #[test]
    fn roundtrip_extremes() {
        for x in [i64::MIN / 4, i64::MAX / 4, 0, 1, -1, 1 << 57, -(1 << 57)] {
            assert_eq!(negabinary_to_int(int_to_negabinary(x)), x);
        }
    }

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(int_to_negabinary(0), 0);
        assert_eq!(negabinary_to_int(0), 0);
    }

    #[test]
    fn small_magnitudes_use_low_bits() {
        // Negabinary of a small |x| has only low bits set, so truncating
        // high planes is lossless for small values.
        for x in -8i64..=8 {
            let u = int_to_negabinary(x);
            assert!(u < 64, "x={x} u={u:#x}");
        }
    }

    #[test]
    fn truncating_low_planes_bounds_error() {
        // Dropping the k lowest negabinary bits perturbs the value by
        // less than 2^(k+1) — the property fixed-rate truncation relies on.
        for &x in &[12345i64, -98765, 1 << 30, -(1 << 29) + 7] {
            for k in 0..16u32 {
                let u = int_to_negabinary(x) & !((1u64 << k) - 1);
                let y = negabinary_to_int(u);
                assert!((x - y).abs() < (1i64 << (k + 1)), "x={x} k={k} y={y}");
            }
        }
    }
}
