//! ZFP-X compressor (paper Algorithm 3 / Fig. 7).
//!
//! Pipeline per 4^d block, all stages on the Locality abstraction:
//! exponent alignment → fixed-point conversion → near-orthogonal lifting
//! transform → sequency reordering → negabinary → embedded bit-plane
//! serialization.
//!
//! Fix-rate mode (the mode the paper evaluates) emits a constant number of
//! bits per block, rounded up to whole bytes so blocks occupy disjoint
//! byte ranges and encode/decode need no cross-block coordination
//! (Alg. 3: "all blocks output the same size bit streams"). Fix-accuracy
//! mode is provided as the extension the paper mentions ("the other two
//! modes can be implemented similarly").

use crate::embedded::{decode_ints, encode_ints};
use crate::negabinary::{int_to_negabinary_slice, negabinary_to_int_slice};
use crate::transform::{fwd_transform, inv_transform, sequency_order};
use hpdr_core::{
    ByteReader, ByteWriter, DeviceAdapter, Float, HpdrError, KernelClass, Locality, Result, Shape,
    SharedSlice,
};
use hpdr_kernels::{BitReader, BitWriter, BlockGrid};

const MAGIC: u32 = 0x5A46_5058; // "ZFPX"
const VERSION: u8 = 1;
/// Fixed-point fractional bits (shared by f32/f64 paths; headroom for the
/// ≤ 2^3 transform gain keeps |coefficients| < 2^61).
const FRACBITS: i32 = 57;
/// Per-block header: 1 nonzero flag bit + 16 biased-exponent bits.
const HEADER_BITS: u32 = 17;
const EMAX_BIAS: i32 = 16384;
/// Fixed-rate blocks processed per Locality group: amortizes the gather
/// buffer and BitWriter/BitReader scratch over a batch while leaving
/// enough groups for the adapters' dynamic chunked scheduling.
const RATE_BATCH: usize = 64;

/// Compression mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// `bits_per_value` bits per element (paper's evaluated mode).
    FixedRate(u32),
    /// Absolute error tolerance (extension).
    FixedAccuracy(f64),
    /// Keep the `precision` most-significant bit planes of every block
    /// (extension — the third mode the paper lists).
    FixedPrecision(u32),
}

/// ZFP-X configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    pub mode: ZfpMode,
}

impl ZfpConfig {
    pub fn fixed_rate(bits_per_value: u32) -> ZfpConfig {
        ZfpConfig {
            mode: ZfpMode::FixedRate(bits_per_value),
        }
    }

    pub fn fixed_accuracy(tolerance: f64) -> ZfpConfig {
        ZfpConfig {
            mode: ZfpMode::FixedAccuracy(tolerance),
        }
    }

    pub fn fixed_precision(planes: u32) -> ZfpConfig {
        ZfpConfig {
            mode: ZfpMode::FixedPrecision(planes),
        }
    }

    pub fn config_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self.mode {
            ZfpMode::FixedRate(r) => {
                w.put_u8(0);
                w.put_u32(r);
            }
            ZfpMode::FixedAccuracy(t) => {
                w.put_u8(1);
                w.put_f64(t);
            }
            ZfpMode::FixedPrecision(p) => {
                w.put_u8(2);
                w.put_u32(p);
            }
        }
        w.into_vec()
    }
}

/// Fold shapes to ZFP's 1–3D block space: a 4D array is treated as a 3D
/// array with the two slowest dimensions merged.
fn effective_shape(shape: &Shape) -> Shape {
    let d = shape.dims();
    if d.len() == 4 {
        Shape::new(&[d[0] * d[1], d[2], d[3]])
    } else {
        shape.clone()
    }
}

struct BlockCtx {
    grid: BlockGrid,
    perm: Vec<usize>,
    d: usize,
    n: usize,
}

fn block_ctx(shape: &Shape) -> BlockCtx {
    let eff = effective_shape(shape);
    let d = eff.ndims();
    let block_dims = vec![4usize; d];
    let grid = BlockGrid::new(&eff, &block_dims);
    BlockCtx {
        perm: sequency_order(d),
        n: 4usize.pow(d as u32),
        grid,
        d,
    }
}

/// Per-group reusable block scratch: fixed-point coefficients, the
/// sequency-permuted copy, and the negabinary words. Every lane is
/// overwritten by each block, so reuse across a batch is exact.
struct BlockScratch {
    q: Vec<i64>,
    qp: Vec<i64>,
    nb: Vec<u64>,
}

impl BlockScratch {
    fn new(n: usize) -> BlockScratch {
        BlockScratch {
            q: vec![0; n],
            qp: vec![0; n],
            nb: vec![0; n],
        }
    }
}

/// Max |v| over a block via the width-specific SIMD kernel; NaN if any
/// lane is NaN, +inf if any lane is infinite.
fn block_amax<T: Float>(vals: &[T]) -> f64 {
    let k = hpdr_kernels::kernels();
    if let Some(v) = T::as_f32_slice(vals) {
        (k.zfp_amax_f32)(v)
    } else if let Some(v) = T::as_f64_slice(vals) {
        (k.zfp_amax_f64)(v)
    } else {
        let mut amax = 0.0f64;
        let mut nan = false;
        for &v in vals {
            let v = v.to_f64();
            nan |= v.is_nan();
            amax = amax.max(v.abs());
        }
        if nan {
            f64::NAN
        } else {
            amax
        }
    }
}

/// Fixed-point conversion `round_ties_even(v * scale)` via the
/// width-specific SIMD kernel. Caller guarantees |v·scale| < 2^62
/// (here |v·scale| < 2^FRACBITS by construction of `scale`).
fn block_fixedpoint<T: Float>(vals: &[T], scale: f64, out: &mut [i64]) {
    let k = hpdr_kernels::kernels();
    if let Some(v) = T::as_f32_slice(vals) {
        (k.zfp_fixedpoint_f32)(v, scale, out);
    } else if let Some(v) = T::as_f64_slice(vals) {
        (k.zfp_fixedpoint_f64)(v, scale, out);
    } else {
        for (qi, v) in out.iter_mut().zip(vals) {
            *qi = (v.to_f64() * scale).round_ties_even() as i64;
        }
    }
}

/// Encode one gathered block into `w`. Returns bits written.
fn encode_block<T: Float>(
    vals: &[T],
    ctx: &BlockCtx,
    maxbits: u32,
    kmin: u32,
    w: &mut BitWriter,
    s: &mut BlockScratch,
) -> Result<u32> {
    // Exponent alignment: emax over the block. The amax kernel doubles as
    // the finiteness check (NaN input → NaN amax, inf propagates).
    let amax = block_amax(vals);
    if !amax.is_finite() {
        return Err(HpdrError::invalid("non-finite value in ZFP input"));
    }
    if amax == 0.0 {
        w.write_bit(false);
        return Ok(1);
    }
    w.write_bit(true);
    let emax = amax.exponent();
    w.write_bits((emax + EMAX_BIAS) as u64, 16);
    // Fixed-point conversion.
    let scale = 2f64.powi(FRACBITS - emax);
    block_fixedpoint(vals, scale, &mut s.q);
    // Near-orthogonal transform.
    fwd_transform(&mut s.q, ctx.d);
    // Sequency reorder + negabinary (slice kernel over the gathered copy).
    for (slot, &i) in ctx.perm.iter().enumerate() {
        s.qp[slot] = s.q[i];
    }
    int_to_negabinary_slice(&s.qp, &mut s.nb);
    // Embedded bit-plane serialization.
    let used = encode_ints(w, maxbits, kmin, &s.nb);
    Ok(HEADER_BITS + used)
}

/// Decode one block (inverse of [`encode_block`]) into `out`.
fn decode_block<T: Float>(
    r: &mut BitReader<'_>,
    ctx: &BlockCtx,
    maxbits: u32,
    kmin: u32,
    out: &mut [T],
    s: &mut BlockScratch,
) -> Result<()> {
    if !r.read_bit()? {
        out.fill(T::ZERO);
        return Ok(());
    }
    let emax = r.read_bits(16)? as i32 - EMAX_BIAS;
    if !(-4000..=4000).contains(&emax) {
        return Err(HpdrError::corrupt(format!(
            "implausible block exponent {emax}"
        )));
    }
    let nb = decode_ints(r, maxbits, kmin, ctx.n)?;
    negabinary_to_int_slice(&nb, &mut s.qp);
    for (slot, &src) in ctx.perm.iter().enumerate() {
        s.q[src] = s.qp[slot];
    }
    inv_transform(&mut s.q, ctx.d);
    let scale = 2f64.powi(emax - FRACBITS);
    for (o, &v) in out.iter_mut().zip(&s.q) {
        *o = T::from_f64(v as f64 * scale);
    }
    Ok(())
}

/// Derive the embedded-coder `kmin` for a tolerance (fix-accuracy mode):
/// planes whose fixed-point weight (including transform gain) is below the
/// tolerance are dropped.
fn kmin_for_tolerance(tol: f64, emax: i32, d: usize) -> u32 {
    if tol <= 0.0 {
        return 0;
    }
    // Plane k carries weight 2^(k - FRACBITS + emax); keep a guard of
    // d + 3 planes for transform gain and accumulation.
    let min_plane = (tol.log2().floor() as i32) - emax + FRACBITS - (d as i32 + 3);
    min_plane.clamp(0, 63) as u32
}

/// Compress `data` of `shape` with ZFP-X.
pub fn compress<T: Float>(
    adapter: &dyn DeviceAdapter,
    data: &[T],
    shape: &Shape,
    cfg: &ZfpConfig,
) -> Result<Vec<u8>> {
    if data.len() != shape.num_elements() {
        return Err(HpdrError::invalid(format!(
            "data length {} does not match shape {shape}",
            data.len()
        )));
    }
    let ctx = block_ctx(shape);
    let blocks = ctx.grid.num_blocks();
    let input_bytes = (data.len() * T::BYTES) as u64;

    let mut w = ByteWriter::with_capacity(64 + data.len());
    w.put_u32(MAGIC);
    w.put_u8(VERSION);
    w.put_u8(T::DTYPE.tag());
    w.put_u8(shape.ndims() as u8);
    for &dim in shape.dims() {
        w.put_u64(dim as u64);
    }

    match cfg.mode {
        ZfpMode::FixedRate(rate) => {
            let block_bits = rate
                .checked_mul(ctx.n as u32)
                .ok_or_else(|| HpdrError::invalid("rate overflow"))?;
            if block_bits < HEADER_BITS + 1 || rate > 64 {
                return Err(HpdrError::invalid(format!(
                    "fixed rate {rate} bits/value out of range for {}D blocks",
                    ctx.d
                )));
            }
            let block_bytes = (block_bits as usize).div_ceil(8);
            let maxbits = block_bits - HEADER_BITS;
            w.put_u8(0);
            w.put_u32(rate);
            w.put_u64(blocks as u64);
            w.put_u32(block_bytes as u32);

            // Batch RATE_BATCH blocks per Locality group so the gather
            // buffer and BitWriter allocate once per group and are reused
            // across blocks (`gather` overwrites every lane and `clear`
            // keeps the writer's buffer) — the emitted bytes are identical
            // to the one-allocation-per-block formulation.
            let groups = blocks.div_ceil(RATE_BATCH);
            let mut payload = vec![0u8; blocks * block_bytes];
            let errors = std::sync::Mutex::new(Vec::new());
            {
                let payload_sh = SharedSlice::new(&mut payload);
                Locality::new(groups)
                    .with_staging(ctx.n * T::BYTES)
                    .run(adapter, &|g, _| {
                        let b0 = g * RATE_BATCH;
                        let b1 = (b0 + RATE_BATCH).min(blocks);
                        let mut vals = vec![T::ZERO; ctx.n];
                        let mut bw = BitWriter::with_bit_capacity(block_bits as usize);
                        let mut scratch = BlockScratch::new(ctx.n);
                        for b in b0..b1 {
                            ctx.grid.gather(data, b, &mut vals);
                            bw.clear();
                            match encode_block(&vals, &ctx, maxbits, 0, &mut bw, &mut scratch) {
                                Ok(_) => {
                                    // Safety: block b owns its byte range.
                                    let dst = unsafe {
                                        payload_sh.slice_mut(b * block_bytes, block_bytes)
                                    };
                                    bw.copy_bytes_to(dst);
                                }
                                Err(e) => {
                                    errors.lock().unwrap().push(e);
                                    return;
                                }
                            }
                        }
                    });
            }
            if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
                return Err(e);
            }
            w.put_block(&payload);
        }
        ZfpMode::FixedAccuracy(tol) => {
            if tol <= 0.0 || !tol.is_finite() {
                return Err(HpdrError::invalid("tolerance must be positive and finite"));
            }
            w.put_u8(1);
            w.put_f64(tol);
            w.put_u64(blocks as u64);
            // Per-block encode into private buffers, then concatenate.
            let mut encoded: Vec<Vec<u8>> = vec![Vec::new(); blocks];
            let errors = std::sync::Mutex::new(Vec::new());
            {
                let enc_sh = SharedSlice::new(&mut encoded);
                Locality::new(blocks).run(adapter, &|b, _| {
                    let mut vals = vec![T::ZERO; ctx.n];
                    ctx.grid.gather(data, b, &mut vals);
                    let amax = block_amax(&vals);
                    let emax = if amax > 0.0 && amax.is_finite() {
                        amax.exponent()
                    } else {
                        0
                    };
                    let kmin = kmin_for_tolerance(tol, emax, ctx.d);
                    let mut bw = BitWriter::new();
                    let mut scratch = BlockScratch::new(ctx.n);
                    match encode_block(&vals, &ctx, 1 << 24, kmin, &mut bw, &mut scratch) {
                        Ok(_) => {
                            // Safety: block b owns slot b.
                            let slot = unsafe { enc_sh.slice_mut(b, 1) };
                            slot[0] = bw.into_bytes();
                        }
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                });
            }
            if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
                return Err(e);
            }
            for e in &encoded {
                w.put_u32(e.len() as u32);
            }
            let payload: Vec<u8> = encoded.concat();
            w.put_block(&payload);
        }
        ZfpMode::FixedPrecision(planes) => {
            if planes == 0 || planes > 64 {
                return Err(HpdrError::invalid("precision must be in 1..=64"));
            }
            w.put_u8(2);
            w.put_u32(planes);
            w.put_u64(blocks as u64);
            let kmin = 64 - planes;
            let mut encoded: Vec<Vec<u8>> = vec![Vec::new(); blocks];
            let errors = std::sync::Mutex::new(Vec::new());
            {
                let enc_sh = SharedSlice::new(&mut encoded);
                Locality::new(blocks).run(adapter, &|b, _| {
                    let mut vals = vec![T::ZERO; ctx.n];
                    ctx.grid.gather(data, b, &mut vals);
                    let mut bw = BitWriter::new();
                    let mut scratch = BlockScratch::new(ctx.n);
                    match encode_block(&vals, &ctx, 1 << 24, kmin, &mut bw, &mut scratch) {
                        Ok(_) => {
                            // Safety: block b owns slot b.
                            let slot = unsafe { enc_sh.slice_mut(b, 1) };
                            slot[0] = bw.into_bytes();
                        }
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                });
            }
            if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
                return Err(e);
            }
            for e in &encoded {
                w.put_u32(e.len() as u32);
            }
            let payload: Vec<u8> = encoded.concat();
            w.put_block(&payload);
        }
    }
    adapter.charge(KernelClass::Zfp, input_bytes);
    Ok(w.into_vec())
}

/// Decompress a ZFP-X stream. Returns the data and its shape.
pub fn decompress<T: Float>(adapter: &dyn DeviceAdapter, bytes: &[u8]) -> Result<(Vec<T>, Shape)> {
    let mut r = ByteReader::new(bytes);
    if r.get_u32()? != MAGIC {
        return Err(HpdrError::corrupt("bad ZFP-X magic"));
    }
    if r.get_u8()? != VERSION {
        return Err(HpdrError::corrupt("unsupported ZFP-X version"));
    }
    let dtype = r.get_u8()?;
    if dtype != T::DTYPE.tag() {
        return Err(HpdrError::invalid("dtype mismatch in ZFP-X stream"));
    }
    let nd = r.get_u8()? as usize;
    if !(1..=4).contains(&nd) {
        return Err(HpdrError::corrupt("bad rank in ZFP-X stream"));
    }
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        let d = r.get_u64()? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(HpdrError::corrupt("implausible dimension"));
        }
        dims.push(d);
    }
    let shape = Shape::try_new(&dims)?;
    let ctx = block_ctx(&shape);
    let mode = r.get_u8()?;
    let n_elems = shape.num_elements();
    let mut out = vec![T::ZERO; n_elems];
    let errors = std::sync::Mutex::new(Vec::new());
    match mode {
        0 => {
            let rate = r.get_u32()?;
            let blocks = r.get_u64()? as usize;
            let block_bytes = r.get_u32()? as usize;
            if blocks != ctx.grid.num_blocks() {
                return Err(HpdrError::corrupt("block count mismatch"));
            }
            let expected_bytes = (rate as usize * ctx.n).div_ceil(8);
            if block_bytes != expected_bytes
                || rate > 64
                || rate as usize * ctx.n < (HEADER_BITS + 1) as usize
            {
                return Err(HpdrError::corrupt("inconsistent fixed-rate parameters"));
            }
            let payload = r.get_block()?;
            r.expect_exhausted()?;
            if payload.len() != blocks * block_bytes {
                return Err(HpdrError::corrupt("payload size mismatch"));
            }
            let maxbits = rate * ctx.n as u32 - HEADER_BITS;
            let groups = blocks.div_ceil(RATE_BATCH);
            {
                let out_sh = SharedSlice::new(&mut out);
                Locality::new(groups).run(adapter, &|g, _| {
                    let b0 = g * RATE_BATCH;
                    let b1 = (b0 + RATE_BATCH).min(blocks);
                    // One decode buffer per group; `decode_block` fills
                    // every lane, so reuse across blocks is exact.
                    let mut vals = vec![T::ZERO; ctx.n];
                    let mut scratch = BlockScratch::new(ctx.n);
                    for b in b0..b1 {
                        let region = &payload[b * block_bytes..(b + 1) * block_bytes];
                        let mut br = BitReader::new(region);
                        match decode_block(&mut br, &ctx, maxbits, 0, &mut vals, &mut scratch) {
                            Ok(()) => scatter_shared(&ctx.grid, &out_sh, b, &vals),
                            Err(e) => {
                                errors.lock().unwrap().push(e);
                                return;
                            }
                        }
                    }
                });
            }
        }
        1 => {
            let tol = r.get_f64()?;
            let blocks = r.get_u64()? as usize;
            if blocks != ctx.grid.num_blocks() {
                return Err(HpdrError::corrupt("block count mismatch"));
            }
            let mut sizes = Vec::with_capacity(blocks);
            for _ in 0..blocks {
                sizes.push(r.get_u32()? as usize);
            }
            let payload = r.get_block()?;
            r.expect_exhausted()?;
            let offsets: Vec<usize> = sizes
                .iter()
                .scan(0usize, |acc, &s| {
                    let o = *acc;
                    *acc += s;
                    Some(o)
                })
                .collect();
            let total: usize = sizes.iter().sum();
            if total != payload.len() {
                return Err(HpdrError::corrupt("payload size mismatch"));
            }
            {
                let out_sh = SharedSlice::new(&mut out);
                Locality::new(blocks).run(adapter, &|b, _| {
                    let region = &payload[offsets[b]..offsets[b] + sizes[b]];
                    let mut br = BitReader::new(region);
                    let mut vals = vec![T::ZERO; ctx.n];
                    // Recover kmin from the block's own header exponent.
                    let res = (|| -> Result<()> {
                        let mut peek = br.clone();
                        if !peek.read_bit()? {
                            vals.fill(T::ZERO);
                            br.read_bit()?;
                            return Ok(());
                        }
                        let emax = peek.read_bits(16)? as i32 - EMAX_BIAS;
                        let kmin = kmin_for_tolerance(tol, emax, ctx.d);
                        let mut scratch = BlockScratch::new(ctx.n);
                        decode_block(&mut br, &ctx, 1 << 24, kmin, &mut vals, &mut scratch)
                    })();
                    match res {
                        Ok(()) => scatter_shared(&ctx.grid, &out_sh, b, &vals),
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                });
            }
        }
        2 => {
            let planes = r.get_u32()?;
            if planes == 0 || planes > 64 {
                return Err(HpdrError::corrupt("bad precision"));
            }
            let kmin = 64 - planes;
            let blocks = r.get_u64()? as usize;
            if blocks != ctx.grid.num_blocks() {
                return Err(HpdrError::corrupt("block count mismatch"));
            }
            let mut sizes = Vec::with_capacity(blocks);
            for _ in 0..blocks {
                sizes.push(r.get_u32()? as usize);
            }
            let payload = r.get_block()?;
            r.expect_exhausted()?;
            let offsets: Vec<usize> = sizes
                .iter()
                .scan(0usize, |acc, &s| {
                    let o = *acc;
                    *acc += s;
                    Some(o)
                })
                .collect();
            let total: usize = sizes.iter().sum();
            if total != payload.len() {
                return Err(HpdrError::corrupt("payload size mismatch"));
            }
            {
                let out_sh = SharedSlice::new(&mut out);
                Locality::new(blocks).run(adapter, &|b, _| {
                    let region = &payload[offsets[b]..offsets[b] + sizes[b]];
                    let mut br = BitReader::new(region);
                    let mut vals = vec![T::ZERO; ctx.n];
                    let mut scratch = BlockScratch::new(ctx.n);
                    match decode_block(&mut br, &ctx, 1 << 24, kmin, &mut vals, &mut scratch) {
                        Ok(()) => scatter_shared(&ctx.grid, &out_sh, b, &vals),
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                });
            }
        }
        _ => return Err(HpdrError::corrupt("unknown ZFP-X mode")),
    }
    if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
        return Err(e);
    }
    adapter.charge(KernelClass::Zfp, (n_elems * T::BYTES) as u64);
    Ok((out, shape))
}

/// Scatter a decoded block into the shared output, skipping padded lanes.
/// Blocks tile the domain disjointly, so writes never collide.
fn scatter_shared<T: Float>(grid: &BlockGrid, out: &SharedSlice<'_, T>, b: usize, vals: &[T]) {
    let origin = grid.origin(b);
    let dims = grid.shape().dims();
    let strides = grid.shape().strides();
    let nd = dims.len();
    let bd = grid.block_dims();
    let mut local = vec![0usize; nd];
    'slot: for (slot, &v) in vals.iter().enumerate() {
        let mut rem = slot;
        for k in (0..nd).rev() {
            local[k] = rem % bd[k];
            rem /= bd[k];
        }
        let mut flat = 0usize;
        for k in 0..nd {
            let idx = origin[k] + local[k];
            if idx >= dims[k] {
                continue 'slot;
            }
            flat += idx * strides[k];
        }
        // Safety: disjoint tiling of the domain by blocks.
        unsafe { out.write(flat, v) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_core::{CpuParallelAdapter, SerialAdapter};

    fn smooth_3d(n: usize) -> (Vec<f32>, Shape) {
        let shape = Shape::new(&[n, n, n]);
        let mut data = Vec::with_capacity(shape.num_elements());
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (x, y, z) = (
                        i as f32 / n as f32,
                        j as f32 / n as f32,
                        k as f32 / n as f32,
                    );
                    data.push((6.0 * x).sin() * (4.0 * y).cos() + 0.5 * z);
                }
            }
        }
        (data, shape)
    }

    /// Stage-level profile of the fixed-rate encode hot path at 32³.
    /// Run with:
    ///   cargo test --release -p hpdr-zfp --lib -- --ignored profile --nocapture
    /// (and again under HPDR_FORCE_SCALAR=1 to see the per-stage SIMD
    /// effect). Not a correctness test — it only prints timings.
    #[test]
    #[ignore = "profiling harness, run manually with --nocapture"]
    fn profile_fixed_rate_stages_32cube() {
        use std::time::Instant;
        let (data, shape) = smooth_3d(32);
        let ctx = block_ctx(&shape);
        let blocks = ctx.grid.num_blocks();
        let rate = 16u32;
        let maxbits = rate * ctx.n as u32 - HEADER_BITS;
        let reps = 200usize;

        let best = |label: &str, f: &mut dyn FnMut()| {
            let mut min = std::time::Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                f();
                min = min.min(t0.elapsed());
            }
            println!(
                "{label:>18}: {:>9.1} us  ({:.1} ns/block)",
                min.as_secs_f64() * 1e6,
                min.as_secs_f64() * 1e9 / blocks as f64
            );
            min
        };

        // Pre-gather every block so later stages can be timed in isolation.
        let mut gathered = vec![0f32; blocks * ctx.n];
        for b in 0..blocks {
            ctx.grid
                .gather(&data, b, &mut gathered[b * ctx.n..(b + 1) * ctx.n]);
        }
        let mut vals = vec![0f32; ctx.n];
        best("gather", &mut || {
            for b in 0..blocks {
                ctx.grid.gather(&data, b, &mut vals);
                std::hint::black_box(&vals);
            }
        });
        // Fixed-point conversion (amax scan + scale + round).
        let mut s = BlockScratch::new(ctx.n);
        best("amax+fixedpoint", &mut || {
            for b in 0..blocks {
                let vals = &gathered[b * ctx.n..(b + 1) * ctx.n];
                let amax = block_amax(vals);
                let emax = if amax > 0.0 { amax.exponent() } else { 0 };
                let scale = 2f64.powi(FRACBITS - emax);
                block_fixedpoint(vals, scale, &mut s.q);
                std::hint::black_box(&s.q);
            }
        });
        // Pre-compute per-block fixed-point inputs for the transform stage.
        let mut qs = vec![0i64; blocks * ctx.n];
        for b in 0..blocks {
            let vals = &gathered[b * ctx.n..(b + 1) * ctx.n];
            let amax = block_amax(vals);
            let emax = if amax > 0.0 { amax.exponent() } else { 0 };
            let scale = 2f64.powi(FRACBITS - emax);
            block_fixedpoint(vals, scale, &mut qs[b * ctx.n..(b + 1) * ctx.n]);
        }
        best("fwd_transform", &mut || {
            for b in 0..blocks {
                s.q.copy_from_slice(&qs[b * ctx.n..(b + 1) * ctx.n]);
                fwd_transform(&mut s.q, ctx.d);
                std::hint::black_box(&s.q);
            }
        });
        // Transformed blocks for the reorder/negabinary stage.
        let mut ts = qs.clone();
        for b in 0..blocks {
            fwd_transform(&mut ts[b * ctx.n..(b + 1) * ctx.n], ctx.d);
        }
        best("perm+negabinary", &mut || {
            for b in 0..blocks {
                let q = &ts[b * ctx.n..(b + 1) * ctx.n];
                for (slot, &i) in ctx.perm.iter().enumerate() {
                    s.qp[slot] = q[i];
                }
                int_to_negabinary_slice(&s.qp, &mut s.nb);
                std::hint::black_box(&s.nb);
            }
        });
        // Negabinary words for the embedded coder stage.
        let mut nbs = vec![0u64; blocks * ctx.n];
        for b in 0..blocks {
            let q = &ts[b * ctx.n..(b + 1) * ctx.n];
            for (slot, &i) in ctx.perm.iter().enumerate() {
                s.qp[slot] = q[i];
            }
            int_to_negabinary_slice(&s.qp, &mut nbs[b * ctx.n..(b + 1) * ctx.n]);
        }
        let mut bw = BitWriter::with_bit_capacity((rate as usize) * ctx.n);
        best("encode_ints", &mut || {
            for b in 0..blocks {
                bw.clear();
                bw.write_bits(0x1_2345, HEADER_BITS);
                encode_ints(&mut bw, maxbits, 0, &nbs[b * ctx.n..(b + 1) * ctx.n]);
                std::hint::black_box(&bw);
            }
        });
        let cfg = ZfpConfig::fixed_rate(rate);
        let a = SerialAdapter::new();
        best("full compress", &mut || {
            std::hint::black_box(compress(&a, &data, &shape, &cfg).unwrap());
        });
        // Byte-level path the bench actually times (adds bytes_to_vec +
        // container assembly on top of `compress`).
        let bytes = f32::slice_to_bytes(&data);
        best("bytes_to_vec", &mut || {
            std::hint::black_box(f32::bytes_to_vec(&bytes));
        });
        let meta = hpdr_core::ArrayMeta::new(hpdr_core::DType::F32, shape.clone());
        let red = crate::reducer::ZfpReducer(cfg);
        use hpdr_core::Reducer as _;
        best("reducer bytes", &mut || {
            std::hint::black_box(red.compress(&a, &bytes, &meta).unwrap());
        });
    }

    #[test]
    fn fixed_rate_size_is_exact() {
        let a = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_3d(16);
        for rate in [4u32, 8, 16] {
            let c = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(rate)).unwrap();
            let blocks = (16 / 4usize).pow(3);
            let block_bytes = (rate as usize * 64).div_ceil(8);
            // Header + exact payload.
            assert!(c.len() >= blocks * block_bytes);
            assert!(c.len() < blocks * block_bytes + 128);
            let (out, s) = decompress::<f32>(&a, &c).unwrap();
            assert_eq!(s, shape);
            assert_eq!(out.len(), data.len());
        }
    }

    #[test]
    fn high_rate_roundtrip_is_tight() {
        let a = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_3d(12);
        let c = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(32)).unwrap();
        let (out, _) = decompress::<f32>(&a, &c).unwrap();
        let max_err = data
            .iter()
            .zip(&out)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        // 32 bits/value on f32 data: error at the fixed-point noise floor.
        assert!(max_err < 1e-5, "max_err={max_err}");
    }

    #[test]
    fn error_decreases_with_rate() {
        let a = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_3d(16);
        let mut last = f64::INFINITY;
        for rate in [2u32, 4, 8, 16, 28] {
            let c = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(rate)).unwrap();
            let (out, _) = decompress::<f32>(&a, &c).unwrap();
            let err = data
                .iter()
                .zip(&out)
                .map(|(x, y)| (x - y).abs() as f64)
                .fold(0.0, f64::max);
            assert!(err <= last * 1.5, "rate {rate}: {err} vs {last}");
            last = err.min(last);
        }
        assert!(last < 1e-3);
    }

    #[test]
    fn fixed_accuracy_honours_tolerance() {
        let a = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_3d(16);
        for tol in [1e-1f64, 1e-3, 1e-5] {
            let c = compress(&a, &data, &shape, &ZfpConfig::fixed_accuracy(tol)).unwrap();
            let (out, _) = decompress::<f32>(&a, &c).unwrap();
            let err = data
                .iter()
                .zip(&out)
                .map(|(x, y)| (x - y).abs() as f64)
                .fold(0.0, f64::max);
            assert!(err <= tol, "tol {tol}: err {err}");
        }
    }

    #[test]
    fn fixed_precision_mode_roundtrips_and_orders_error() {
        let a = CpuParallelAdapter::new(4);
        let (data, shape) = smooth_3d(12);
        let mut last = f64::INFINITY;
        for planes in [8u32, 16, 32, 60] {
            let c = compress(&a, &data, &shape, &ZfpConfig::fixed_precision(planes)).unwrap();
            let (out, s) = decompress::<f32>(&a, &c).unwrap();
            assert_eq!(s, shape);
            let err = data
                .iter()
                .zip(&out)
                .map(|(x, y)| (x - y).abs() as f64)
                .fold(0.0, f64::max);
            assert!(err <= last + 1e-12, "planes {planes}: {err} > {last}");
            last = err;
        }
        // 60 planes on f32 data: effectively exact.
        assert!(last < 1e-6, "err {last}");
        // Bad precision values rejected.
        assert!(compress(&a, &data, &shape, &ZfpConfig::fixed_precision(0)).is_err());
        assert!(compress(&a, &data, &shape, &ZfpConfig::fixed_precision(65)).is_err());
    }

    #[test]
    fn f64_roundtrip_1d_2d() {
        let a = SerialAdapter::new();
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin() * 1e6).collect();
        let shape = Shape::new(&[100]);
        let c = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(40)).unwrap();
        let (out, _) = decompress::<f64>(&a, &c).unwrap();
        let err = data
            .iter()
            .zip(&out)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-4, "err {err}");

        let data2: Vec<f64> = (0..30 * 20).map(|i| (i % 30) as f64).collect();
        let shape2 = Shape::new(&[30, 20]);
        let c2 = compress(&a, &data2, &shape2, &ZfpConfig::fixed_rate(24)).unwrap();
        let (out2, s2) = decompress::<f64>(&a, &c2).unwrap();
        assert_eq!(s2, shape2);
        assert_eq!(out2.len(), data2.len());
    }

    #[test]
    fn four_d_arrays_are_folded() {
        let a = SerialAdapter::new();
        let shape = Shape::new(&[3, 5, 8, 6]);
        let data: Vec<f32> = (0..shape.num_elements())
            .map(|i| (i as f32).sqrt())
            .collect();
        let c = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(24)).unwrap();
        let (out, s) = decompress::<f32>(&a, &c).unwrap();
        assert_eq!(s, shape);
        assert_eq!(out.len(), data.len());
    }

    #[test]
    fn zero_data_compresses_and_restores() {
        let a = SerialAdapter::new();
        let data = vec![0.0f32; 64];
        let shape = Shape::new(&[4, 4, 4]);
        let c = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(8)).unwrap();
        let (out, _) = decompress::<f32>(&a, &c).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn adapter_independence() {
        let (data, shape) = smooth_3d(8);
        let cfg = ZfpConfig::fixed_rate(12);
        let s = compress(&SerialAdapter::new(), &data, &shape, &cfg).unwrap();
        let p = compress(&CpuParallelAdapter::new(8), &data, &shape, &cfg).unwrap();
        assert_eq!(s, p, "compressed stream must not depend on the adapter");
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = SerialAdapter::new();
        let shape = Shape::new(&[4, 4]);
        // Length mismatch.
        assert!(compress(&a, &[0.0f32; 5], &shape, &ZfpConfig::fixed_rate(8)).is_err());
        // NaN.
        let mut data = vec![0.0f32; 16];
        data[3] = f32::NAN;
        assert!(compress(&a, &data, &shape, &ZfpConfig::fixed_rate(8)).is_err());
        // Rate too small to hold the header (1 bit/value on 1D block = 4 bits).
        let d1 = vec![1.0f32; 8];
        assert!(compress(&a, &d1, &Shape::new(&[8]), &ZfpConfig::fixed_rate(1)).is_err());
        // Bad tolerance.
        assert!(compress(&a, &[1.0f32; 16], &shape, &ZfpConfig::fixed_accuracy(0.0)).is_err());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let a = SerialAdapter::new();
        let (data, shape) = smooth_3d(8);
        let good = compress(&a, &data, &shape, &ZfpConfig::fixed_rate(16)).unwrap();
        for cut in [0, 3, 9, 17, good.len() / 2, good.len() - 1] {
            assert!(decompress::<f32>(&a, &good[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = good.clone();
        bad[1] ^= 0x40;
        assert!(decompress::<f32>(&a, &bad).is_err());
        // dtype mismatch
        assert!(decompress::<f64>(&a, &good).is_err());
    }
}
