// Shim crate: integration tests live in /tests at the workspace root.
