//! Shared JSON report envelope for the verification/audit CLIs.
//!
//! `hpdr verify` and `hpdr audit` emit sibling report documents
//! (`hpdr-verify/v1`, `hpdr-audit/v1`). Both wrap their payload in the
//! same envelope so downstream tooling can dispatch on one header shape:
//!
//! ```json
//! {"schema":"<family>/v1","ok":<bool>, ...payload fields...}
//! ```
//!
//! and both use the same process exit discipline: exit code 0 when the
//! run is clean, [`EXIT_FINDINGS`] when the tool ran to completion but
//! found problems (hazards, lint findings, unsound effect declarations,
//! interleaving violations). Internal errors surface through the normal
//! error path and share the same non-zero code — callers distinguish
//! the cases by whether a report document was produced.

/// Schema tag of `hpdr verify --json` documents.
pub const SCHEMA_VERIFY: &str = "hpdr-verify/v1";

/// Schema tag of `hpdr audit --json` documents.
pub const SCHEMA_AUDIT: &str = "hpdr-audit/v1";

/// Unified exit code for "the tool ran and produced findings", shared
/// by `hpdr verify` and `hpdr audit`.
pub const EXIT_FINDINGS: i32 = 1;

/// JSON string escape (the workspace emits handwritten JSON; no serde).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Wrap pre-rendered payload fields (`"key":value,...` without the outer
/// braces) in the shared envelope. An empty payload is allowed.
pub fn wrap(schema: &str, ok: bool, payload: &str) -> String {
    if payload.is_empty() {
        format!("{{\"schema\":\"{}\",\"ok\":{ok}}}", esc(schema))
    } else {
        format!("{{\"schema\":\"{}\",\"ok\":{ok},{payload}}}", esc(schema))
    }
}

/// Cheap envelope-header check without a full parse: does the document
/// start with the expected schema tag? Returns the `ok` flag.
///
/// Full schema validation lives with each report type; this helper is
/// for dispatchers that only need to route a document.
pub fn read_header(json: &str, schema: &str) -> Result<bool, String> {
    let want = format!("{{\"schema\":\"{}\",\"ok\":", esc(schema));
    let rest = json
        .strip_prefix(&want)
        .ok_or_else(|| format!("document does not open with the {schema} envelope"))?;
    if rest.starts_with("true") {
        Ok(true)
    } else if rest.starts_with("false") {
        Ok(false)
    } else {
        Err("envelope 'ok' field is not a boolean".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_and_read_roundtrip() {
        let doc = wrap(SCHEMA_AUDIT, false, "\"configs\":[]");
        assert_eq!(
            doc,
            "{\"schema\":\"hpdr-audit/v1\",\"ok\":false,\"configs\":[]}"
        );
        assert_eq!(read_header(&doc, SCHEMA_AUDIT), Ok(false));
        assert!(read_header(&doc, SCHEMA_VERIFY).is_err());
    }

    #[test]
    fn wrap_empty_payload() {
        let doc = wrap(SCHEMA_VERIFY, true, "");
        assert_eq!(doc, "{\"schema\":\"hpdr-verify/v1\",\"ok\":true}");
        assert_eq!(read_header(&doc, SCHEMA_VERIFY), Ok(true));
    }

    #[test]
    fn esc_covers_report_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
