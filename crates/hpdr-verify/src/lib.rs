//! # hpdr-verify — schedule linting over the op-DAG
//!
//! [`hpdr_sim::verify`] proves the *generic* safety properties of a
//! submitted DAG (no races, no use-after-free, no deadlock). This crate
//! layers the *HPDR-specific* schedule lints on top: each lint checks
//! that a pipeline DAG actually realizes one of the paper's Fig. 9
//! optimizations it claims to be running with.
//!
//! * [`TWO_BUFFER_LIVENESS`] — with `two_buffers` on, at most two buffer
//!   sets may be live per device, which holds iff every `H2D[k]` is
//!   ordered after the drain (`S[k-2]` / `D2Hout[k-2]`) of the set it
//!   reuses — the dotted anti-dependency arrows of Fig. 9.
//! * [`DESER_FIRST_ORDER`] — with the red-arrow launch-order swap on,
//!   `Deser[k]` must be *submitted* before `D2Hout[k-1]`: both occupy the
//!   D2H engine, and engines execute in submission order, so submission
//!   order is the optimization.
//! * [`CMM_NO_PERCALL_ALLOC`] — with the Context Memory Model on, the
//!   steady-state DAG must contain no runtime allocator ops at all
//!   (per-call alloc/free traffic is exactly what the CMM removes,
//!   paper §IV).
//!
//! [`check`] bundles the hazard analysis and the lints into one
//! [`ScheduleReport`] with human-readable and JSON renderings — the
//! engine behind `hpdr verify`.

pub mod envelope;

use hpdr_sim::verify::{analyze, Dag, OpKind, Reachability, VerifyReport};

/// Which pipeline direction a DAG implements (lints differ per side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Compress,
    Decompress,
}

/// The schedule options the DAG claims to realize. Mirrors the pipeline's
/// `PipelineOptions` without depending on it (this crate sits below the
/// pipeline in the dependency order).
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    pub direction: Direction,
    pub two_buffers: bool,
    pub cmm: bool,
    pub deser_first: bool,
    /// Fully serialized single-queue mode (the comparators' behaviour):
    /// buffer-reuse lints don't apply, program order covers everything.
    pub serial_queue: bool,
}

/// Lint names (stable identifiers for reports and tests).
pub const TWO_BUFFER_LIVENESS: &str = "two-buffer-liveness";
pub const DESER_FIRST_ORDER: &str = "deser-first-order";
pub const CMM_NO_PERCALL_ALLOC: &str = "cmm-no-percall-alloc";

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    pub lint: &'static str,
    pub message: String,
}

/// Parse `prefix[k]`-style op labels (e.g. `H2D[7]` with prefix `H2D`).
fn chunk_index(label: &str, prefix: &str) -> Option<usize> {
    let rest = label.strip_prefix(prefix)?;
    rest.strip_prefix('[')?.strip_suffix(']')?.parse().ok()
}

/// Per-device map from chunk number to op index for one label family.
fn index_by_chunk(
    dag: &Dag,
    prefix: &str,
) -> std::collections::HashMap<(Option<usize>, usize), usize> {
    let mut map = std::collections::HashMap::new();
    for (i, op) in dag.ops.iter().enumerate() {
        if let Some(k) = chunk_index(&op.label, prefix) {
            map.insert((op.engine.device().map(|d| d.0), k), i);
        }
    }
    map
}

/// Run every applicable lint over a DAG.
///
/// Lints need a well-formed happens-before relation; on structurally
/// broken DAGs (forward/dangling deps — which [`analyze`] reports) the
/// lints are skipped rather than guessing at an ordering.
pub fn lint(dag: &Dag, cfg: &LintConfig) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let Some(reach) = Reachability::compute(dag) else {
        return findings;
    };

    // two-buffer-liveness: H2D[k] must be ordered after the drain of the
    // buffer set it reuses (chunk k-2's S / D2Hout op on the same device).
    if cfg.two_buffers && !cfg.serial_queue {
        let h2d = index_by_chunk(dag, "H2D");
        let drain_label = match cfg.direction {
            Direction::Compress => "S",
            Direction::Decompress => "D2Hout",
        };
        let drain = index_by_chunk(dag, drain_label);
        let mut keys: Vec<_> = h2d.keys().copied().collect();
        keys.sort_unstable();
        for (dev, k) in keys {
            if k < 2 {
                continue;
            }
            let h = h2d[&(dev, k)];
            match drain.get(&(dev, k - 2)) {
                None => findings.push(LintFinding {
                    lint: TWO_BUFFER_LIVENESS,
                    message: format!(
                        "H2D[{k}] reuses chunk {}'s buffer set but no {drain_label}[{}] \
                         op exists to drain it",
                        k - 2,
                        k - 2
                    ),
                }),
                Some(&d) => {
                    if !reach.ordered(d, h) {
                        findings.push(LintFinding {
                            lint: TWO_BUFFER_LIVENESS,
                            message: format!(
                                "missing anti-dependency: H2D[{k}] (op #{h}) is not ordered \
                                 after {drain_label}[{}] (op #{d}) — three buffer sets can \
                                 be live despite two_buffers",
                                k - 2
                            ),
                        });
                    }
                }
            }
        }
    }

    // deser-first-order: with the red-arrow swap on, Deser[k] must be
    // submitted before D2Hout[k-1] (both ride the D2H engine, which
    // executes in submission order).
    if cfg.deser_first && cfg.direction == Direction::Decompress && !cfg.serial_queue {
        let deser = index_by_chunk(dag, "Deser");
        let out = index_by_chunk(dag, "D2Hout");
        let mut keys: Vec<_> = deser.keys().copied().collect();
        keys.sort_unstable();
        for (dev, k) in keys {
            if k == 0 {
                continue;
            }
            if let (Some(&ds), Some(&o)) = (deser.get(&(dev, k)), out.get(&(dev, k - 1))) {
                if ds > o {
                    findings.push(LintFinding {
                        lint: DESER_FIRST_ORDER,
                        message: format!(
                            "launch order not swapped: Deser[{k}] (op #{ds}) submitted after \
                             D2Hout[{}] (op #{o}), so the header read queues behind the \
                             full output copy on the D2H engine",
                            k - 1
                        ),
                    });
                }
            }
        }
    }

    // cmm-no-percall-alloc: with the CMM on, the DAG must carry no
    // runtime allocator traffic at all.
    if cfg.cmm {
        for (i, op) in dag.ops.iter().enumerate() {
            if matches!(op.kind, OpKind::Alloc | OpKind::Free) {
                findings.push(LintFinding {
                    lint: CMM_NO_PERCALL_ALLOC,
                    message: format!(
                        "per-call allocator traffic under CMM: op #{i} '{}' is a runtime \
                         {} op",
                        op.label,
                        if op.kind == OpKind::Alloc {
                            "alloc"
                        } else {
                            "free"
                        }
                    ),
                });
            }
        }
    }

    findings
}

/// Combined hazard analysis + schedule lints for one DAG.
#[derive(Debug)]
pub struct ScheduleReport {
    pub analysis: VerifyReport,
    pub lints: Vec<LintFinding>,
}

impl ScheduleReport {
    pub fn is_clean(&self) -> bool {
        self.analysis.is_clean() && self.lints.is_empty()
    }

    /// Human-readable rendering.
    pub fn describe(&self, dag: &Dag) -> String {
        let mut out = self.analysis.describe(dag);
        if self.lints.is_empty() {
            out.push_str("\nschedule lints: clean");
        } else {
            out.push_str(&format!(
                "\nschedule lints: {} finding(s)",
                self.lints.len()
            ));
            for f in &self.lints {
                out.push_str(&format!("\n  - [{}] {}", f.lint, f.message));
            }
        }
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self, dag: &Dag) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        let lints: Vec<String> = self
            .lints
            .iter()
            .map(|f| {
                format!(
                    "{{\"lint\":\"{}\",\"message\":\"{}\"}}",
                    f.lint,
                    esc(&f.message)
                )
            })
            .collect();
        format!(
            "{{\"analysis\":{},\"lints\":[{}]}}",
            self.analysis.to_json(dag),
            lints.join(",")
        )
    }
}

/// Run the hazard analyzer and the schedule lints over one DAG.
pub fn check(dag: &Dag, cfg: &LintConfig) -> ScheduleReport {
    ScheduleReport {
        analysis: analyze(dag),
        lints: lint(dag, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpdr_sim::verify::DagOp;
    use hpdr_sim::{DeviceId, Effects, Engine, RuntimeId};

    fn dev() -> DeviceId {
        DeviceId(0)
    }

    fn op(label: &str, engine: Engine, queue: usize, deps: Vec<usize>, kind: OpKind) -> DagOp {
        DagOp {
            label: label.into(),
            engine,
            queue: Some(queue),
            deps,
            effects: Effects::none(),
            kind,
        }
    }

    fn compress_cfg() -> LintConfig {
        LintConfig {
            direction: Direction::Compress,
            two_buffers: true,
            cmm: true,
            deser_first: true,
            serial_queue: false,
        }
    }

    /// Minimal 3-chunk compress skeleton: H2D/R/S per chunk on queues
    /// k % 3, with `anti` controlling the S(k) → H2D(k+2) arrow.
    fn compress_skeleton(anti: bool) -> Dag {
        let mut ops = Vec::new();
        let mut s_ops = Vec::new();
        for k in 0..3usize {
            let q = k % 3;
            let mut h2d_deps = Vec::new();
            if anti && k >= 2 {
                h2d_deps.push(s_ops[k - 2]);
            }
            let h2d = ops.len();
            ops.push(op(
                &format!("H2D[{k}]"),
                Engine::H2D(dev()),
                q,
                h2d_deps,
                OpKind::Transfer,
            ));
            let r = ops.len();
            ops.push(op(
                &format!("R[{k}]"),
                Engine::Compute(dev()),
                q,
                vec![h2d],
                OpKind::Kernel,
            ));
            let s = ops.len();
            ops.push(op(
                &format!("S[{k}]"),
                Engine::D2H(dev()),
                q,
                vec![r],
                OpKind::Transfer,
            ));
            s_ops.push(s);
        }
        Dag { ops }
    }

    #[test]
    fn two_buffer_lint_accepts_anti_deps() {
        let findings = lint(&compress_skeleton(true), &compress_cfg());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn two_buffer_lint_flags_missing_anti_dep() {
        let findings = lint(&compress_skeleton(false), &compress_cfg());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, TWO_BUFFER_LIVENESS);
        assert!(findings[0].message.contains("H2D[2]"));
        assert!(findings[0].message.contains("S[0]"));
    }

    #[test]
    fn two_buffer_lint_skipped_when_three_buffers_or_serial() {
        let mut cfg = compress_cfg();
        cfg.two_buffers = false;
        assert!(lint(&compress_skeleton(false), &cfg).is_empty());
        let mut cfg = compress_cfg();
        cfg.serial_queue = true;
        assert!(lint(&compress_skeleton(false), &cfg).is_empty());
    }

    /// Two-chunk decompress D2H-engine tail: with `swapped`, Deser[1] is
    /// submitted before D2Hout[0] (the red-arrow order).
    fn decompress_skeleton(swapped: bool) -> Dag {
        // Chunk 0: H2D, Deser, Rec; then chunk 1's front half.
        let mut ops = vec![
            op("H2D[0]", Engine::H2D(dev()), 0, vec![], OpKind::Transfer),
            op("Deser[0]", Engine::D2H(dev()), 0, vec![0], OpKind::Transfer),
            op("Rec[0]", Engine::Compute(dev()), 0, vec![1], OpKind::Kernel),
            op("H2D[1]", Engine::H2D(dev()), 1, vec![], OpKind::Transfer),
        ];
        if swapped {
            ops.push(op(
                "Deser[1]",
                Engine::D2H(dev()),
                1,
                vec![3],
                OpKind::Transfer,
            ));
            ops.push(op(
                "D2Hout[0]",
                Engine::D2H(dev()),
                0,
                vec![2],
                OpKind::Transfer,
            ));
            ops.push(op(
                "Rec[1]",
                Engine::Compute(dev()),
                1,
                vec![4],
                OpKind::Kernel,
            ));
            ops.push(op(
                "D2Hout[1]",
                Engine::D2H(dev()),
                1,
                vec![6],
                OpKind::Transfer,
            ));
        } else {
            ops.push(op(
                "D2Hout[0]",
                Engine::D2H(dev()),
                0,
                vec![2],
                OpKind::Transfer,
            ));
            ops.push(op(
                "Deser[1]",
                Engine::D2H(dev()),
                1,
                vec![3],
                OpKind::Transfer,
            ));
            ops.push(op(
                "Rec[1]",
                Engine::Compute(dev()),
                1,
                vec![5],
                OpKind::Kernel,
            ));
            ops.push(op(
                "D2Hout[1]",
                Engine::D2H(dev()),
                1,
                vec![6],
                OpKind::Transfer,
            ));
        }
        Dag { ops }
    }

    fn decompress_cfg() -> LintConfig {
        LintConfig {
            direction: Direction::Decompress,
            two_buffers: false,
            cmm: true,
            deser_first: true,
            serial_queue: false,
        }
    }

    #[test]
    fn deser_first_lint_accepts_swapped_order() {
        assert!(lint(&decompress_skeleton(true), &decompress_cfg()).is_empty());
    }

    #[test]
    fn deser_first_lint_flags_unswapped_order() {
        let findings = lint(&decompress_skeleton(false), &decompress_cfg());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, DESER_FIRST_ORDER);
        assert!(findings[0].message.contains("Deser[1]"));
    }

    #[test]
    fn cmm_lint_flags_allocator_ops() {
        let dag = Dag {
            ops: vec![
                op(
                    "alloc[0.0]",
                    Engine::Runtime(RuntimeId(0)),
                    0,
                    vec![],
                    OpKind::Alloc,
                ),
                op("H2D[0]", Engine::H2D(dev()), 0, vec![0], OpKind::Transfer),
                op(
                    "free[0.0]",
                    Engine::Runtime(RuntimeId(0)),
                    0,
                    vec![1],
                    OpKind::Free,
                ),
            ],
        };
        let findings = lint(&dag, &compress_cfg());
        let cmm: Vec<_> = findings
            .iter()
            .filter(|f| f.lint == CMM_NO_PERCALL_ALLOC)
            .collect();
        assert_eq!(cmm.len(), 2);
        // With CMM declared off, the same DAG lints clean.
        let mut cfg = compress_cfg();
        cfg.cmm = false;
        assert!(lint(&dag, &cfg)
            .iter()
            .all(|f| f.lint != CMM_NO_PERCALL_ALLOC));
    }

    #[test]
    fn check_bundles_analysis_and_lints() {
        let dag = compress_skeleton(false);
        let report = check(&dag, &compress_cfg());
        // Skeleton has no effects, so the analysis is clean but the lint fires.
        assert!(report.analysis.is_clean());
        assert!(!report.is_clean());
        let text = report.describe(&dag);
        assert!(text.contains(TWO_BUFFER_LIVENESS));
        let json = report.to_json(&dag);
        assert!(json.contains("\"lints\":[{"));
        assert!(json.contains(TWO_BUFFER_LIVENESS));
    }

    #[test]
    fn clean_report_renders() {
        let dag = compress_skeleton(true);
        let report = check(&dag, &compress_cfg());
        assert!(report.is_clean());
        assert!(report.describe(&dag).contains("schedule lints: clean"));
    }
}
