//! Every shipped pipeline configuration must verify clean: zero hazards
//! from the static analyzer and zero findings from the schedule lints,
//! for both compression and reconstruction DAGs.
//!
//! This is the acceptance property of the whole subsystem: the Fig. 9
//! schedules (all `PipelineMode` × `two_buffers` × `cmm` × `deser_first`
//! combinations, plus the shipped baseline presets) are race-free by
//! construction, and the analyzer agrees.

use hpdr_core::{ArrayMeta, CpuParallelAdapter, DType, DeviceAdapter, Reducer, Shape};
use hpdr_huffman::ByteHuffmanReducer;
use hpdr_pipeline::{
    compress_pipelined, plan_compress, plan_decompress, PipelineMode, PipelineOptions,
};
use hpdr_verify::{check, Direction, LintConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn lint_config(direction: Direction, opts: &PipelineOptions) -> LintConfig {
    LintConfig {
        direction,
        two_buffers: opts.two_buffers,
        cmm: opts.cmm,
        deser_first: opts.deser_first,
        serial_queue: opts.serial_queue,
    }
}

/// Verify one options set end to end: plan both directions, analyze, lint.
fn assert_config_clean(opts: &PipelineOptions, rows: usize) {
    let spec = hpdr_sim::v100();
    let adapter: Arc<dyn DeviceAdapter> = Arc::new(CpuParallelAdapter::new(2));
    let reducer: Arc<dyn Reducer> = Arc::new(ByteHuffmanReducer::default());
    let meta = ArrayMeta::new(DType::F32, Shape::try_new(&[rows, 128]).unwrap());
    let input: Arc<Vec<u8>> = Arc::new(
        (0..meta.num_bytes() / 4)
            .flat_map(|i| ((i % 97) as f32).to_le_bytes())
            .collect(),
    );

    let sim = plan_compress(
        &spec,
        Arc::clone(&adapter),
        Arc::clone(&reducer),
        Arc::clone(&input),
        &meta,
        opts,
    )
    .unwrap();
    let dag = sim.dag();
    let report = check(&dag, &lint_config(Direction::Compress, opts));
    assert!(
        report.is_clean(),
        "compress {opts:?}:\n{}",
        report.describe(&dag)
    );

    let (container, _) = compress_pipelined(
        &spec,
        Arc::clone(&adapter),
        Arc::clone(&reducer),
        Arc::clone(&input),
        &meta,
        opts,
    )
    .unwrap();
    let sim = plan_decompress(&spec, adapter, reducer, &container, opts).unwrap();
    let dag = sim.dag();
    let report = check(&dag, &lint_config(Direction::Decompress, opts));
    assert!(
        report.is_clean(),
        "decompress {opts:?}:\n{}",
        report.describe(&dag)
    );
}

fn mode_from(sel: usize, row_bytes: u64) -> PipelineMode {
    match sel % 3 {
        0 => PipelineMode::Unpipelined,
        1 => PipelineMode::Fixed {
            chunk_bytes: 6 * row_bytes,
        },
        _ => PipelineMode::Adaptive {
            init_bytes: 3 * row_bytes,
            limit_bytes: 12 * row_bytes,
        },
    }
}

/// Exhaustive sweep of every mode × flag combination at a fixed size
/// (the acceptance-criteria grid, deterministic).
#[test]
fn all_shipped_flag_combinations_verify_clean() {
    let row_bytes = 128 * 4u64;
    for sel in 0..3 {
        for two_buffers in [false, true] {
            for cmm in [false, true] {
                for deser_first in [false, true] {
                    let opts = PipelineOptions {
                        mode: mode_from(sel, row_bytes),
                        two_buffers,
                        cmm,
                        deser_first,
                        serial_queue: false,
                        host_staging: false,
                    };
                    assert_config_clean(&opts, 36);
                }
            }
        }
    }
}

/// The shipped named presets verify clean too (serial single-queue
/// comparator behaviour included).
#[test]
fn shipped_presets_verify_clean() {
    let row_bytes = 128 * 4u64;
    for opts in [
        PipelineOptions::default(),
        PipelineOptions::unpipelined(),
        PipelineOptions::fixed(6 * row_bytes),
        PipelineOptions::baseline_unoptimized(),
        PipelineOptions::baseline_per_step(6 * row_bytes),
    ] {
        assert_config_clean(&opts, 36);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: *any* combination of shipped options stays clean across
    /// input sizes (different chunk counts exercise different wrap-around
    /// patterns of the 3-queue / n-buffer rotation).
    #[test]
    fn random_config_and_size_verifies_clean(
        sel in 0usize..3,
        flags in 0u8..16,
        rows in 1usize..48,
    ) {
        let opts = PipelineOptions {
            mode: mode_from(sel, 128 * 4),
            two_buffers: flags & 1 != 0,
            cmm: flags & 2 != 0,
            deser_first: flags & 4 != 0,
            serial_queue: flags & 8 != 0,
            host_staging: false,
        };
        assert_config_clean(&opts, rows);
    }
}
