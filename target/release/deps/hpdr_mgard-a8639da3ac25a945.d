/root/repo/target/release/deps/hpdr_mgard-a8639da3ac25a945.d: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs

/root/repo/target/release/deps/libhpdr_mgard-a8639da3ac25a945.rlib: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs

/root/repo/target/release/deps/libhpdr_mgard-a8639da3ac25a945.rmeta: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs

crates/hpdr-mgard/src/lib.rs:
crates/hpdr-mgard/src/codec.rs:
crates/hpdr-mgard/src/decompose.rs:
crates/hpdr-mgard/src/hierarchy.rs:
crates/hpdr-mgard/src/operators.rs:
crates/hpdr-mgard/src/quantize.rs:
crates/hpdr-mgard/src/reducer.rs:
crates/hpdr-mgard/src/refactor.rs:
