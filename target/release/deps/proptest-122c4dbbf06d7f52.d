/root/repo/target/release/deps/proptest-122c4dbbf06d7f52.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-122c4dbbf06d7f52.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-122c4dbbf06d7f52.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
