/root/repo/target/release/deps/climate_io-27e29e83bdfe5053.d: crates/examples-bin/../../examples/climate_io.rs

/root/repo/target/release/deps/climate_io-27e29e83bdfe5053: crates/examples-bin/../../examples/climate_io.rs

crates/examples-bin/../../examples/climate_io.rs:
