/root/repo/target/release/deps/hpdr_kernels-c6e18b3a092089b7.d: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

/root/repo/target/release/deps/libhpdr_kernels-c6e18b3a092089b7.rlib: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

/root/repo/target/release/deps/libhpdr_kernels-c6e18b3a092089b7.rmeta: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

crates/hpdr-kernels/src/lib.rs:
crates/hpdr-kernels/src/bitstream.rs:
crates/hpdr-kernels/src/blocks.rs:
crates/hpdr-kernels/src/histogram.rs:
crates/hpdr-kernels/src/pack.rs:
crates/hpdr-kernels/src/reduce.rs:
crates/hpdr-kernels/src/scan.rs:
crates/hpdr-kernels/src/sort.rs:
