/root/repo/target/release/deps/bench-7e324d9add5e2fe3.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libbench-7e324d9add5e2fe3.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libbench-7e324d9add5e2fe3.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scaling.rs:
crates/bench/src/tables.rs:
