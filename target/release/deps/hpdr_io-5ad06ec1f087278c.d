/root/repo/target/release/deps/hpdr_io-5ad06ec1f087278c.d: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

/root/repo/target/release/deps/libhpdr_io-5ad06ec1f087278c.rlib: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

/root/repo/target/release/deps/libhpdr_io-5ad06ec1f087278c.rmeta: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

crates/hpdr-io/src/lib.rs:
crates/hpdr-io/src/bp.rs:
crates/hpdr-io/src/cluster.rs:
crates/hpdr-io/src/fsmodel.rs:
