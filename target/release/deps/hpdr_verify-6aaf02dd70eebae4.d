/root/repo/target/release/deps/hpdr_verify-6aaf02dd70eebae4.d: crates/hpdr-verify/src/lib.rs

/root/repo/target/release/deps/libhpdr_verify-6aaf02dd70eebae4.rlib: crates/hpdr-verify/src/lib.rs

/root/repo/target/release/deps/libhpdr_verify-6aaf02dd70eebae4.rmeta: crates/hpdr-verify/src/lib.rs

crates/hpdr-verify/src/lib.rs:
