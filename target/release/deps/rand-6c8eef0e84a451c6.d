/root/repo/target/release/deps/rand-6c8eef0e84a451c6.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-6c8eef0e84a451c6.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-6c8eef0e84a451c6.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
