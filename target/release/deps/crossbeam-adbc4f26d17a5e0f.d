/root/repo/target/release/deps/crossbeam-adbc4f26d17a5e0f.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-adbc4f26d17a5e0f.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-adbc4f26d17a5e0f.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
