/root/repo/target/release/deps/hpdr_data-e8d3b68051e66f5f.d: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

/root/repo/target/release/deps/libhpdr_data-e8d3b68051e66f5f.rlib: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

/root/repo/target/release/deps/libhpdr_data-e8d3b68051e66f5f.rmeta: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

crates/hpdr-data/src/lib.rs:
crates/hpdr-data/src/datasets.rs:
crates/hpdr-data/src/field.rs:
