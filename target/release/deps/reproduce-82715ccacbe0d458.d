/root/repo/target/release/deps/reproduce-82715ccacbe0d458.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-82715ccacbe0d458: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
