/root/repo/target/release/deps/hpdr-d615617be3cc391d.d: crates/hpdr/src/bin/hpdr.rs

/root/repo/target/release/deps/hpdr-d615617be3cc391d: crates/hpdr/src/bin/hpdr.rs

crates/hpdr/src/bin/hpdr.rs:
