/root/repo/target/release/deps/hpdr_baselines-afd2db4c0b37b7f0.d: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

/root/repo/target/release/deps/libhpdr_baselines-afd2db4c0b37b7f0.rlib: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

/root/repo/target/release/deps/libhpdr_baselines-afd2db4c0b37b7f0.rmeta: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

crates/hpdr-baselines/src/lib.rs:
crates/hpdr-baselines/src/lorenzo.rs:
crates/hpdr-baselines/src/lz4like.rs:
crates/hpdr-baselines/src/szlike.rs:
