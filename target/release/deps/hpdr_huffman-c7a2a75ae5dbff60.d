/root/repo/target/release/deps/hpdr_huffman-c7a2a75ae5dbff60.d: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

/root/repo/target/release/deps/libhpdr_huffman-c7a2a75ae5dbff60.rlib: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

/root/repo/target/release/deps/libhpdr_huffman-c7a2a75ae5dbff60.rmeta: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

crates/hpdr-huffman/src/lib.rs:
crates/hpdr-huffman/src/codebook.rs:
crates/hpdr-huffman/src/codec.rs:
crates/hpdr-huffman/src/reducer.rs:
