/root/repo/target/release/deps/parking_lot-370e71f1c525c914.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-370e71f1c525c914.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-370e71f1c525c914.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
