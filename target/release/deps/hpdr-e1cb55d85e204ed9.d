/root/repo/target/release/deps/hpdr-e1cb55d85e204ed9.d: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/release/deps/libhpdr-e1cb55d85e204ed9.rlib: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/release/deps/libhpdr-e1cb55d85e204ed9.rmeta: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

crates/hpdr/src/lib.rs:
crates/hpdr/src/api.rs:
crates/hpdr/src/cli.rs:
