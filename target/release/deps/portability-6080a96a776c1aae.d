/root/repo/target/release/deps/portability-6080a96a776c1aae.d: crates/examples-bin/../../examples/portability.rs

/root/repo/target/release/deps/portability-6080a96a776c1aae: crates/examples-bin/../../examples/portability.rs

crates/examples-bin/../../examples/portability.rs:
