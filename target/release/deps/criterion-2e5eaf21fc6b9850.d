/root/repo/target/release/deps/criterion-2e5eaf21fc6b9850.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2e5eaf21fc6b9850.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-2e5eaf21fc6b9850.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
