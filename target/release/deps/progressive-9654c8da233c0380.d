/root/repo/target/release/deps/progressive-9654c8da233c0380.d: crates/examples-bin/../../examples/progressive.rs

/root/repo/target/release/deps/progressive-9654c8da233c0380: crates/examples-bin/../../examples/progressive.rs

crates/examples-bin/../../examples/progressive.rs:
