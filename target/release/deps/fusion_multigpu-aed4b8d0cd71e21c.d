/root/repo/target/release/deps/fusion_multigpu-aed4b8d0cd71e21c.d: crates/examples-bin/../../examples/fusion_multigpu.rs

/root/repo/target/release/deps/fusion_multigpu-aed4b8d0cd71e21c: crates/examples-bin/../../examples/fusion_multigpu.rs

crates/examples-bin/../../examples/fusion_multigpu.rs:
