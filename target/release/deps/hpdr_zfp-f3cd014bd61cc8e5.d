/root/repo/target/release/deps/hpdr_zfp-f3cd014bd61cc8e5.d: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

/root/repo/target/release/deps/libhpdr_zfp-f3cd014bd61cc8e5.rlib: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

/root/repo/target/release/deps/libhpdr_zfp-f3cd014bd61cc8e5.rmeta: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

crates/hpdr-zfp/src/lib.rs:
crates/hpdr-zfp/src/codec.rs:
crates/hpdr-zfp/src/embedded.rs:
crates/hpdr-zfp/src/negabinary.rs:
crates/hpdr-zfp/src/transform.rs:
crates/hpdr-zfp/src/reducer.rs:
