/root/repo/target/release/deps/hpdr_pipeline-965ab74db893a9fc.d: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

/root/repo/target/release/deps/libhpdr_pipeline-965ab74db893a9fc.rlib: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

/root/repo/target/release/deps/libhpdr_pipeline-965ab74db893a9fc.rmeta: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

crates/hpdr-pipeline/src/lib.rs:
crates/hpdr-pipeline/src/container.rs:
crates/hpdr-pipeline/src/multigpu.rs:
crates/hpdr-pipeline/src/roofline.rs:
crates/hpdr-pipeline/src/runner.rs:
