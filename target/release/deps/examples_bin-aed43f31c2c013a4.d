/root/repo/target/release/deps/examples_bin-aed43f31c2c013a4.d: crates/examples-bin/src/lib.rs

/root/repo/target/release/deps/libexamples_bin-aed43f31c2c013a4.rlib: crates/examples-bin/src/lib.rs

/root/repo/target/release/deps/libexamples_bin-aed43f31c2c013a4.rmeta: crates/examples-bin/src/lib.rs

crates/examples-bin/src/lib.rs:
