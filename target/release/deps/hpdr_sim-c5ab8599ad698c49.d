/root/repo/target/release/deps/hpdr_sim-c5ab8599ad698c49.d: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs

/root/repo/target/release/deps/libhpdr_sim-c5ab8599ad698c49.rlib: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs

/root/repo/target/release/deps/libhpdr_sim-c5ab8599ad698c49.rmeta: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs

crates/hpdr-sim/src/lib.rs:
crates/hpdr-sim/src/effects.rs:
crates/hpdr-sim/src/mem.rs:
crates/hpdr-sim/src/sim.rs:
crates/hpdr-sim/src/spec.rs:
crates/hpdr-sim/src/time.rs:
crates/hpdr-sim/src/timeline.rs:
crates/hpdr-sim/src/verify.rs:
