/root/repo/target/release/deps/integration-b41a945ca5713d23.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-b41a945ca5713d23.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-b41a945ca5713d23.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
