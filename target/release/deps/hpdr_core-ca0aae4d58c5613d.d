/root/repo/target/release/deps/hpdr_core-ca0aae4d58c5613d.d: crates/hpdr-core/src/lib.rs crates/hpdr-core/src/abstractions.rs crates/hpdr-core/src/adapter.rs crates/hpdr-core/src/bytesio.rs crates/hpdr-core/src/cmm.rs crates/hpdr-core/src/error.rs crates/hpdr-core/src/float.rs crates/hpdr-core/src/gpu_sim.rs crates/hpdr-core/src/pool.rs crates/hpdr-core/src/reducer.rs crates/hpdr-core/src/shape.rs crates/hpdr-core/src/shared.rs

/root/repo/target/release/deps/libhpdr_core-ca0aae4d58c5613d.rlib: crates/hpdr-core/src/lib.rs crates/hpdr-core/src/abstractions.rs crates/hpdr-core/src/adapter.rs crates/hpdr-core/src/bytesio.rs crates/hpdr-core/src/cmm.rs crates/hpdr-core/src/error.rs crates/hpdr-core/src/float.rs crates/hpdr-core/src/gpu_sim.rs crates/hpdr-core/src/pool.rs crates/hpdr-core/src/reducer.rs crates/hpdr-core/src/shape.rs crates/hpdr-core/src/shared.rs

/root/repo/target/release/deps/libhpdr_core-ca0aae4d58c5613d.rmeta: crates/hpdr-core/src/lib.rs crates/hpdr-core/src/abstractions.rs crates/hpdr-core/src/adapter.rs crates/hpdr-core/src/bytesio.rs crates/hpdr-core/src/cmm.rs crates/hpdr-core/src/error.rs crates/hpdr-core/src/float.rs crates/hpdr-core/src/gpu_sim.rs crates/hpdr-core/src/pool.rs crates/hpdr-core/src/reducer.rs crates/hpdr-core/src/shape.rs crates/hpdr-core/src/shared.rs

crates/hpdr-core/src/lib.rs:
crates/hpdr-core/src/abstractions.rs:
crates/hpdr-core/src/adapter.rs:
crates/hpdr-core/src/bytesio.rs:
crates/hpdr-core/src/cmm.rs:
crates/hpdr-core/src/error.rs:
crates/hpdr-core/src/float.rs:
crates/hpdr-core/src/gpu_sim.rs:
crates/hpdr-core/src/pool.rs:
crates/hpdr-core/src/reducer.rs:
crates/hpdr-core/src/shape.rs:
crates/hpdr-core/src/shared.rs:
