/root/repo/target/release/deps/quickstart-2cbef95aaf8194ee.d: crates/examples-bin/../../examples/quickstart.rs

/root/repo/target/release/deps/quickstart-2cbef95aaf8194ee: crates/examples-bin/../../examples/quickstart.rs

crates/examples-bin/../../examples/quickstart.rs:
