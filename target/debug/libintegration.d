/root/repo/target/debug/libintegration.rlib: /root/repo/crates/integration/src/lib.rs
