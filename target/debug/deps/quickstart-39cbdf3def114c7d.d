/root/repo/target/debug/deps/quickstart-39cbdf3def114c7d.d: crates/examples-bin/../../examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-39cbdf3def114c7d: crates/examples-bin/../../examples/quickstart.rs

crates/examples-bin/../../examples/quickstart.rs:
