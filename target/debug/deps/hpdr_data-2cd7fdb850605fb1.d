/root/repo/target/debug/deps/hpdr_data-2cd7fdb850605fb1.d: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_data-2cd7fdb850605fb1.rmeta: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs Cargo.toml

crates/hpdr-data/src/lib.rs:
crates/hpdr-data/src/datasets.rs:
crates/hpdr-data/src/field.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
