/root/repo/target/debug/deps/hpdr_io-add38f014a4283ef.d: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

/root/repo/target/debug/deps/hpdr_io-add38f014a4283ef: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

crates/hpdr-io/src/lib.rs:
crates/hpdr-io/src/bp.rs:
crates/hpdr-io/src/cluster.rs:
crates/hpdr-io/src/fsmodel.rs:
