/root/repo/target/debug/deps/progressive-31a5c5a858d98ab6.d: crates/examples-bin/../../examples/progressive.rs

/root/repo/target/debug/deps/progressive-31a5c5a858d98ab6: crates/examples-bin/../../examples/progressive.rs

crates/examples-bin/../../examples/progressive.rs:
