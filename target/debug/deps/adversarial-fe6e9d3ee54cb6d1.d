/root/repo/target/debug/deps/adversarial-fe6e9d3ee54cb6d1.d: crates/hpdr-sim/tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-fe6e9d3ee54cb6d1: crates/hpdr-sim/tests/adversarial.rs

crates/hpdr-sim/tests/adversarial.rs:
