/root/repo/target/debug/deps/bench-11d588c30319b1c7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbench-11d588c30319b1c7.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbench-11d588c30319b1c7.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scaling.rs:
crates/bench/src/tables.rs:
