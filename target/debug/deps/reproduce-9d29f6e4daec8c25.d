/root/repo/target/debug/deps/reproduce-9d29f6e4daec8c25.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-9d29f6e4daec8c25: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
