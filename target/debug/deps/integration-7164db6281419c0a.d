/root/repo/target/debug/deps/integration-7164db6281419c0a.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-7164db6281419c0a.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
