/root/repo/target/debug/deps/io_roundtrip-cdb23657951f1541.d: crates/integration/../../tests/io_roundtrip.rs

/root/repo/target/debug/deps/io_roundtrip-cdb23657951f1541: crates/integration/../../tests/io_roundtrip.rs

crates/integration/../../tests/io_roundtrip.rs:
