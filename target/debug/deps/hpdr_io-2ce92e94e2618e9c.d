/root/repo/target/debug/deps/hpdr_io-2ce92e94e2618e9c.d: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_io-2ce92e94e2618e9c.rmeta: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs Cargo.toml

crates/hpdr-io/src/lib.rs:
crates/hpdr-io/src/bp.rs:
crates/hpdr-io/src/cluster.rs:
crates/hpdr-io/src/fsmodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
