/root/repo/target/debug/deps/fusion_multigpu-1ce54fa9d07c343c.d: crates/examples-bin/../../examples/fusion_multigpu.rs

/root/repo/target/debug/deps/fusion_multigpu-1ce54fa9d07c343c: crates/examples-bin/../../examples/fusion_multigpu.rs

crates/examples-bin/../../examples/fusion_multigpu.rs:
