/root/repo/target/debug/deps/bench-0820446c8707f094.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libbench-0820446c8707f094.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scaling.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
