/root/repo/target/debug/deps/properties-445c2eb5ff1247d5.d: crates/integration/../../tests/properties.rs

/root/repo/target/debug/deps/properties-445c2eb5ff1247d5: crates/integration/../../tests/properties.rs

crates/integration/../../tests/properties.rs:
