/root/repo/target/debug/deps/fig15_multinode-4270e88fc104e9a8.d: crates/bench/benches/fig15_multinode.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_multinode-4270e88fc104e9a8.rmeta: crates/bench/benches/fig15_multinode.rs Cargo.toml

crates/bench/benches/fig15_multinode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
