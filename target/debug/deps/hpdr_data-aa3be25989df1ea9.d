/root/repo/target/debug/deps/hpdr_data-aa3be25989df1ea9.d: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

/root/repo/target/debug/deps/hpdr_data-aa3be25989df1ea9: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

crates/hpdr-data/src/lib.rs:
crates/hpdr-data/src/datasets.rs:
crates/hpdr-data/src/field.rs:
