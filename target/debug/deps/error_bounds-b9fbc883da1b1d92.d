/root/repo/target/debug/deps/error_bounds-b9fbc883da1b1d92.d: crates/integration/../../tests/error_bounds.rs

/root/repo/target/debug/deps/error_bounds-b9fbc883da1b1d92: crates/integration/../../tests/error_bounds.rs

crates/integration/../../tests/error_bounds.rs:
