/root/repo/target/debug/deps/fig12_kernels-69ca6f22ee746fa1.d: crates/bench/benches/fig12_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_kernels-69ca6f22ee746fa1.rmeta: crates/bench/benches/fig12_kernels.rs Cargo.toml

crates/bench/benches/fig12_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
