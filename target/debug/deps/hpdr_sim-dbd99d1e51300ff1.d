/root/repo/target/debug/deps/hpdr_sim-dbd99d1e51300ff1.d: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs

/root/repo/target/debug/deps/hpdr_sim-dbd99d1e51300ff1: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs

crates/hpdr-sim/src/lib.rs:
crates/hpdr-sim/src/effects.rs:
crates/hpdr-sim/src/mem.rs:
crates/hpdr-sim/src/sim.rs:
crates/hpdr-sim/src/spec.rs:
crates/hpdr-sim/src/time.rs:
crates/hpdr-sim/src/timeline.rs:
crates/hpdr-sim/src/verify.rs:
