/root/repo/target/debug/deps/climate_io-3f7c65139d05fb98.d: crates/examples-bin/../../examples/climate_io.rs

/root/repo/target/debug/deps/climate_io-3f7c65139d05fb98: crates/examples-bin/../../examples/climate_io.rs

crates/examples-bin/../../examples/climate_io.rs:
