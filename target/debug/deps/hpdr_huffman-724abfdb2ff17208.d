/root/repo/target/debug/deps/hpdr_huffman-724abfdb2ff17208.d: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_huffman-724abfdb2ff17208.rmeta: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs Cargo.toml

crates/hpdr-huffman/src/lib.rs:
crates/hpdr-huffman/src/codebook.rs:
crates/hpdr-huffman/src/codec.rs:
crates/hpdr-huffman/src/reducer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
