/root/repo/target/debug/deps/fusion_multigpu-db3049962c50d3a2.d: crates/examples-bin/../../examples/fusion_multigpu.rs Cargo.toml

/root/repo/target/debug/deps/libfusion_multigpu-db3049962c50d3a2.rmeta: crates/examples-bin/../../examples/fusion_multigpu.rs Cargo.toml

crates/examples-bin/../../examples/fusion_multigpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
