/root/repo/target/debug/deps/portability-9263c982fa51162b.d: crates/integration/../../tests/portability.rs Cargo.toml

/root/repo/target/debug/deps/libportability-9263c982fa51162b.rmeta: crates/integration/../../tests/portability.rs Cargo.toml

crates/integration/../../tests/portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
