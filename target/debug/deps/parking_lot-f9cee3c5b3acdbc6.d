/root/repo/target/debug/deps/parking_lot-f9cee3c5b3acdbc6.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f9cee3c5b3acdbc6.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f9cee3c5b3acdbc6.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
