/root/repo/target/debug/deps/portability-e1b6cd696bf8d817.d: crates/examples-bin/../../examples/portability.rs

/root/repo/target/debug/deps/portability-e1b6cd696bf8d817: crates/examples-bin/../../examples/portability.rs

crates/examples-bin/../../examples/portability.rs:
