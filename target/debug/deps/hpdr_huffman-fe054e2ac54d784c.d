/root/repo/target/debug/deps/hpdr_huffman-fe054e2ac54d784c.d: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

/root/repo/target/debug/deps/libhpdr_huffman-fe054e2ac54d784c.rlib: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

/root/repo/target/debug/deps/libhpdr_huffman-fe054e2ac54d784c.rmeta: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

crates/hpdr-huffman/src/lib.rs:
crates/hpdr-huffman/src/codebook.rs:
crates/hpdr-huffman/src/codec.rs:
crates/hpdr-huffman/src/reducer.rs:
