/root/repo/target/debug/deps/pipeline_equivalence-e6865bac002d30a9.d: crates/integration/../../tests/pipeline_equivalence.rs

/root/repo/target/debug/deps/pipeline_equivalence-e6865bac002d30a9: crates/integration/../../tests/pipeline_equivalence.rs

crates/integration/../../tests/pipeline_equivalence.rs:
