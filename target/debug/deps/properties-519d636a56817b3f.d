/root/repo/target/debug/deps/properties-519d636a56817b3f.d: crates/integration/../../tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-519d636a56817b3f.rmeta: crates/integration/../../tests/properties.rs Cargo.toml

crates/integration/../../tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
