/root/repo/target/debug/deps/integration-c33f7692d7d3b05b.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration-c33f7692d7d3b05b: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
