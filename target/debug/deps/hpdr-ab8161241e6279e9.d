/root/repo/target/debug/deps/hpdr-ab8161241e6279e9.d: crates/hpdr/src/bin/hpdr.rs

/root/repo/target/debug/deps/hpdr-ab8161241e6279e9: crates/hpdr/src/bin/hpdr.rs

crates/hpdr/src/bin/hpdr.rs:
