/root/repo/target/debug/deps/examples_bin-27c207bbd55c1332.d: crates/examples-bin/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libexamples_bin-27c207bbd55c1332.rmeta: crates/examples-bin/src/lib.rs Cargo.toml

crates/examples-bin/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
