/root/repo/target/debug/deps/hpdr_baselines-3cfaa0f54680cb24.d: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

/root/repo/target/debug/deps/libhpdr_baselines-3cfaa0f54680cb24.rlib: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

/root/repo/target/debug/deps/libhpdr_baselines-3cfaa0f54680cb24.rmeta: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

crates/hpdr-baselines/src/lib.rs:
crates/hpdr-baselines/src/lorenzo.rs:
crates/hpdr-baselines/src/lz4like.rs:
crates/hpdr-baselines/src/szlike.rs:
