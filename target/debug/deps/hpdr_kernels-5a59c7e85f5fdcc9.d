/root/repo/target/debug/deps/hpdr_kernels-5a59c7e85f5fdcc9.d: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

/root/repo/target/debug/deps/hpdr_kernels-5a59c7e85f5fdcc9: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

crates/hpdr-kernels/src/lib.rs:
crates/hpdr-kernels/src/bitstream.rs:
crates/hpdr-kernels/src/blocks.rs:
crates/hpdr-kernels/src/histogram.rs:
crates/hpdr-kernels/src/pack.rs:
crates/hpdr-kernels/src/reduce.rs:
crates/hpdr-kernels/src/scan.rs:
crates/hpdr-kernels/src/sort.rs:
