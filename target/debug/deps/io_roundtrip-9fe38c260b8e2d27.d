/root/repo/target/debug/deps/io_roundtrip-9fe38c260b8e2d27.d: crates/integration/../../tests/io_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libio_roundtrip-9fe38c260b8e2d27.rmeta: crates/integration/../../tests/io_roundtrip.rs Cargo.toml

crates/integration/../../tests/io_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
