/root/repo/target/debug/deps/hpdr-7cbee9e788bf5be4.d: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/debug/deps/hpdr-7cbee9e788bf5be4: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

crates/hpdr/src/lib.rs:
crates/hpdr/src/api.rs:
crates/hpdr/src/cli.rs:
