/root/repo/target/debug/deps/crossbeam-feb90d8389132828.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-feb90d8389132828.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-feb90d8389132828.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
