/root/repo/target/debug/deps/pipeline_configs-ad4e822decbd15bb.d: crates/hpdr-verify/tests/pipeline_configs.rs

/root/repo/target/debug/deps/pipeline_configs-ad4e822decbd15bb: crates/hpdr-verify/tests/pipeline_configs.rs

crates/hpdr-verify/tests/pipeline_configs.rs:
