/root/repo/target/debug/deps/examples_bin-8bba3b31c76c1961.d: crates/examples-bin/src/lib.rs

/root/repo/target/debug/deps/libexamples_bin-8bba3b31c76c1961.rlib: crates/examples-bin/src/lib.rs

/root/repo/target/debug/deps/libexamples_bin-8bba3b31c76c1961.rmeta: crates/examples-bin/src/lib.rs

crates/examples-bin/src/lib.rs:
