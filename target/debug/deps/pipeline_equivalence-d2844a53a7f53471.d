/root/repo/target/debug/deps/pipeline_equivalence-d2844a53a7f53471.d: crates/integration/../../tests/pipeline_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_equivalence-d2844a53a7f53471.rmeta: crates/integration/../../tests/pipeline_equivalence.rs Cargo.toml

crates/integration/../../tests/pipeline_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
