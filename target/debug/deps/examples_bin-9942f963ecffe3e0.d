/root/repo/target/debug/deps/examples_bin-9942f963ecffe3e0.d: crates/examples-bin/src/lib.rs

/root/repo/target/debug/deps/libexamples_bin-9942f963ecffe3e0.rlib: crates/examples-bin/src/lib.rs

/root/repo/target/debug/deps/libexamples_bin-9942f963ecffe3e0.rmeta: crates/examples-bin/src/lib.rs

crates/examples-bin/src/lib.rs:
