/root/repo/target/debug/deps/progressive-8d0bf90293c93d39.d: crates/examples-bin/../../examples/progressive.rs

/root/repo/target/debug/deps/progressive-8d0bf90293c93d39: crates/examples-bin/../../examples/progressive.rs

crates/examples-bin/../../examples/progressive.rs:
