/root/repo/target/debug/deps/quickstart-20a25499f3edab3f.d: crates/examples-bin/../../examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-20a25499f3edab3f: crates/examples-bin/../../examples/quickstart.rs

crates/examples-bin/../../examples/quickstart.rs:
