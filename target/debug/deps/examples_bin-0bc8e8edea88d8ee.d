/root/repo/target/debug/deps/examples_bin-0bc8e8edea88d8ee.d: crates/examples-bin/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libexamples_bin-0bc8e8edea88d8ee.rmeta: crates/examples-bin/src/lib.rs Cargo.toml

crates/examples-bin/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
