/root/repo/target/debug/deps/progressive-3655410d559c3dd3.d: crates/examples-bin/../../examples/progressive.rs

/root/repo/target/debug/deps/progressive-3655410d559c3dd3: crates/examples-bin/../../examples/progressive.rs

crates/examples-bin/../../examples/progressive.rs:
