/root/repo/target/debug/deps/portability-ec466bb387eee9fd.d: crates/examples-bin/../../examples/portability.rs

/root/repo/target/debug/deps/portability-ec466bb387eee9fd: crates/examples-bin/../../examples/portability.rs

crates/examples-bin/../../examples/portability.rs:
