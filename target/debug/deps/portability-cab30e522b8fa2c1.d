/root/repo/target/debug/deps/portability-cab30e522b8fa2c1.d: crates/examples-bin/../../examples/portability.rs Cargo.toml

/root/repo/target/debug/deps/libportability-cab30e522b8fa2c1.rmeta: crates/examples-bin/../../examples/portability.rs Cargo.toml

crates/examples-bin/../../examples/portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
