/root/repo/target/debug/deps/fusion_multigpu-c0aee05580c8581b.d: crates/examples-bin/../../examples/fusion_multigpu.rs

/root/repo/target/debug/deps/fusion_multigpu-c0aee05580c8581b: crates/examples-bin/../../examples/fusion_multigpu.rs

crates/examples-bin/../../examples/fusion_multigpu.rs:
