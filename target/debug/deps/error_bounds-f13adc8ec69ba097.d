/root/repo/target/debug/deps/error_bounds-f13adc8ec69ba097.d: crates/integration/../../tests/error_bounds.rs

/root/repo/target/debug/deps/error_bounds-f13adc8ec69ba097: crates/integration/../../tests/error_bounds.rs

crates/integration/../../tests/error_bounds.rs:
