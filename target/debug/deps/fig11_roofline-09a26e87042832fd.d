/root/repo/target/debug/deps/fig11_roofline-09a26e87042832fd.d: crates/bench/benches/fig11_roofline.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_roofline-09a26e87042832fd.rmeta: crates/bench/benches/fig11_roofline.rs Cargo.toml

crates/bench/benches/fig11_roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
