/root/repo/target/debug/deps/progressive-09cef6ddc99836a1.d: crates/examples-bin/../../examples/progressive.rs Cargo.toml

/root/repo/target/debug/deps/libprogressive-09cef6ddc99836a1.rmeta: crates/examples-bin/../../examples/progressive.rs Cargo.toml

crates/examples-bin/../../examples/progressive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
