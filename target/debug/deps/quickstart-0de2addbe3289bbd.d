/root/repo/target/debug/deps/quickstart-0de2addbe3289bbd.d: crates/examples-bin/../../examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-0de2addbe3289bbd: crates/examples-bin/../../examples/quickstart.rs

crates/examples-bin/../../examples/quickstart.rs:
