/root/repo/target/debug/deps/portability-1f2b956ff4318084.d: crates/integration/../../tests/portability.rs

/root/repo/target/debug/deps/portability-1f2b956ff4318084: crates/integration/../../tests/portability.rs

crates/integration/../../tests/portability.rs:
