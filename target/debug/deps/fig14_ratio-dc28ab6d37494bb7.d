/root/repo/target/debug/deps/fig14_ratio-dc28ab6d37494bb7.d: crates/bench/benches/fig14_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_ratio-dc28ab6d37494bb7.rmeta: crates/bench/benches/fig14_ratio.rs Cargo.toml

crates/bench/benches/fig14_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
