/root/repo/target/debug/deps/fig10_chunks-5c7a1c50d5986952.d: crates/bench/benches/fig10_chunks.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_chunks-5c7a1c50d5986952.rmeta: crates/bench/benches/fig10_chunks.rs Cargo.toml

crates/bench/benches/fig10_chunks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
