/root/repo/target/debug/deps/hpdr-f18b18e990981ec7.d: crates/hpdr/src/bin/hpdr.rs

/root/repo/target/debug/deps/hpdr-f18b18e990981ec7: crates/hpdr/src/bin/hpdr.rs

crates/hpdr/src/bin/hpdr.rs:
