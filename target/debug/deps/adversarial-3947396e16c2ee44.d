/root/repo/target/debug/deps/adversarial-3947396e16c2ee44.d: crates/hpdr-sim/tests/adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial-3947396e16c2ee44.rmeta: crates/hpdr-sim/tests/adversarial.rs Cargo.toml

crates/hpdr-sim/tests/adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
