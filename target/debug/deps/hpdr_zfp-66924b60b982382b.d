/root/repo/target/debug/deps/hpdr_zfp-66924b60b982382b.d: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

/root/repo/target/debug/deps/libhpdr_zfp-66924b60b982382b.rlib: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

/root/repo/target/debug/deps/libhpdr_zfp-66924b60b982382b.rmeta: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

crates/hpdr-zfp/src/lib.rs:
crates/hpdr-zfp/src/codec.rs:
crates/hpdr-zfp/src/embedded.rs:
crates/hpdr-zfp/src/negabinary.rs:
crates/hpdr-zfp/src/transform.rs:
crates/hpdr-zfp/src/reducer.rs:
