/root/repo/target/debug/deps/integration-74c3d69e8abf43b0.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-74c3d69e8abf43b0.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
