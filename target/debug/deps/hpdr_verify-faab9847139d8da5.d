/root/repo/target/debug/deps/hpdr_verify-faab9847139d8da5.d: crates/hpdr-verify/src/lib.rs

/root/repo/target/debug/deps/hpdr_verify-faab9847139d8da5: crates/hpdr-verify/src/lib.rs

crates/hpdr-verify/src/lib.rs:
