/root/repo/target/debug/deps/hpdr-612c41d060d152d8.d: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr-612c41d060d152d8.rmeta: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs Cargo.toml

crates/hpdr/src/lib.rs:
crates/hpdr/src/api.rs:
crates/hpdr/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
