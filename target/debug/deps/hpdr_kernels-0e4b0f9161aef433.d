/root/repo/target/debug/deps/hpdr_kernels-0e4b0f9161aef433.d: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_kernels-0e4b0f9161aef433.rmeta: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs Cargo.toml

crates/hpdr-kernels/src/lib.rs:
crates/hpdr-kernels/src/bitstream.rs:
crates/hpdr-kernels/src/blocks.rs:
crates/hpdr-kernels/src/histogram.rs:
crates/hpdr-kernels/src/pack.rs:
crates/hpdr-kernels/src/reduce.rs:
crates/hpdr-kernels/src/scan.rs:
crates/hpdr-kernels/src/sort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
