/root/repo/target/debug/deps/hpdr_zfp-66ac73e0956ba616.d: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_zfp-66ac73e0956ba616.rmeta: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs Cargo.toml

crates/hpdr-zfp/src/lib.rs:
crates/hpdr-zfp/src/codec.rs:
crates/hpdr-zfp/src/embedded.rs:
crates/hpdr-zfp/src/negabinary.rs:
crates/hpdr-zfp/src/transform.rs:
crates/hpdr-zfp/src/reducer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
