/root/repo/target/debug/deps/quickstart-f109bd686687eb11.d: crates/examples-bin/../../examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-f109bd686687eb11: crates/examples-bin/../../examples/quickstart.rs

crates/examples-bin/../../examples/quickstart.rs:
