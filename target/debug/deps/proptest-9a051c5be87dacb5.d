/root/repo/target/debug/deps/proptest-9a051c5be87dacb5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9a051c5be87dacb5.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9a051c5be87dacb5.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
