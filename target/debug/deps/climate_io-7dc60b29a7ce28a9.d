/root/repo/target/debug/deps/climate_io-7dc60b29a7ce28a9.d: crates/examples-bin/../../examples/climate_io.rs Cargo.toml

/root/repo/target/debug/deps/libclimate_io-7dc60b29a7ce28a9.rmeta: crates/examples-bin/../../examples/climate_io.rs Cargo.toml

crates/examples-bin/../../examples/climate_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
