/root/repo/target/debug/deps/integration-710e85492b39683f.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration-710e85492b39683f: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
