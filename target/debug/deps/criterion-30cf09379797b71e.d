/root/repo/target/debug/deps/criterion-30cf09379797b71e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-30cf09379797b71e: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
