/root/repo/target/debug/deps/proptest-8003c40118ec69d0.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-8003c40118ec69d0: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
