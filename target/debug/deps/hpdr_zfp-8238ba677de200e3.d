/root/repo/target/debug/deps/hpdr_zfp-8238ba677de200e3.d: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

/root/repo/target/debug/deps/hpdr_zfp-8238ba677de200e3: crates/hpdr-zfp/src/lib.rs crates/hpdr-zfp/src/codec.rs crates/hpdr-zfp/src/embedded.rs crates/hpdr-zfp/src/negabinary.rs crates/hpdr-zfp/src/transform.rs crates/hpdr-zfp/src/reducer.rs

crates/hpdr-zfp/src/lib.rs:
crates/hpdr-zfp/src/codec.rs:
crates/hpdr-zfp/src/embedded.rs:
crates/hpdr-zfp/src/negabinary.rs:
crates/hpdr-zfp/src/transform.rs:
crates/hpdr-zfp/src/reducer.rs:
