/root/repo/target/debug/deps/hpdr_baselines-19b20be54d1f3e17.d: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

/root/repo/target/debug/deps/hpdr_baselines-19b20be54d1f3e17: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs

crates/hpdr-baselines/src/lib.rs:
crates/hpdr-baselines/src/lorenzo.rs:
crates/hpdr-baselines/src/lz4like.rs:
crates/hpdr-baselines/src/szlike.rs:
