/root/repo/target/debug/deps/quickstart-15e18e9612e69e7d.d: crates/examples-bin/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-15e18e9612e69e7d.rmeta: crates/examples-bin/../../examples/quickstart.rs Cargo.toml

crates/examples-bin/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
