/root/repo/target/debug/deps/error_bounds-ee7107ee1f041b8c.d: crates/integration/../../tests/error_bounds.rs Cargo.toml

/root/repo/target/debug/deps/liberror_bounds-ee7107ee1f041b8c.rmeta: crates/integration/../../tests/error_bounds.rs Cargo.toml

crates/integration/../../tests/error_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
