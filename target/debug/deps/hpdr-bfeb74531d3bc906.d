/root/repo/target/debug/deps/hpdr-bfeb74531d3bc906.d: crates/hpdr/src/bin/hpdr.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr-bfeb74531d3bc906.rmeta: crates/hpdr/src/bin/hpdr.rs Cargo.toml

crates/hpdr/src/bin/hpdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
