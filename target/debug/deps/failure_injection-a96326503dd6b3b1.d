/root/repo/target/debug/deps/failure_injection-a96326503dd6b3b1.d: crates/integration/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-a96326503dd6b3b1: crates/integration/../../tests/failure_injection.rs

crates/integration/../../tests/failure_injection.rs:
