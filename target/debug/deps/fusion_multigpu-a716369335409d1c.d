/root/repo/target/debug/deps/fusion_multigpu-a716369335409d1c.d: crates/examples-bin/../../examples/fusion_multigpu.rs

/root/repo/target/debug/deps/fusion_multigpu-a716369335409d1c: crates/examples-bin/../../examples/fusion_multigpu.rs

crates/examples-bin/../../examples/fusion_multigpu.rs:
