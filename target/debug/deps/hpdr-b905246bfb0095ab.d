/root/repo/target/debug/deps/hpdr-b905246bfb0095ab.d: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/debug/deps/hpdr-b905246bfb0095ab: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

crates/hpdr/src/lib.rs:
crates/hpdr/src/api.rs:
crates/hpdr/src/cli.rs:
