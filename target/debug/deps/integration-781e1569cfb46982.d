/root/repo/target/debug/deps/integration-781e1569cfb46982.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-781e1569cfb46982.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-781e1569cfb46982.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
