/root/repo/target/debug/deps/hpdr_pipeline-ea920e3548707451.d: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_pipeline-ea920e3548707451.rmeta: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs Cargo.toml

crates/hpdr-pipeline/src/lib.rs:
crates/hpdr-pipeline/src/container.rs:
crates/hpdr-pipeline/src/multigpu.rs:
crates/hpdr-pipeline/src/roofline.rs:
crates/hpdr-pipeline/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
