/root/repo/target/debug/deps/fig13_endtoend-76d7a6804d6981e1.d: crates/bench/benches/fig13_endtoend.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_endtoend-76d7a6804d6981e1.rmeta: crates/bench/benches/fig13_endtoend.rs Cargo.toml

crates/bench/benches/fig13_endtoend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
