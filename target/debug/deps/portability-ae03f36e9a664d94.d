/root/repo/target/debug/deps/portability-ae03f36e9a664d94.d: crates/examples-bin/../../examples/portability.rs

/root/repo/target/debug/deps/portability-ae03f36e9a664d94: crates/examples-bin/../../examples/portability.rs

crates/examples-bin/../../examples/portability.rs:
