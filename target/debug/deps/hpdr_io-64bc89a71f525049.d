/root/repo/target/debug/deps/hpdr_io-64bc89a71f525049.d: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

/root/repo/target/debug/deps/libhpdr_io-64bc89a71f525049.rlib: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

/root/repo/target/debug/deps/libhpdr_io-64bc89a71f525049.rmeta: crates/hpdr-io/src/lib.rs crates/hpdr-io/src/bp.rs crates/hpdr-io/src/cluster.rs crates/hpdr-io/src/fsmodel.rs

crates/hpdr-io/src/lib.rs:
crates/hpdr-io/src/bp.rs:
crates/hpdr-io/src/cluster.rs:
crates/hpdr-io/src/fsmodel.rs:
