/root/repo/target/debug/deps/hpdr-e41a39d40627d6c8.d: crates/hpdr/src/bin/hpdr.rs

/root/repo/target/debug/deps/hpdr-e41a39d40627d6c8: crates/hpdr/src/bin/hpdr.rs

crates/hpdr/src/bin/hpdr.rs:
