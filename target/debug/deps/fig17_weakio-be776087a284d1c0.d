/root/repo/target/debug/deps/fig17_weakio-be776087a284d1c0.d: crates/bench/benches/fig17_weakio.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_weakio-be776087a284d1c0.rmeta: crates/bench/benches/fig17_weakio.rs Cargo.toml

crates/bench/benches/fig17_weakio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
