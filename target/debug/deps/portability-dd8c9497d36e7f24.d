/root/repo/target/debug/deps/portability-dd8c9497d36e7f24.d: crates/examples-bin/../../examples/portability.rs Cargo.toml

/root/repo/target/debug/deps/libportability-dd8c9497d36e7f24.rmeta: crates/examples-bin/../../examples/portability.rs Cargo.toml

crates/examples-bin/../../examples/portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
