/root/repo/target/debug/deps/reproduce-0de5ca8d598a1541.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-0de5ca8d598a1541: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
