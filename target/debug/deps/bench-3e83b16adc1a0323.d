/root/repo/target/debug/deps/bench-3e83b16adc1a0323.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/bench-3e83b16adc1a0323: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scaling.rs:
crates/bench/src/tables.rs:
