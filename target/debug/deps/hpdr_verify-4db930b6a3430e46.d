/root/repo/target/debug/deps/hpdr_verify-4db930b6a3430e46.d: crates/hpdr-verify/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_verify-4db930b6a3430e46.rmeta: crates/hpdr-verify/src/lib.rs Cargo.toml

crates/hpdr-verify/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
