/root/repo/target/debug/deps/hpdr_huffman-2d52e82cf384aebf.d: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

/root/repo/target/debug/deps/hpdr_huffman-2d52e82cf384aebf: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs

crates/hpdr-huffman/src/lib.rs:
crates/hpdr-huffman/src/codebook.rs:
crates/hpdr-huffman/src/codec.rs:
crates/hpdr-huffman/src/reducer.rs:
