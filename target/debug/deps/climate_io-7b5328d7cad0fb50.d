/root/repo/target/debug/deps/climate_io-7b5328d7cad0fb50.d: crates/examples-bin/../../examples/climate_io.rs

/root/repo/target/debug/deps/climate_io-7b5328d7cad0fb50: crates/examples-bin/../../examples/climate_io.rs

crates/examples-bin/../../examples/climate_io.rs:
