/root/repo/target/debug/deps/hpdr_pipeline-a12f0177ee1986ec.d: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

/root/repo/target/debug/deps/libhpdr_pipeline-a12f0177ee1986ec.rlib: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

/root/repo/target/debug/deps/libhpdr_pipeline-a12f0177ee1986ec.rmeta: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

crates/hpdr-pipeline/src/lib.rs:
crates/hpdr-pipeline/src/container.rs:
crates/hpdr-pipeline/src/multigpu.rs:
crates/hpdr-pipeline/src/roofline.rs:
crates/hpdr-pipeline/src/runner.rs:
