/root/repo/target/debug/deps/parking_lot-b5ec76ba59c5f890.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-b5ec76ba59c5f890: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
