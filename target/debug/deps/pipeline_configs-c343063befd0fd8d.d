/root/repo/target/debug/deps/pipeline_configs-c343063befd0fd8d.d: crates/hpdr-verify/tests/pipeline_configs.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_configs-c343063befd0fd8d.rmeta: crates/hpdr-verify/tests/pipeline_configs.rs Cargo.toml

crates/hpdr-verify/tests/pipeline_configs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
