/root/repo/target/debug/deps/hpdr_baselines-f40254e254b2468f.d: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_baselines-f40254e254b2468f.rmeta: crates/hpdr-baselines/src/lib.rs crates/hpdr-baselines/src/lorenzo.rs crates/hpdr-baselines/src/lz4like.rs crates/hpdr-baselines/src/szlike.rs Cargo.toml

crates/hpdr-baselines/src/lib.rs:
crates/hpdr-baselines/src/lorenzo.rs:
crates/hpdr-baselines/src/lz4like.rs:
crates/hpdr-baselines/src/szlike.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
