/root/repo/target/debug/deps/fig16_multigpu-d74d8c402ca8b68e.d: crates/bench/benches/fig16_multigpu.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_multigpu-d74d8c402ca8b68e.rmeta: crates/bench/benches/fig16_multigpu.rs Cargo.toml

crates/bench/benches/fig16_multigpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
