/root/repo/target/debug/deps/hpdr-55e24f74d1008f38.d: crates/hpdr/src/bin/hpdr.rs

/root/repo/target/debug/deps/hpdr-55e24f74d1008f38: crates/hpdr/src/bin/hpdr.rs

crates/hpdr/src/bin/hpdr.rs:
