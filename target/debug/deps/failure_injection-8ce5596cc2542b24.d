/root/repo/target/debug/deps/failure_injection-8ce5596cc2542b24.d: crates/integration/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-8ce5596cc2542b24: crates/integration/../../tests/failure_injection.rs

crates/integration/../../tests/failure_injection.rs:
