/root/repo/target/debug/deps/fig18_strongio-90869bfd5438b6e6.d: crates/bench/benches/fig18_strongio.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_strongio-90869bfd5438b6e6.rmeta: crates/bench/benches/fig18_strongio.rs Cargo.toml

crates/bench/benches/fig18_strongio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
