/root/repo/target/debug/deps/rand-babf1bde8b704710.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-babf1bde8b704710.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-babf1bde8b704710.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
