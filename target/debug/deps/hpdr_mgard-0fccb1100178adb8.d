/root/repo/target/debug/deps/hpdr_mgard-0fccb1100178adb8.d: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_mgard-0fccb1100178adb8.rmeta: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs Cargo.toml

crates/hpdr-mgard/src/lib.rs:
crates/hpdr-mgard/src/codec.rs:
crates/hpdr-mgard/src/decompose.rs:
crates/hpdr-mgard/src/hierarchy.rs:
crates/hpdr-mgard/src/operators.rs:
crates/hpdr-mgard/src/quantize.rs:
crates/hpdr-mgard/src/reducer.rs:
crates/hpdr-mgard/src/refactor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
