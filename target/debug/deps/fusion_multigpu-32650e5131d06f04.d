/root/repo/target/debug/deps/fusion_multigpu-32650e5131d06f04.d: crates/examples-bin/../../examples/fusion_multigpu.rs

/root/repo/target/debug/deps/fusion_multigpu-32650e5131d06f04: crates/examples-bin/../../examples/fusion_multigpu.rs

crates/examples-bin/../../examples/fusion_multigpu.rs:
