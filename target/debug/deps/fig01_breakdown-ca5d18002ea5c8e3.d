/root/repo/target/debug/deps/fig01_breakdown-ca5d18002ea5c8e3.d: crates/bench/benches/fig01_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_breakdown-ca5d18002ea5c8e3.rmeta: crates/bench/benches/fig01_breakdown.rs Cargo.toml

crates/bench/benches/fig01_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
