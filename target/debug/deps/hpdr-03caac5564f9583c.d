/root/repo/target/debug/deps/hpdr-03caac5564f9583c.d: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/debug/deps/libhpdr-03caac5564f9583c.rlib: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/debug/deps/libhpdr-03caac5564f9583c.rmeta: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

crates/hpdr/src/lib.rs:
crates/hpdr/src/api.rs:
crates/hpdr/src/cli.rs:
