/root/repo/target/debug/deps/quickstart-abb788f3c81e0e84.d: crates/examples-bin/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-abb788f3c81e0e84.rmeta: crates/examples-bin/../../examples/quickstart.rs Cargo.toml

crates/examples-bin/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
