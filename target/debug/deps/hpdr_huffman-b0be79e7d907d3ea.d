/root/repo/target/debug/deps/hpdr_huffman-b0be79e7d907d3ea.d: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_huffman-b0be79e7d907d3ea.rmeta: crates/hpdr-huffman/src/lib.rs crates/hpdr-huffman/src/codebook.rs crates/hpdr-huffman/src/codec.rs crates/hpdr-huffman/src/reducer.rs Cargo.toml

crates/hpdr-huffman/src/lib.rs:
crates/hpdr-huffman/src/codebook.rs:
crates/hpdr-huffman/src/codec.rs:
crates/hpdr-huffman/src/reducer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
