/root/repo/target/debug/deps/criterion-7a354a6cb197f193.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-7a354a6cb197f193.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
