/root/repo/target/debug/deps/bench-0732c7ffbc5bb70b.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbench-0732c7ffbc5bb70b.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libbench-0732c7ffbc5bb70b.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scaling.rs:
crates/bench/src/tables.rs:
