/root/repo/target/debug/deps/reproduce-ccd766d132c2845b.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-ccd766d132c2845b: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
