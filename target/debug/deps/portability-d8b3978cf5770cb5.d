/root/repo/target/debug/deps/portability-d8b3978cf5770cb5.d: crates/integration/../../tests/portability.rs

/root/repo/target/debug/deps/portability-d8b3978cf5770cb5: crates/integration/../../tests/portability.rs

crates/integration/../../tests/portability.rs:
