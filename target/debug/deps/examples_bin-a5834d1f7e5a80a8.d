/root/repo/target/debug/deps/examples_bin-a5834d1f7e5a80a8.d: crates/examples-bin/src/lib.rs

/root/repo/target/debug/deps/examples_bin-a5834d1f7e5a80a8: crates/examples-bin/src/lib.rs

crates/examples-bin/src/lib.rs:
