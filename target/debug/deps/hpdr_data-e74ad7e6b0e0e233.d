/root/repo/target/debug/deps/hpdr_data-e74ad7e6b0e0e233.d: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

/root/repo/target/debug/deps/libhpdr_data-e74ad7e6b0e0e233.rlib: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

/root/repo/target/debug/deps/libhpdr_data-e74ad7e6b0e0e233.rmeta: crates/hpdr-data/src/lib.rs crates/hpdr-data/src/datasets.rs crates/hpdr-data/src/field.rs

crates/hpdr-data/src/lib.rs:
crates/hpdr-data/src/datasets.rs:
crates/hpdr-data/src/field.rs:
