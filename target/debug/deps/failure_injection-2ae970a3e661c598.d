/root/repo/target/debug/deps/failure_injection-2ae970a3e661c598.d: crates/integration/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-2ae970a3e661c598.rmeta: crates/integration/../../tests/failure_injection.rs Cargo.toml

crates/integration/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
