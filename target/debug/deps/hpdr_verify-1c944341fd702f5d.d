/root/repo/target/debug/deps/hpdr_verify-1c944341fd702f5d.d: crates/hpdr-verify/src/lib.rs

/root/repo/target/debug/deps/hpdr_verify-1c944341fd702f5d: crates/hpdr-verify/src/lib.rs

crates/hpdr-verify/src/lib.rs:
