/root/repo/target/debug/deps/io_roundtrip-8630c20f6a656215.d: crates/integration/../../tests/io_roundtrip.rs

/root/repo/target/debug/deps/io_roundtrip-8630c20f6a656215: crates/integration/../../tests/io_roundtrip.rs

crates/integration/../../tests/io_roundtrip.rs:
