/root/repo/target/debug/deps/proptest-bf6dfdd4a1e98f79.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bf6dfdd4a1e98f79.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
