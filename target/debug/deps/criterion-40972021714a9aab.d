/root/repo/target/debug/deps/criterion-40972021714a9aab.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-40972021714a9aab.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-40972021714a9aab.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
