/root/repo/target/debug/deps/hpdr_pipeline-7a190727a8c013dc.d: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

/root/repo/target/debug/deps/hpdr_pipeline-7a190727a8c013dc: crates/hpdr-pipeline/src/lib.rs crates/hpdr-pipeline/src/container.rs crates/hpdr-pipeline/src/multigpu.rs crates/hpdr-pipeline/src/roofline.rs crates/hpdr-pipeline/src/runner.rs

crates/hpdr-pipeline/src/lib.rs:
crates/hpdr-pipeline/src/container.rs:
crates/hpdr-pipeline/src/multigpu.rs:
crates/hpdr-pipeline/src/roofline.rs:
crates/hpdr-pipeline/src/runner.rs:
