/root/repo/target/debug/deps/crossbeam-01a3be5de3ce50d4.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-01a3be5de3ce50d4: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
