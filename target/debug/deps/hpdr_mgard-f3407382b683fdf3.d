/root/repo/target/debug/deps/hpdr_mgard-f3407382b683fdf3.d: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs

/root/repo/target/debug/deps/hpdr_mgard-f3407382b683fdf3: crates/hpdr-mgard/src/lib.rs crates/hpdr-mgard/src/codec.rs crates/hpdr-mgard/src/decompose.rs crates/hpdr-mgard/src/hierarchy.rs crates/hpdr-mgard/src/operators.rs crates/hpdr-mgard/src/quantize.rs crates/hpdr-mgard/src/reducer.rs crates/hpdr-mgard/src/refactor.rs

crates/hpdr-mgard/src/lib.rs:
crates/hpdr-mgard/src/codec.rs:
crates/hpdr-mgard/src/decompose.rs:
crates/hpdr-mgard/src/hierarchy.rs:
crates/hpdr-mgard/src/operators.rs:
crates/hpdr-mgard/src/quantize.rs:
crates/hpdr-mgard/src/reducer.rs:
crates/hpdr-mgard/src/refactor.rs:
