/root/repo/target/debug/deps/proptest-fb31af27b710d08e.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-fb31af27b710d08e.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
