/root/repo/target/debug/deps/hpdr-d6a4205392263cae.d: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/debug/deps/libhpdr-d6a4205392263cae.rlib: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

/root/repo/target/debug/deps/libhpdr-d6a4205392263cae.rmeta: crates/hpdr/src/lib.rs crates/hpdr/src/api.rs crates/hpdr/src/cli.rs

crates/hpdr/src/lib.rs:
crates/hpdr/src/api.rs:
crates/hpdr/src/cli.rs:
