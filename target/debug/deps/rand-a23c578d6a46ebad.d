/root/repo/target/debug/deps/rand-a23c578d6a46ebad.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a23c578d6a46ebad.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
