/root/repo/target/debug/deps/hpdr_kernels-808258e118cbcd6a.d: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

/root/repo/target/debug/deps/libhpdr_kernels-808258e118cbcd6a.rlib: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

/root/repo/target/debug/deps/libhpdr_kernels-808258e118cbcd6a.rmeta: crates/hpdr-kernels/src/lib.rs crates/hpdr-kernels/src/bitstream.rs crates/hpdr-kernels/src/blocks.rs crates/hpdr-kernels/src/histogram.rs crates/hpdr-kernels/src/pack.rs crates/hpdr-kernels/src/reduce.rs crates/hpdr-kernels/src/scan.rs crates/hpdr-kernels/src/sort.rs

crates/hpdr-kernels/src/lib.rs:
crates/hpdr-kernels/src/bitstream.rs:
crates/hpdr-kernels/src/blocks.rs:
crates/hpdr-kernels/src/histogram.rs:
crates/hpdr-kernels/src/pack.rs:
crates/hpdr-kernels/src/reduce.rs:
crates/hpdr-kernels/src/scan.rs:
crates/hpdr-kernels/src/sort.rs:
