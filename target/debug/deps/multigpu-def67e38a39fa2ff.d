/root/repo/target/debug/deps/multigpu-def67e38a39fa2ff.d: crates/integration/../../tests/multigpu.rs

/root/repo/target/debug/deps/multigpu-def67e38a39fa2ff: crates/integration/../../tests/multigpu.rs

crates/integration/../../tests/multigpu.rs:
