/root/repo/target/debug/deps/rand-9f0ddca9bd6e55b5.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-9f0ddca9bd6e55b5: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
