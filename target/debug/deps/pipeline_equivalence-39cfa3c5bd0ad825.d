/root/repo/target/debug/deps/pipeline_equivalence-39cfa3c5bd0ad825.d: crates/integration/../../tests/pipeline_equivalence.rs

/root/repo/target/debug/deps/pipeline_equivalence-39cfa3c5bd0ad825: crates/integration/../../tests/pipeline_equivalence.rs

crates/integration/../../tests/pipeline_equivalence.rs:
