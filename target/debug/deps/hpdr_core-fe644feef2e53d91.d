/root/repo/target/debug/deps/hpdr_core-fe644feef2e53d91.d: crates/hpdr-core/src/lib.rs crates/hpdr-core/src/abstractions.rs crates/hpdr-core/src/adapter.rs crates/hpdr-core/src/bytesio.rs crates/hpdr-core/src/cmm.rs crates/hpdr-core/src/error.rs crates/hpdr-core/src/float.rs crates/hpdr-core/src/gpu_sim.rs crates/hpdr-core/src/pool.rs crates/hpdr-core/src/reducer.rs crates/hpdr-core/src/shape.rs crates/hpdr-core/src/shared.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_core-fe644feef2e53d91.rmeta: crates/hpdr-core/src/lib.rs crates/hpdr-core/src/abstractions.rs crates/hpdr-core/src/adapter.rs crates/hpdr-core/src/bytesio.rs crates/hpdr-core/src/cmm.rs crates/hpdr-core/src/error.rs crates/hpdr-core/src/float.rs crates/hpdr-core/src/gpu_sim.rs crates/hpdr-core/src/pool.rs crates/hpdr-core/src/reducer.rs crates/hpdr-core/src/shape.rs crates/hpdr-core/src/shared.rs Cargo.toml

crates/hpdr-core/src/lib.rs:
crates/hpdr-core/src/abstractions.rs:
crates/hpdr-core/src/adapter.rs:
crates/hpdr-core/src/bytesio.rs:
crates/hpdr-core/src/cmm.rs:
crates/hpdr-core/src/error.rs:
crates/hpdr-core/src/float.rs:
crates/hpdr-core/src/gpu_sim.rs:
crates/hpdr-core/src/pool.rs:
crates/hpdr-core/src/reducer.rs:
crates/hpdr-core/src/shape.rs:
crates/hpdr-core/src/shared.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
