/root/repo/target/debug/deps/hpdr_sim-f9243760118459ae.d: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libhpdr_sim-f9243760118459ae.rmeta: crates/hpdr-sim/src/lib.rs crates/hpdr-sim/src/effects.rs crates/hpdr-sim/src/mem.rs crates/hpdr-sim/src/sim.rs crates/hpdr-sim/src/spec.rs crates/hpdr-sim/src/time.rs crates/hpdr-sim/src/timeline.rs crates/hpdr-sim/src/verify.rs Cargo.toml

crates/hpdr-sim/src/lib.rs:
crates/hpdr-sim/src/effects.rs:
crates/hpdr-sim/src/mem.rs:
crates/hpdr-sim/src/sim.rs:
crates/hpdr-sim/src/spec.rs:
crates/hpdr-sim/src/time.rs:
crates/hpdr-sim/src/timeline.rs:
crates/hpdr-sim/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
