/root/repo/target/debug/deps/multigpu-8ade44bf8a5c9236.d: crates/integration/../../tests/multigpu.rs Cargo.toml

/root/repo/target/debug/deps/libmultigpu-8ade44bf8a5c9236.rmeta: crates/integration/../../tests/multigpu.rs Cargo.toml

crates/integration/../../tests/multigpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
