/root/repo/target/debug/deps/bench-713c28332ee61ebe.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/bench-713c28332ee61ebe: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/scaling.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/scaling.rs:
crates/bench/src/tables.rs:
