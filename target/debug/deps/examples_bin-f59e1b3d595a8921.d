/root/repo/target/debug/deps/examples_bin-f59e1b3d595a8921.d: crates/examples-bin/src/lib.rs

/root/repo/target/debug/deps/examples_bin-f59e1b3d595a8921: crates/examples-bin/src/lib.rs

crates/examples-bin/src/lib.rs:
