/root/repo/target/debug/deps/multigpu-d70e37d7edd58f41.d: crates/integration/../../tests/multigpu.rs

/root/repo/target/debug/deps/multigpu-d70e37d7edd58f41: crates/integration/../../tests/multigpu.rs

crates/integration/../../tests/multigpu.rs:
