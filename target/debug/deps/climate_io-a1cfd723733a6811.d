/root/repo/target/debug/deps/climate_io-a1cfd723733a6811.d: crates/examples-bin/../../examples/climate_io.rs

/root/repo/target/debug/deps/climate_io-a1cfd723733a6811: crates/examples-bin/../../examples/climate_io.rs

crates/examples-bin/../../examples/climate_io.rs:
