/root/repo/target/debug/deps/properties-d8cffdc4e2f14631.d: crates/integration/../../tests/properties.rs

/root/repo/target/debug/deps/properties-d8cffdc4e2f14631: crates/integration/../../tests/properties.rs

crates/integration/../../tests/properties.rs:
