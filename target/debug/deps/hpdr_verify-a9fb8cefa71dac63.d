/root/repo/target/debug/deps/hpdr_verify-a9fb8cefa71dac63.d: crates/hpdr-verify/src/lib.rs

/root/repo/target/debug/deps/libhpdr_verify-a9fb8cefa71dac63.rlib: crates/hpdr-verify/src/lib.rs

/root/repo/target/debug/deps/libhpdr_verify-a9fb8cefa71dac63.rmeta: crates/hpdr-verify/src/lib.rs

crates/hpdr-verify/src/lib.rs:
